//! A minimal synchronous client for the rsm service protocol.
//!
//! One [`RsmClient`] is one TCP connection issuing one request at a time;
//! drive several clients (or several connections) for pipelined load.
//! Request ids increase monotonically per client id, which makes retries
//! after [`ClientResp::Timeout`] idempotent — the service's watermark
//! dedup applies each `(client, request)` at most once no matter how many
//! times it is resubmitted.

use std::io;
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use prng::Prng;

use crate::command::Op;
use crate::service::{read_client_msg, write_client_msg, ClientReq, ClientResp};

/// A connected service client.
#[derive(Debug)]
pub struct RsmClient {
    stream: TcpStream,
    client: u64,
    next_request: u64,
}

impl RsmClient {
    /// Connects to a service endpoint as client id `client`.
    ///
    /// Two live clients must not share an id: the per-client request-id
    /// watermark would silently drop one of their command streams.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: SocketAddr, client: u64) -> io::Result<RsmClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(RsmClient {
            stream,
            client,
            next_request: 1,
        })
    }

    /// Sets a read timeout for responses (`None` blocks indefinitely).
    ///
    /// # Errors
    ///
    /// Propagates socket configuration failures.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// This client's id.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.client
    }

    /// The request id the next proposal will use.
    #[must_use]
    pub fn next_request(&self) -> u64 {
        self.next_request
    }

    /// Repositions the id stream so the next proposal uses `request` —
    /// for callers resuming a client id on a *fresh* connection (a
    /// reconnect after transport loss), where a new `RsmClient` would
    /// otherwise restart at 1 and collide with already-used ids.
    pub fn seek_request(&mut self, request: u64) {
        self.next_request = request;
    }

    fn call(&mut self, req: &ClientReq) -> io::Result<ClientResp> {
        write_client_msg(&mut self.stream, req)?;
        read_client_msg(&mut self.stream)
    }

    /// Proposes `op` under a fresh request id and waits for the service's
    /// verdict. The request id is consumed even on `Busy`/`Timeout`; use
    /// [`RsmClient::retry`] to resubmit the same id.
    ///
    /// # Errors
    ///
    /// Propagates transport failures (the proposal may still commit).
    pub fn propose(&mut self, op: Op) -> io::Result<ClientResp> {
        let request = self.next_request;
        self.next_request += 1;
        self.call(&ClientReq::Propose {
            client: self.client,
            request,
            op,
        })
    }

    /// Resubmits `op` under an already-used request id (idempotent).
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn retry(&mut self, request: u64, op: Op) -> io::Result<ClientResp> {
        self.call(&ClientReq::Propose {
            client: self.client,
            request,
            op,
        })
    }

    /// Proposes `op` and keeps resubmitting it — same request id, so the
    /// service's watermark dedup makes every retry idempotent — through
    /// [`ClientResp::Busy`] and [`ClientResp::Timeout`] verdicts until it
    /// commits or `deadline` elapses. Retries back off exponentially
    /// (2 ms nominal doubling to a 200 ms cap, at least half honoured,
    /// the rest uniform jitter) so a busy service sees a thinning retry
    /// stream instead of a synchronized hammer.
    ///
    /// Returns the last verdict when the deadline expires — `Busy` or
    /// `Timeout`, never silently dropped — so callers can distinguish an
    /// overloaded service from an unreachable one.
    ///
    /// # Errors
    ///
    /// Propagates transport failures (the proposal may still commit).
    pub fn propose_with_retry(&mut self, op: Op, deadline: Duration) -> io::Result<ClientResp> {
        let give_up = Instant::now() + deadline;
        let request = self.next_request;
        let mut jitter =
            Prng::seed_from_u64(self.client.wrapping_mul(0x9E37_79B9).rotate_left(17) ^ request);
        let mut resp = self.propose(op.clone())?;
        let mut attempt = 0u32;
        while matches!(resp, ClientResp::Busy | ClientResp::Timeout) {
            let now = Instant::now();
            if now >= give_up {
                break;
            }
            let nominal = Duration::from_millis(2)
                .saturating_mul(2u32.saturating_pow(attempt))
                .min(Duration::from_millis(200));
            let half = nominal / 2;
            let span = u64::try_from(half.as_micros())
                .unwrap_or(u64::MAX)
                .saturating_add(1);
            let wait = (half + Duration::from_micros(jitter.next_u64() % span)).min(give_up - now);
            std::thread::sleep(wait);
            attempt += 1;
            resp = self.retry(request, op.clone())?;
        }
        Ok(resp)
    }

    /// Proposes `Put(key, value)`.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> io::Result<ClientResp> {
        self.propose(Op::Put {
            key: key.to_vec(),
            value: value.to_vec(),
        })
    }

    /// Proposes `Del(key)`.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn del(&mut self, key: &[u8]) -> io::Result<ClientResp> {
        self.propose(Op::Del { key: key.to_vec() })
    }

    /// Proposes a no-op (still consumes a slot position; handy for
    /// benchmarks and liveness probes).
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn noop(&mut self) -> io::Result<ClientResp> {
        self.propose(Op::Noop)
    }

    /// Reads `key` from the replica's committed state. `Ok(None)` means
    /// unbound. Local to the contacted replica — a lagging replica can
    /// answer stale.
    ///
    /// # Errors
    ///
    /// Propagates transport failures and protocol violations.
    pub fn read(&mut self, key: &[u8]) -> io::Result<Option<Vec<u8>>> {
        match self.call(&ClientReq::Read { key: key.to_vec() })? {
            ClientResp::Value { value } => Ok(value),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected a read result, got {other:?}"),
            )),
        }
    }

    /// Fetches replica progress (applied length, digest, counters).
    ///
    /// # Errors
    ///
    /// Propagates transport failures and protocol violations.
    pub fn info(&mut self) -> io::Result<ClientResp> {
        match self.call(&ClientReq::Info)? {
            resp @ ClientResp::Info { .. } => Ok(resp),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected an info result, got {other:?}"),
            )),
        }
    }
}
