//! Deterministic multi-decree properties under the simulator: gap-free
//! ordering, batch atomicity, exactly-once application, and cross-replica
//! log identity, with no real network or clock anywhere.

use rsm::{AppliedState, Command, LogView, Op, Replica, RsmOptions};
use simnet::{ProcessId, Role, Sim, StopWhen};

fn put(client: u64, request: u64, key: &[u8], value: &[u8]) -> Command {
    Command {
        client,
        request,
        op: Op::Put {
            key: key.to_vec(),
            value: value.to_vec(),
        },
    }
}

/// Runs `n` replicas to quiescence with `preload[i]` seeded into replica
/// `i`, returning each replica's applied view.
fn run_cluster(
    n: usize,
    seed: u64,
    opts: RsmOptions,
    preload: Vec<Vec<Command>>,
) -> Vec<AppliedState> {
    assert_eq!(preload.len(), n);
    let k = (n - 1) / 3;
    let config = bt_core::Config::malicious(n, k).expect("valid malicious config");
    let views: Vec<LogView> = (0..n).map(|_| LogView::new()).collect();
    let mut builder = Sim::builder();
    for (i, cmds) in preload.into_iter().enumerate() {
        let replica = Replica::new(config, ProcessId::new(i), opts)
            .with_view(views[i].clone())
            .with_preload(cmds);
        builder.process(Box::new(replica), Role::Correct);
    }
    let report = builder
        .seed(seed)
        .stop_when(StopWhen::Never)
        .step_limit(2_000_000)
        .build()
        .run();
    assert!(
        report.steps < 2_000_000,
        "cluster did not go quiescent within the step limit"
    );
    views.iter().map(LogView::snapshot).collect()
}

/// Every applied log is gap-free and identical across replicas.
fn assert_identical(states: &[AppliedState]) {
    for s in states {
        for (i, e) in s.log.iter().enumerate() {
            assert_eq!(e.slot, i as u64, "log has a gap or a reorder");
        }
    }
    for pair in states.windows(2) {
        assert_eq!(
            pair[0].log, pair[1].log,
            "two replicas applied different logs"
        );
        assert_eq!(pair[0].digest(), pair[1].digest());
        assert_eq!(pair[0].kv, pair[1].kv);
    }
}

#[test]
fn five_replicas_apply_identical_gap_free_logs() {
    let n = 5;
    let per_client = 20u64;
    let preload: Vec<Vec<Command>> = (0..n)
        .map(|i| {
            (1..=per_client)
                .map(|r| {
                    put(
                        i as u64 + 1,
                        r,
                        format!("k{i}-{r}").as_bytes(),
                        format!("v{i}-{r}").as_bytes(),
                    )
                })
                .collect()
        })
        .collect();
    let states = run_cluster(
        n,
        7,
        RsmOptions {
            window: 4,
            max_batch: 8,
        },
        preload,
    );
    assert_identical(&states);
    let s = &states[0];
    assert_eq!(s.applied_commands, n as u64 * per_client);
    assert_eq!(s.deduped_commands, 0);
    // Every submitted command landed exactly once.
    for i in 0..n {
        for r in 1..=per_client {
            let key = format!("k{i}-{r}");
            assert_eq!(
                s.kv.get(key.as_bytes()),
                Some(&format!("v{i}-{r}").into_bytes()),
                "missing {key}"
            );
        }
    }
}

#[test]
fn batches_are_atomic_and_bounded() {
    let n = 4;
    let max_batch = 10;
    // One loaded replica, three idle ones: its 50 commands must pack into
    // batches of at most `max_batch`, and batching must actually happen
    // (fewer non-empty slots than commands).
    let mut preload = vec![Vec::new(); n];
    preload[2] = (1..=50)
        .map(|r| put(9, r, format!("x{r}").as_bytes(), b"v"))
        .collect();
    let states = run_cluster(
        n,
        11,
        RsmOptions {
            window: 3,
            max_batch,
        },
        preload,
    );
    assert_identical(&states);
    let s = &states[0];
    let loaded: Vec<_> = s.log.iter().filter(|e| !e.commands.is_empty()).collect();
    assert!(!loaded.is_empty());
    assert!(loaded.iter().all(|e| e.commands.len() <= max_batch));
    assert!(
        loaded.len() < 50,
        "batching never combined commands: {} slots for 50 commands",
        loaded.len()
    );
    // All-or-nothing: a batch's commands are contiguous within one entry,
    // in submission order.
    let mut seen = 0u64;
    for e in &s.log {
        for c in &e.commands {
            assert_eq!(c.request, seen + 1, "batch split or reordered a command");
            seen = c.request;
        }
    }
    assert_eq!(seen, 50);
    assert_eq!(s.applied_commands, 50);
}

#[test]
fn duplicate_request_ids_apply_exactly_once() {
    let n = 4;
    // Two replicas preload the *same* client stream (a client that
    // resubmitted to a different node), interleaved with a private one.
    let shared: Vec<Command> = (1..=15)
        .map(|r| put(3, r, b"shared", format!("s{r}").as_bytes()))
        .collect();
    let mut preload = vec![Vec::new(); n];
    preload[0] = shared.clone();
    preload[1] = shared;
    preload[3] = (1..=5).map(|r| put(8, r, b"mine", b"m")).collect();
    let states = run_cluster(
        n,
        23,
        RsmOptions {
            window: 4,
            max_batch: 4,
        },
        preload,
    );
    assert_identical(&states);
    let s = &states[0];
    // 15 shared + 5 private applied; every duplicate skipped, everywhere
    // the same way.
    assert_eq!(s.applied_commands, 20);
    assert!(
        s.deduped_commands > 0,
        "the duplicate stream never collided"
    );
    assert_eq!(s.kv.get(b"shared".as_slice()), Some(&b"s15".to_vec()));
    assert!(s.is_complete(3, 15));
    assert!(s.is_complete(8, 5));
}

#[test]
fn idle_cluster_is_quiescent() {
    let states = run_cluster(5, 3, RsmOptions::default(), vec![Vec::new(); 5]);
    for s in &states {
        assert!(s.log.is_empty());
        assert_eq!(s.digest(), rsm::state::DIGEST_SEED);
    }
}

#[test]
fn pipelining_keeps_multiple_slots_in_flight() {
    // A window of 1 and a window of 6 must both converge to the same
    // correct contents (pipelining changes scheduling, never semantics).
    let n = 4;
    let preload: Vec<Vec<Command>> = (0..n)
        .map(|i| {
            (1..=12)
                .map(|r| put(i as u64 + 1, r, format!("p{i}-{r}").as_bytes(), b"v"))
                .collect()
        })
        .collect();
    let narrow = run_cluster(
        n,
        31,
        RsmOptions {
            window: 1,
            max_batch: 3,
        },
        preload.clone(),
    );
    let wide = run_cluster(
        n,
        31,
        RsmOptions {
            window: 6,
            max_batch: 3,
        },
        preload,
    );
    assert_identical(&narrow);
    assert_identical(&wide);
    assert_eq!(narrow[0].applied_commands, 48);
    assert_eq!(wide[0].applied_commands, 48);
    // Same commands, same KV — regardless of window-induced slot layout.
    assert_eq!(narrow[0].kv, wide[0].kv);
}

#[test]
fn transfer_hooks_round_trip_the_applied_log() {
    use simnet::{Process, Wire};

    let n = 4;
    let config = bt_core::Config::malicious(n, 1).expect("valid config");
    // A donor log: five applied slots, two carrying commands.
    let log: Vec<rsm::LogEntry> = (0..5u64)
        .map(|slot| rsm::LogEntry {
            slot,
            winner: slot % n as u64,
            commands: if slot == 1 || slot == 3 {
                vec![put(7, slot, b"k", b"v")]
            } else {
                Vec::new()
            },
        })
        .collect();
    let mut bytes = Vec::new();
    log.encode(&mut bytes);

    let mut amnesiac =
        Replica::new(config, ProcessId::new(2), RsmOptions::default()).with_view(LogView::new());
    assert!(amnesiac.adopt_transfer(&bytes), "canonical bytes adopt");
    assert_eq!(amnesiac.phase(), 5, "applied prefix installed");
    // The digest contract the transfer layer verifies generically:
    // fnv1a64(transfer_state()) must equal transfer_digest().
    let served = amnesiac.transfer_state().expect("replicas serve state");
    assert_eq!(served, bytes, "adopted state re-serves byte-identically");
    assert_eq!(
        amnesiac.transfer_digest(),
        netstack::fnv1a64(&served),
        "digest contract"
    );

    // Malformed and non-canonical bytes are rejected without effect.
    let mut fresh =
        Replica::new(config, ProcessId::new(0), RsmOptions::default()).with_view(LogView::new());
    assert!(!fresh.adopt_transfer(b"garbage"));
    let mut gapped = log.clone();
    gapped[2].slot = 9; // a hole
    let mut bad = Vec::new();
    gapped.encode(&mut bad);
    assert!(!fresh.adopt_transfer(&bad));
    assert_eq!(
        fresh.phase(),
        0,
        "rejected bytes leave the replica unchanged"
    );
}
