//! End-to-end service tests on a real loopback cluster: clients over
//! TCP, commands through the journaled gateway, one replica killed and
//! recovered from its WAL mid-stream, logs byte-identical at the end.

use std::time::Duration;

use rsm::{ClientResp, RsmClient, RsmCluster, RsmClusterOptions};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "rsm-test-{tag}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn clients_commit_and_read_through_the_service() {
    let dir = temp_dir("basic");
    let mut cluster = RsmCluster::start(RsmClusterOptions::new(4, dir.clone())).unwrap();

    // Two clients on two different nodes, interleaved.
    let mut a = RsmClient::connect(cluster.client_addr(0), 1).unwrap();
    let mut b = RsmClient::connect(cluster.client_addr(2), 2).unwrap();
    for i in 0..20u32 {
        let resp = a
            .put(format!("a{i}").as_bytes(), format!("va{i}").as_bytes())
            .unwrap();
        assert!(
            matches!(resp, ClientResp::Committed { client: 1, .. }),
            "unexpected response: {resp:?}"
        );
        let resp = b
            .put(format!("b{i}").as_bytes(), format!("vb{i}").as_bytes())
            .unwrap();
        assert!(matches!(resp, ClientResp::Committed { client: 2, .. }));
    }
    // Delete through one node, observe through another once quiescent.
    assert!(matches!(
        a.del(b"a0").unwrap(),
        ClientResp::Committed { .. }
    ));

    let (applied, digest) = cluster
        .await_identical(Duration::from_secs(30))
        .expect("cluster did not converge to identical logs");
    assert!(applied > 0);

    assert_eq!(a.read(b"a1").unwrap(), Some(b"va1".to_vec()));
    assert_eq!(b.read(b"a0").unwrap(), None);
    assert_eq!(b.read(b"b19").unwrap(), Some(b"vb19".to_vec()));

    // Idempotent retry: re-proposing an applied request id answers
    // Committed immediately without growing the state.
    let before = cluster.view(0).with(|s| s.applied_commands);
    assert!(matches!(
        a.retry(
            1,
            rsm::Op::Put {
                key: b"a0".to_vec(),
                value: b"va0".to_vec()
            }
        )
        .unwrap(),
        ClientResp::Committed { .. }
    ));
    let _ = cluster.await_identical(Duration::from_secs(10));
    assert_eq!(cluster.view(0).with(|s| s.applied_commands), before);

    // Digest equality really means byte-identical logs.
    for i in 1..cluster.n() {
        assert_eq!(
            cluster.view(i).with(|s| (s.next_slot(), s.digest())),
            (applied, digest)
        );
    }

    cluster.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn killed_replica_recovers_from_wal_and_converges() {
    let dir = temp_dir("recover");
    let mut opts = RsmClusterOptions::new(5, dir.clone());
    opts.snapshot_every = 64; // exercise checkpoint + tail replay
    opts.service.propose_timeout = Duration::from_secs(30);
    let mut cluster = RsmCluster::start(opts).unwrap();
    let victim = 3;

    // Phase 1: load through every node, including the future victim.
    let mut clients: Vec<RsmClient> = (0..5)
        .map(|i| RsmClient::connect(cluster.client_addr(i), 10 + i as u64).unwrap())
        .collect();
    for round in 0..10u32 {
        for c in &mut clients {
            let id = c.id();
            let resp = c
                .put(
                    format!("k{id}-{round}").as_bytes(),
                    format!("v{round}").as_bytes(),
                )
                .unwrap();
            assert!(matches!(resp, ClientResp::Committed { .. }), "{resp:?}");
        }
    }

    // Kill the victim mid-stream (its WAL keeps everything it journaled;
    // its client connection dies with it). The log's availability follows
    // its leaders: slots led by the dead replica cannot be announced, so
    // commits pause at its first unfilled slot until the supervised
    // restart — proposals accepted meanwhile queue and commit after
    // recovery.
    cluster.kill(victim);
    assert!(!cluster.is_up(victim));
    drop(clients.remove(victim));

    // Phase 2: keep proposing through the survivors *while* the victim is
    // down, from a background thread (the proposals block server-side
    // until recovery lets them commit).
    let phase2 = {
        let addrs: Vec<_> = (0..5)
            .filter(|&i| i != victim)
            .map(|i| cluster.client_addr(i))
            .collect();
        std::thread::spawn(move || {
            let mut clients: Vec<RsmClient> = addrs
                .iter()
                .enumerate()
                .map(|(j, &a)| RsmClient::connect(a, 20 + j as u64).unwrap())
                .collect();
            for round in 0..8u32 {
                for c in &mut clients {
                    let id = c.id();
                    let resp = c
                        .put(
                            format!("m{id}-{round}").as_bytes(),
                            format!("w{round}").as_bytes(),
                        )
                        .unwrap();
                    assert!(matches!(resp, ClientResp::Committed { .. }), "{resp:?}");
                }
            }
        })
    };

    // Let the in-flight load pile up against the dead leader's slots,
    // then restart it from the WAL on the original ports.
    std::thread::sleep(Duration::from_millis(500));
    cluster.restart(victim).unwrap();
    assert!(cluster.is_up(victim));
    phase2
        .join()
        .expect("in-flight proposals failed to commit across the restart");

    // Phase 3: more load after recovery, through every node again.
    let mut probe3 = RsmClient::connect(cluster.client_addr(victim), 30).unwrap();
    for round in 0..5u32 {
        let resp = probe3.put(format!("p{round}").as_bytes(), b"post").unwrap();
        assert!(matches!(resp, ClientResp::Committed { .. }), "{resp:?}");
    }

    let (applied, digest) = cluster
        .await_identical(Duration::from_secs(60))
        .expect("cluster (incl. the recovered replica) did not converge");
    assert!(applied > 0);
    let recovered = cluster.view(victim).with(|s| (s.next_slot(), s.digest()));
    assert_eq!(
        recovered,
        (applied, digest),
        "the recovered replica's log diverged"
    );

    // The recovered replica serves reads of data proposed while it was
    // down (client 21's phase-2 writes committed after recovery).
    let mut probe = RsmClient::connect(cluster.client_addr(victim), 99).unwrap();
    assert_eq!(probe.read(b"m21-7").unwrap(), Some(b"w7".to_vec()));
    // No replica saw an equivocation while rejoining.
    // (Equivocation counters live in each node's metrics registry.)
    for i in 0..cluster.n() {
        let snap = cluster.registry(i).snapshot();
        let text = snap.render_prometheus();
        for line in text.lines() {
            if line.starts_with("bt_equivocations_total") {
                let v: f64 = line.rsplit(' ').next().unwrap().parse().unwrap_or(0.0);
                assert_eq!(v, 0.0, "node {i} saw an equivocation: {line}");
            }
        }
    }

    cluster.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}
