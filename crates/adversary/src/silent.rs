//! The silent process: dead on arrival.

use core::fmt;
use core::marker::PhantomData;

use simnet::{Ctx, Envelope, Process, Value};

/// A process that never sends, never decides, and reports itself halted —
/// equivalently, a process that died before its first atomic step.
///
/// This is both the simplest fail-stop behaviour (§2) and a legal malicious
/// behaviour (§3: "the malicious processes can behave just like fail-stop
/// processes and die", the observation behind Lemma 3). It is also the
/// fault model of the §5 initially-dead discussion.
///
/// # Examples
///
/// ```
/// use adversary::Silent;
/// use bt_core::MaliciousMsg;
/// use simnet::Process;
///
/// let dead: Silent<MaliciousMsg> = Silent::new();
/// assert!(dead.halted());
/// assert_eq!(dead.decision(), None);
/// ```
pub struct Silent<M> {
    _marker: PhantomData<fn() -> M>,
}

impl<M> Silent<M> {
    /// Creates a silent process.
    #[must_use]
    pub fn new() -> Self {
        Silent {
            _marker: PhantomData,
        }
    }
}

impl<M> Default for Silent<M> {
    fn default() -> Self {
        Silent::new()
    }
}

impl<M> fmt::Debug for Silent<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Silent")
    }
}

impl<M> Process for Silent<M> {
    type Msg = M;

    fn on_start(&mut self, _ctx: &mut Ctx<'_, M>) {}

    fn on_receive(&mut self, _env: Envelope<M>, _ctx: &mut Ctx<'_, M>) {}

    fn decision(&self) -> Option<Value> {
        None
    }

    fn phase(&self) -> u64 {
        0
    }

    fn halted(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bt_core::{Config, Malicious, MaliciousMsg};
    use simnet::{Role, Sim};

    #[test]
    fn consensus_succeeds_around_silent_byzantine() {
        // n = 7, k = 2: two dead-on-arrival "malicious" processes.
        let config = Config::malicious(7, 2).unwrap();
        for seed in 0..10 {
            let mut b = Sim::builder();
            for i in 0..5 {
                b.process(
                    Box::new(Malicious::new(config, Value::from(i % 2 == 0))),
                    Role::Correct,
                );
            }
            for _ in 0..2 {
                b.process(Box::new(Silent::<MaliciousMsg>::new()), Role::Faulty);
            }
            let report = b.seed(seed).step_limit(4_000_000).build().run();
            assert!(report.agreement(), "seed {seed}");
            assert!(report.all_correct_decided(), "seed {seed}");
        }
    }
}
