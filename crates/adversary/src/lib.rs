//! # adversary — fault models for the consensus experiments
//!
//! The paper proves its protocols correct against two adversaries, and this
//! crate makes both executable:
//!
//! * **Fail-stop** (§2): processes may die at any point, without warning,
//!   possibly in the middle of a broadcast. [`Crashing`] wraps any correct
//!   [`Process`] and kills it according to a [`CrashPlan`] — after a fixed
//!   number of sent messages (mid-broadcast crashes included), upon entering
//!   a phase, or at a global step. [`Silent`] is the degenerate case: dead
//!   from the start.
//!
//! * **Malicious** (§3): processes may send "false and contradictory
//!   messages, even according to some malevolent plan". The strategies here
//!   are the plans the paper's analysis worries about — above all the
//!   **balancing** adversary of §4.2, which "tries to balance the number of
//!   1 and 0 messages in the system" to keep correct processes away from
//!   the decision thresholds ([`ContrarianSimple`], [`ContrarianMalicious`]),
//!   plus equivocators that tell each half of the system a different story
//!   ([`TwoFacedMalicious`], [`EquivocatingEchoer`]) and pure noise
//!   ([`RandomMalicious`]).
//!
//! The simulator stamps true sender identities on envelopes (the §3.1
//! authenticity assumption), so none of these strategies can impersonate
//! another process — they can only lie in payloads, exactly as the model
//! allows.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod benor_attack;
mod byzantine;
mod crash;
mod silent;

pub use benor_attack::ContrarianBenOr;
pub use byzantine::{
    ContrarianMalicious, ContrarianSimple, EquivocatingEchoer, RandomMalicious, TwoFacedMalicious,
};
pub use crash::{CrashPlan, Crashing};
pub use silent::Silent;
