//! Crash wrappers: fail-stop behaviour composed onto any correct process.

use core::fmt;

use simnet::{Ctx, Envelope, Process, Value};

/// When a [`Crashing`] wrapper kills its inner process.
///
/// The paper's fail-stop processes "may simply die, i.e., stop participating
/// in the protocol", with no warning and — crucially — possibly part-way
/// through sending a round of messages. [`CrashPlan::AfterSends`] expresses
/// exactly that: the process's lifetime is measured in messages sent, so a
/// broadcast can be cut mid-flight and different recipients see different
/// final behaviour from the same dead process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashPlan {
    /// Die immediately after the `limit`-th message leaves (a `limit` that
    /// falls inside a broadcast splits it — the canonical nasty crash).
    AfterSends(u64),
    /// Die upon *entering* the given protocol phase: the phase's broadcast
    /// is never sent.
    AtPhase(u64),
    /// Die at the first atomic step at or after the given global step.
    AtStep(u64),
}

/// Wraps a correct process and crashes it according to a [`CrashPlan`].
///
/// Composability is the point: the protocol implementations contain no fault
/// code at all; any `Process` becomes a fail-stop process by wrapping. The
/// wrapper intercepts the inner process's outbox so that `AfterSends` can
/// truncate a broadcast mid-flight.
///
/// # Examples
///
/// ```
/// use adversary::{CrashPlan, Crashing};
/// use bt_core::{Config, FailStop};
/// use simnet::{Role, Sim, Value};
///
/// let config = Config::fail_stop(5, 2)?;
/// let mut b = Sim::builder();
/// for i in 0..3 {
///     b.process(Box::new(FailStop::new(config, Value::One)), Role::Correct);
/// }
/// // Two processes crash: one mid-initial-broadcast, one entering phase 1.
/// b.process(
///     Box::new(Crashing::new(
///         FailStop::new(config, Value::Zero),
///         CrashPlan::AfterSends(2),
///     )),
///     Role::Faulty,
/// );
/// b.process(
///     Box::new(Crashing::new(
///         FailStop::new(config, Value::Zero),
///         CrashPlan::AtPhase(1),
///     )),
///     Role::Faulty,
/// );
/// let report = b.seed(11).build().run();
/// assert!(report.agreement());
/// assert!(report.all_correct_decided());
/// # Ok::<(), bt_core::ConfigError>(())
/// ```
pub struct Crashing<P: Process> {
    inner: P,
    plan: CrashPlan,
    sent: u64,
    dead: bool,
}

impl<P: Process> Crashing<P> {
    /// Wraps `inner` with a crash plan.
    pub fn new(inner: P, plan: CrashPlan) -> Self {
        Crashing {
            inner,
            plan,
            sent: 0,
            dead: false,
        }
    }

    /// Whether the crash has happened yet.
    #[must_use]
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Read access to the wrapped process (e.g. to inspect its state in
    /// tests).
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// How many messages may still leave before the `AfterSends` budget is
    /// exhausted (`u64::MAX` for the other plans).
    fn send_budget(&self) -> u64 {
        match self.plan {
            CrashPlan::AfterSends(limit) => limit.saturating_sub(self.sent),
            _ => u64::MAX,
        }
    }

    /// Runs `f` against the inner process with an intercepted outbox, then
    /// forwards at most the send budget and updates death state.
    fn step_inner(
        &mut self,
        ctx: &mut Ctx<'_, P::Msg>,
        f: impl FnOnce(&mut P, &mut Ctx<'_, P::Msg>),
    ) {
        let mut intercepted: Vec<(simnet::ProcessId, P::Msg)> = Vec::new();
        {
            let mut inner_ctx = Ctx::new(ctx.me(), ctx.n(), ctx.step(), &mut intercepted, {
                // Reuse the run's RNG so wrapped randomized protocols stay
                // deterministic per seed.
                ctx.rng()
            });
            f(&mut self.inner, &mut inner_ctx);
        }
        let budget = self.send_budget();
        let total = intercepted.len() as u64;
        for (to, msg) in intercepted.into_iter().take(budget as usize) {
            ctx.send(to, msg);
        }
        if total > budget {
            self.sent += budget;
            self.dead = true; // died mid-broadcast
            return;
        }
        self.sent += total;
        if let CrashPlan::AfterSends(limit) = self.plan {
            if self.sent >= limit {
                self.dead = true;
            }
        }
        if let CrashPlan::AtPhase(t) = self.plan {
            if self.inner.phase() >= t {
                self.dead = true;
            }
        }
    }

    fn check_step_trigger(&mut self, step: u64) {
        if let CrashPlan::AtStep(s) = self.plan {
            if step >= s {
                self.dead = true;
            }
        }
    }
}

impl<P: Process> fmt::Debug for Crashing<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Crashing")
            .field("plan", &self.plan)
            .field("sent", &self.sent)
            .field("dead", &self.dead)
            .field("inner", &self.inner)
            .finish()
    }
}

impl<P: Process> Process for Crashing<P> {
    type Msg = P::Msg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, P::Msg>) {
        self.check_step_trigger(ctx.step());
        if self.dead {
            return;
        }
        self.step_inner(ctx, |p, c| p.on_start(c));
    }

    fn on_receive(&mut self, env: Envelope<P::Msg>, ctx: &mut Ctx<'_, P::Msg>) {
        self.check_step_trigger(ctx.step());
        if self.dead {
            return;
        }
        self.step_inner(ctx, |p, c| p.on_receive(env, c));
        // AtPhase triggers as soon as the inner process *enters* the phase:
        // the phase's broadcast was already produced inside this step, so
        // suppressing future steps (not this one's sends) models a crash at
        // the phase boundary. Use AfterSends for intra-broadcast deaths.
    }

    fn decision(&self) -> Option<Value> {
        // A dead process never "decides" as far as the run is concerned —
        // its d_p is unobservable. Before death, report the inner state.
        if self.dead {
            None
        } else {
            self.inner.decision()
        }
    }

    fn phase(&self) -> u64 {
        self.inner.phase()
    }

    fn halted(&self) -> bool {
        self.dead || self.inner.halted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bt_core::{Config, FailStop, FailStopMsg};
    use simnet::{ProcessId, Role, Sim, SimRng};

    #[test]
    fn after_sends_truncates_broadcast() {
        let config = Config::fail_stop(5, 2).unwrap();
        let mut p = Crashing::new(FailStop::new(config, Value::One), CrashPlan::AfterSends(3));
        let mut outbox: Vec<(ProcessId, FailStopMsg)> = Vec::new();
        let mut rng = SimRng::seed(0);
        let mut ctx = Ctx::new(ProcessId::new(0), 5, 0, &mut outbox, &mut rng);
        p.on_start(&mut ctx);
        // The phase-0 broadcast is 5 messages; only 3 escape.
        assert_eq!(outbox.len(), 3);
        assert!(p.is_dead());
        assert!(p.halted());

        // Further deliveries are inert.
        let env = Envelope::new(
            ProcessId::new(1),
            FailStopMsg {
                phase: 0,
                value: Value::One,
                cardinality: 1,
            },
        );
        let mut ctx = Ctx::new(ProcessId::new(0), 5, 1, &mut outbox, &mut rng);
        p.on_receive(env, &mut ctx);
        assert_eq!(outbox.len(), 3);
    }

    #[test]
    fn at_phase_allows_earlier_phases() {
        let config = Config::fail_stop(3, 1).unwrap();
        let mut p = Crashing::new(FailStop::new(config, Value::One), CrashPlan::AtPhase(1));
        let mut outbox: Vec<(ProcessId, FailStopMsg)> = Vec::new();
        let mut rng = SimRng::seed(0);
        let mut ctx = Ctx::new(ProcessId::new(0), 3, 0, &mut outbox, &mut rng);
        p.on_start(&mut ctx);
        assert!(!p.is_dead(), "phase 0 proceeds normally");
        assert_eq!(outbox.len(), 3);

        // Completing phase 0 moves the inner process to phase 1 → death.
        let mut ctx = Ctx::new(ProcessId::new(0), 3, 1, &mut outbox, &mut rng);
        for s in 0..2 {
            p.on_receive(
                Envelope::new(
                    ProcessId::new(s),
                    FailStopMsg {
                        phase: 0,
                        value: Value::One,
                        cardinality: 1,
                    },
                ),
                &mut ctx,
            );
        }
        assert!(p.is_dead());
        assert_eq!(p.phase(), 1);
    }

    #[test]
    fn at_step_kills_before_acting() {
        let config = Config::fail_stop(3, 1).unwrap();
        let mut p = Crashing::new(FailStop::new(config, Value::One), CrashPlan::AtStep(0));
        let mut outbox: Vec<(ProcessId, FailStopMsg)> = Vec::new();
        let mut rng = SimRng::seed(0);
        let mut ctx = Ctx::new(ProcessId::new(0), 3, 0, &mut outbox, &mut rng);
        p.on_start(&mut ctx);
        assert!(p.is_dead());
        assert!(outbox.is_empty(), "died before its first step");
    }

    #[test]
    fn dead_processes_report_no_decision() {
        let config = Config::fail_stop(3, 1).unwrap();
        let p = Crashing::new(FailStop::new(config, Value::One), CrashPlan::AtStep(0));
        assert_eq!(p.decision(), None);
    }

    #[test]
    fn consensus_survives_maximal_crashes() {
        // n = 7, k = 3 = ⌊(n−1)/2⌋ crashes with assorted plans.
        let config = Config::fail_stop(7, 3).unwrap();
        let plans = [
            CrashPlan::AfterSends(4),
            CrashPlan::AtPhase(1),
            CrashPlan::AfterSends(10),
        ];
        for seed in 0..15 {
            let mut b = Sim::builder();
            for i in 0..4 {
                b.process(
                    Box::new(FailStop::new(config, Value::from(i % 2 == 0))),
                    Role::Correct,
                );
            }
            for (i, plan) in plans.iter().enumerate() {
                b.process(
                    Box::new(Crashing::new(
                        FailStop::new(config, Value::from(i % 2 == 1)),
                        *plan,
                    )),
                    Role::Faulty,
                );
            }
            let report = b.seed(seed).step_limit(4_000_000).build().run();
            assert!(report.agreement(), "seed {seed}");
            assert!(
                report.all_correct_decided(),
                "seed {seed}: {:?}",
                report.status
            );
        }
    }
}
