//! Byzantine strategies against the Bracha-Toueg protocols.
//!
//! §4's performance analysis assumes the malicious processes "do their worst
//! to slow convergence, i.e., they try to enable more divergent views of the
//! system" — concretely, "they will try to balance the number of 1 and 0
//! messages in the system". The *contrarian* strategies implement that
//! balancing adversary; the *two-faced* and *equivocating* strategies attack
//! consistency instead, telling different halves of the system different
//! stories (which the Figure 2 echo quorums are designed to defeat); the
//! *random* strategy is calibration noise.

use core::fmt;

use bt_core::{Config, Malicious, MaliciousKind, MaliciousMsg, Phase, SimpleMsg};
use simnet::{Ctx, Envelope, Process, ProcessId, Value};

use std::collections::BTreeMap;

/// Runs `f` on the inner process with an intercepted outbox, then lets
/// `tamper` rewrite each outgoing `(recipient, message)` pair before it is
/// really sent.
fn run_tampered<P: Process>(
    inner: &mut P,
    ctx: &mut Ctx<'_, P::Msg>,
    f: impl FnOnce(&mut P, &mut Ctx<'_, P::Msg>),
    mut tamper: impl FnMut(ProcessId, &mut P::Msg),
) {
    let mut intercepted: Vec<(ProcessId, P::Msg)> = Vec::new();
    {
        let mut inner_ctx = Ctx::new(ctx.me(), ctx.n(), ctx.step(), &mut intercepted, ctx.rng());
        f(inner, &mut inner_ctx);
    }
    for (to, mut msg) in intercepted {
        tamper(to, &mut msg);
        ctx.send(to, msg);
    }
}

/// The §4.1/§4.2 **balancing adversary** against the simple variant: it
/// follows the protocol's timing exactly, but each phase broadcasts the
/// *minority* value of its view (ties broken towards 1, the opposite of the
/// correct tie-break), pushing the system back towards the balanced state
/// the Markov analysis identifies as slowest.
#[derive(Debug)]
pub struct ContrarianSimple {
    config: Config,
    value: Value,
    phase: u64,
    message_count: [usize; 2],
    deferred: BTreeMap<u64, Vec<SimpleMsg>>,
}

impl ContrarianSimple {
    /// Creates a balancing adversary for the simple variant.
    #[must_use]
    pub fn new(config: Config) -> Self {
        ContrarianSimple {
            config,
            value: Value::One,
            phase: 0,
            message_count: [0; 2],
            deferred: BTreeMap::new(),
        }
    }

    fn end_phase(&mut self, ctx: &mut Ctx<'_, SimpleMsg>) {
        // Anti-majority: feed the losing side.
        self.value = !Value::majority_of(self.message_count);
        self.phase += 1;
        self.message_count = [0; 2];
        ctx.broadcast(SimpleMsg {
            phase: self.phase,
            value: self.value,
        });
    }
}

impl Process for ContrarianSimple {
    type Msg = SimpleMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, SimpleMsg>) {
        ctx.broadcast(SimpleMsg {
            phase: 0,
            value: self.value,
        });
    }

    fn on_receive(&mut self, env: Envelope<SimpleMsg>, ctx: &mut Ctx<'_, SimpleMsg>) {
        let msg = env.msg;
        if msg.phase < self.phase {
            return;
        }
        if msg.phase > self.phase {
            self.deferred.entry(msg.phase).or_default().push(msg);
            return;
        }
        self.message_count[msg.value.index()] += 1;
        if self.message_count[0] + self.message_count[1] >= self.config.quota() {
            self.end_phase(ctx);
            while let Some(batch) = self.deferred.remove(&self.phase) {
                let mut ended = false;
                for m in batch {
                    self.message_count[m.value.index()] += 1;
                    if self.message_count[0] + self.message_count[1] >= self.config.quota() {
                        self.end_phase(ctx);
                        ended = true;
                        break;
                    }
                }
                if !ended {
                    break;
                }
            }
        }
    }

    fn decision(&self) -> Option<Value> {
        None
    }

    fn phase(&self) -> u64 {
        self.phase
    }
}

/// The balancing adversary against the Figure 2 protocol: it runs a real
/// [`Malicious`] instance for timing and echo behaviour, but every *initial*
/// message about itself leaves with the value **negated** — it always
/// reports the minority side of what it accepted.
pub struct ContrarianMalicious {
    inner: Malicious,
}

impl ContrarianMalicious {
    /// Creates a balancing adversary for the malicious protocol.
    #[must_use]
    pub fn new(config: Config) -> Self {
        ContrarianMalicious {
            inner: Malicious::new(config, Value::One),
        }
    }
}

impl fmt::Debug for ContrarianMalicious {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ContrarianMalicious")
            .finish_non_exhaustive()
    }
}

impl Process for ContrarianMalicious {
    type Msg = MaliciousMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, MaliciousMsg>) {
        let me = ctx.me();
        run_tampered(
            &mut self.inner,
            ctx,
            |p, c| p.on_start(c),
            |_to, msg| {
                if msg.kind == MaliciousKind::Initial && msg.subject == me {
                    msg.value = !msg.value;
                }
            },
        );
    }

    fn on_receive(&mut self, env: Envelope<MaliciousMsg>, ctx: &mut Ctx<'_, MaliciousMsg>) {
        let me = ctx.me();
        run_tampered(
            &mut self.inner,
            ctx,
            |p, c| p.on_receive(env, c),
            |_to, msg| {
                if msg.kind == MaliciousKind::Initial && msg.subject == me {
                    msg.value = !msg.value;
                }
            },
        );
    }

    fn decision(&self) -> Option<Value> {
        None // a liar's d_p is meaningless
    }

    fn phase(&self) -> u64 {
        self.inner.phase()
    }
}

/// An equivocating attacker on the **initial** stage: each phase it tells
/// even-indexed processes its value is `v` and odd-indexed processes `!v`.
/// The echo quorum of Figure 2 forces at most one of the two stories to be
/// accepted per phase — this strategy is the one the consistency proof of
/// Theorem 4 defends against most directly.
pub struct TwoFacedMalicious {
    inner: Malicious,
}

impl TwoFacedMalicious {
    /// Creates a two-faced attacker for the malicious protocol.
    #[must_use]
    pub fn new(config: Config) -> Self {
        TwoFacedMalicious {
            inner: Malicious::new(config, Value::Zero),
        }
    }
}

impl fmt::Debug for TwoFacedMalicious {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TwoFacedMalicious").finish_non_exhaustive()
    }
}

fn two_face(me: ProcessId) -> impl FnMut(ProcessId, &mut MaliciousMsg) {
    move |to, msg| {
        if msg.kind == MaliciousKind::Initial && msg.subject == me && to.index() % 2 == 1 {
            msg.value = !msg.value;
        }
    }
}

impl Process for TwoFacedMalicious {
    type Msg = MaliciousMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, MaliciousMsg>) {
        let me = ctx.me();
        run_tampered(&mut self.inner, ctx, |p, c| p.on_start(c), two_face(me));
    }

    fn on_receive(&mut self, env: Envelope<MaliciousMsg>, ctx: &mut Ctx<'_, MaliciousMsg>) {
        let me = ctx.me();
        run_tampered(
            &mut self.inner,
            ctx,
            |p, c| p.on_receive(env, c),
            two_face(me),
        );
    }

    fn decision(&self) -> Option<Value> {
        None
    }

    fn phase(&self) -> u64 {
        self.inner.phase()
    }
}

/// An equivocating attacker on the **echo** stage: it relays every initial
/// it hears, but flips the echoed value for odd-indexed recipients. This
/// attacks other processes' message acceptance rather than its own state
/// announcement; the per-sender echo dedup plus the `(n+k)/2` quorum keep it
/// from splitting any acceptance.
pub struct EquivocatingEchoer {
    inner: Malicious,
}

impl EquivocatingEchoer {
    /// Creates an echo-equivocating attacker for the malicious protocol.
    #[must_use]
    pub fn new(config: Config) -> Self {
        EquivocatingEchoer {
            inner: Malicious::new(config, Value::Zero),
        }
    }
}

impl fmt::Debug for EquivocatingEchoer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EquivocatingEchoer").finish_non_exhaustive()
    }
}

fn echo_flip(to: ProcessId, msg: &mut MaliciousMsg) {
    if msg.kind == MaliciousKind::Echo && to.index() % 2 == 1 {
        msg.value = !msg.value;
    }
}

impl Process for EquivocatingEchoer {
    type Msg = MaliciousMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, MaliciousMsg>) {
        run_tampered(&mut self.inner, ctx, |p, c| p.on_start(c), echo_flip);
    }

    fn on_receive(&mut self, env: Envelope<MaliciousMsg>, ctx: &mut Ctx<'_, MaliciousMsg>) {
        run_tampered(&mut self.inner, ctx, |p, c| p.on_receive(env, c), echo_flip);
    }

    fn decision(&self) -> Option<Value> {
        None
    }

    fn phase(&self) -> u64 {
        self.inner.phase()
    }
}

/// Pure noise: every delivery triggers a burst of random (but
/// authenticity-respecting) initials and echoes for the phase of the
/// message just seen. Useful as a fuzzing adversary: it explores message
/// patterns the structured attackers never produce.
#[derive(Debug)]
pub struct RandomMalicious {
    config: Config,
    burst: usize,
}

impl RandomMalicious {
    /// Creates a noise attacker sending `burst` random messages per
    /// delivery.
    #[must_use]
    pub fn new(config: Config, burst: usize) -> Self {
        RandomMalicious { config, burst }
    }
}

impl Process for RandomMalicious {
    type Msg = MaliciousMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, MaliciousMsg>) {
        let me = ctx.me();
        // Announce a random value so correct processes are not starved of
        // our initial (silence is a *different* strategy).
        let v = Value::from(ctx.rng().coin());
        ctx.broadcast(MaliciousMsg::initial(me, v, 0));
    }

    fn on_receive(&mut self, env: Envelope<MaliciousMsg>, ctx: &mut Ctx<'_, MaliciousMsg>) {
        let Phase::At(t) = env.msg.phase else {
            return;
        };
        let n = self.config.n();
        let me = ctx.me();
        for _ in 0..self.burst {
            let to = ProcessId::new(ctx.rng().index(n));
            let subject = ProcessId::new(ctx.rng().index(n));
            let value = Value::from(ctx.rng().coin());
            let msg = if ctx.rng().coin() {
                // Initials must name ourselves or be dropped as forgeries;
                // send a (possibly phase-confused) initial about ourselves.
                MaliciousMsg::initial(me, value, t + u64::from(ctx.rng().coin()))
            } else {
                MaliciousMsg::echo(subject, value, t)
            };
            ctx.send(to, msg);
        }
    }

    fn decision(&self) -> Option<Value> {
        None
    }

    fn phase(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{Role, Sim};

    fn attack_run(
        n: usize,
        k: usize,
        seed: u64,
        make: impl Fn(Config) -> Box<dyn Process<Msg = MaliciousMsg>>,
    ) -> simnet::RunReport {
        let config = Config::malicious(n, k).unwrap();
        let mut b = Sim::builder();
        for i in 0..n - k {
            b.process(
                Box::new(Malicious::new(config, Value::from(i % 2 == 0))),
                Role::Correct,
            );
        }
        for _ in 0..k {
            b.process(make(config), Role::Faulty);
        }
        b.seed(seed).step_limit(6_000_000).build().run()
    }

    #[test]
    fn contrarian_malicious_cannot_break_agreement() {
        for seed in 0..15 {
            let r = attack_run(7, 2, seed, |c| Box::new(ContrarianMalicious::new(c)));
            assert!(r.agreement(), "seed {seed}");
            assert!(r.all_correct_decided(), "seed {seed}: {:?}", r.status);
        }
    }

    #[test]
    fn two_faced_cannot_break_agreement() {
        for seed in 0..15 {
            let r = attack_run(7, 2, seed, |c| Box::new(TwoFacedMalicious::new(c)));
            assert!(r.agreement(), "seed {seed}");
            assert!(r.all_correct_decided(), "seed {seed}: {:?}", r.status);
        }
    }

    #[test]
    fn equivocating_echoer_cannot_break_agreement() {
        for seed in 0..15 {
            let r = attack_run(7, 2, seed, |c| Box::new(EquivocatingEchoer::new(c)));
            assert!(r.agreement(), "seed {seed}");
            assert!(r.all_correct_decided(), "seed {seed}: {:?}", r.status);
        }
    }

    #[test]
    fn random_noise_cannot_break_agreement() {
        for seed in 0..10 {
            let r = attack_run(4, 1, seed, |c| Box::new(RandomMalicious::new(c, 5)));
            assert!(r.agreement(), "seed {seed}");
            assert!(r.all_correct_decided(), "seed {seed}: {:?}", r.status);
        }
    }

    #[test]
    fn contrarian_simple_slows_but_does_not_break_failstop_faults() {
        use bt_core::Simple;
        let config = Config::malicious(7, 2).unwrap();
        for seed in 0..10 {
            let mut b = Sim::builder();
            // NOTE: the simple variant only claims fail-stop resilience; a
            // balancing (non-equivocating) adversary is within that model's
            // spirit as a "slow but valid-looking" participant.
            for i in 0..5 {
                b.process(
                    Box::new(Simple::new(config, Value::from(i % 2 == 0))),
                    Role::Correct,
                );
            }
            for _ in 0..2 {
                b.process(Box::new(ContrarianSimple::new(config)), Role::Faulty);
            }
            let r = b.seed(seed).step_limit(6_000_000).build().run();
            assert!(r.agreement(), "seed {seed}");
        }
    }
}
