//! Byzantine strategies against the Ben-Or baseline.

use core::fmt;

use benor::{BenOrConfig, BenOrMsg, BenOrProcess};
use simnet::{Ctx, Envelope, Process, Value};

/// The balancing adversary pointed at Ben-Or: it follows the protocol's
/// round/exchange timing (by running a real [`BenOrProcess`] inside), but
/// every outgoing report or proposal leaves with its value **negated** —
/// always feeding the minority side, maximizing the chance that no value
/// reaches the proposal or decision thresholds and forcing correct
/// processes back onto their coins round after round.
///
/// Used by experiment E7's fault-tolerant comparison: Ben-Or tolerates this
/// only for `t < n/5`, while the Figure 2 protocol shrugs it off at
/// `k < n/3`.
pub struct ContrarianBenOr {
    inner: BenOrProcess,
}

impl ContrarianBenOr {
    /// Creates a balancing attacker for a Ben-Or system.
    #[must_use]
    pub fn new(config: BenOrConfig) -> Self {
        ContrarianBenOr {
            inner: BenOrProcess::new(config, Value::One),
        }
    }
}

impl fmt::Debug for ContrarianBenOr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ContrarianBenOr").finish_non_exhaustive()
    }
}

fn flip_values(msg: &mut BenOrMsg) {
    if let Some(v) = msg.value {
        msg.value = Some(!v);
    }
}

impl Process for ContrarianBenOr {
    type Msg = BenOrMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, BenOrMsg>) {
        let mut intercepted: Vec<(simnet::ProcessId, BenOrMsg)> = Vec::new();
        {
            let mut inner_ctx =
                Ctx::new(ctx.me(), ctx.n(), ctx.step(), &mut intercepted, ctx.rng());
            self.inner.on_start(&mut inner_ctx);
        }
        for (to, mut msg) in intercepted {
            flip_values(&mut msg);
            ctx.send(to, msg);
        }
    }

    fn on_receive(&mut self, env: Envelope<BenOrMsg>, ctx: &mut Ctx<'_, BenOrMsg>) {
        let mut intercepted: Vec<(simnet::ProcessId, BenOrMsg)> = Vec::new();
        {
            let mut inner_ctx =
                Ctx::new(ctx.me(), ctx.n(), ctx.step(), &mut intercepted, ctx.rng());
            self.inner.on_receive(env, &mut inner_ctx);
        }
        for (to, mut msg) in intercepted {
            flip_values(&mut msg);
            ctx.send(to, msg);
        }
    }

    fn decision(&self) -> Option<Value> {
        None
    }

    fn phase(&self) -> u64 {
        self.inner.round()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{Role, Sim};

    #[test]
    fn benor_byzantine_survives_contrarian_within_bound() {
        // n = 6, t = 1 < n/5: the Byzantine variant must still agree and
        // terminate against one balancing attacker.
        let config = BenOrConfig::byzantine(6, 1).unwrap();
        for seed in 0..10 {
            let mut b = Sim::builder();
            for i in 0..5 {
                b.process(
                    Box::new(BenOrProcess::new(config, Value::from(i % 2 == 0))),
                    Role::Correct,
                );
            }
            b.process(Box::new(ContrarianBenOr::new(config)), Role::Faulty);
            let r = b.seed(seed).step_limit(16_000_000).build().run();
            assert!(r.agreement(), "seed {seed}");
            assert!(r.all_correct_decided(), "seed {seed}: {:?}", r.status);
        }
    }

    #[test]
    fn contrarian_slows_benor_relative_to_honest() {
        use simnet::run_trials_seq;
        let n = 6;
        let t = 1;
        let run_with = |attacker: bool| {
            run_trials_seq(60, 0xBE0, move |seed| {
                let config = BenOrConfig::byzantine(n, t).unwrap();
                let mut b = Sim::builder();
                for i in 0..n - 1 {
                    b.process(
                        Box::new(BenOrProcess::new(config, Value::from(i % 2 == 0))),
                        Role::Correct,
                    );
                }
                if attacker {
                    b.process(Box::new(ContrarianBenOr::new(config)), Role::Faulty);
                } else {
                    b.process(
                        Box::new(BenOrProcess::new(config, Value::One)),
                        Role::Correct,
                    );
                }
                b.seed(seed).step_limit(16_000_000);
                b.build()
            })
        };
        let honest = run_with(false);
        let attacked = run_with(true);
        assert!(attacked.all_safe());
        assert!(
            attacked.phases.mean + 0.5 >= honest.phases.mean,
            "attacker should not speed Ben-Or up: {} vs {}",
            attacked.phases.mean,
            honest.phases.mean
        );
    }
}
