//! [`Wire`] codecs for the Ben-Or messages, mirroring the conventions of
//! `bt_core`'s codecs: discriminant byte for enums, fields in declaration
//! order, varint integers (see [`simnet::wire`]).

use simnet::{Wire, WireError, WireReader};

use crate::{BenOrMsg, Exchange};

impl Wire for Exchange {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            Exchange::Report => 0,
            Exchange::Propose => 1,
        });
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let offset = r.offset();
        match r.byte()? {
            0 => Ok(Exchange::Report),
            1 => Ok(Exchange::Propose),
            _ => Err(WireError::Invalid {
                what: "exchange",
                offset,
            }),
        }
    }
}

impl Wire for BenOrMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        self.exchange.encode(out);
        self.round.encode(out);
        self.value.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(BenOrMsg {
            exchange: Wire::decode(r)?,
            round: Wire::decode(r)?,
            value: Wire::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use simnet::Value;

    use super::*;

    #[test]
    fn round_trips_including_abstention_and_boundary_rounds() {
        for msg in [
            BenOrMsg::report(0, Value::Zero),
            BenOrMsg::report(u64::MAX, Value::One),
            BenOrMsg::propose(1, None),
            BenOrMsg::propose(u64::MAX, Some(Value::Zero)),
        ] {
            let bytes = msg.to_bytes();
            assert_eq!(BenOrMsg::from_bytes(&bytes), Ok(msg), "encoding: {bytes:?}");
        }
    }

    #[test]
    fn bad_exchange_rejected() {
        assert!(matches!(
            Exchange::from_bytes(&[7]),
            Err(WireError::Invalid {
                what: "exchange",
                ..
            })
        ));
    }

    #[test]
    fn truncated_rejected() {
        let full = BenOrMsg::propose(300, Some(Value::One)).to_bytes();
        for cut in 0..full.len() {
            assert!(BenOrMsg::from_bytes(&full[..cut]).is_err());
        }
    }
}
