//! The Ben-Or process state machine.

use std::collections::{BTreeMap, HashSet};

use simnet::{Ctx, Envelope, Process, ProcessId, ProtocolEvent, Value, Wire, WireReader};

use crate::{BenOrConfig, BenOrMsg, Exchange};

/// Ben-Or's protocol configured for crash faults (`n > 2t`). Alias of
/// [`BenOrProcess`]; construct it with a [`BenOrConfig::fail_stop`] config.
pub type BenOrFailStop = BenOrProcess;

/// Ben-Or's protocol configured for malicious faults (`n > 5t`). Alias of
/// [`BenOrProcess`]; construct it with a [`BenOrConfig::byzantine`] config.
pub type BenOrByzantine = BenOrProcess;

/// One process of Ben-Or's randomized consensus protocol.
///
/// The state machine is round-based with two exchanges per round; the
/// thresholds (and hence the fault model) come from the [`BenOrConfig`].
/// After deciding, the process keeps participating — like the Figure 2
/// protocol, Ben-Or processes never block anyone by leaving, and the engine
/// stops the run once every correct process has decided.
///
/// # Examples
///
/// ```
/// use benor::{BenOrConfig, BenOrProcess};
/// use simnet::{Role, Sim, Value};
///
/// let config = BenOrConfig::byzantine(6, 1)?;
/// let mut b = Sim::builder();
/// for _ in 0..6 {
///     b.process(Box::new(BenOrProcess::new(config, Value::One)), Role::Correct);
/// }
/// let report = b.seed(4).build().run();
/// assert_eq!(report.decided_value(), Some(Value::One));
/// # Ok::<(), benor::BenOrConfigError>(())
/// ```
#[derive(Debug)]
pub struct BenOrProcess {
    config: BenOrConfig,
    value: Value,
    round: u64,
    exchange: Exchange,
    /// Same-value report counts for the current exchange.
    report_count: [usize; 2],
    reports_total: usize,
    /// Proposal counts: per value, plus abstentions.
    propose_count: [usize; 2],
    proposes_total: usize,
    /// Senders already counted in the current exchange (duplicates and
    /// Byzantine double-sends are ignored).
    seen: HashSet<usize>,
    /// Future-slot messages: slot = round * 2 + exchange index.
    deferred: BTreeMap<u64, Vec<(ProcessId, BenOrMsg)>>,
    decision: Option<Value>,
    decided_round: Option<u64>,
}

fn slot_of(round: u64, exchange: Exchange) -> u64 {
    round * 2
        + match exchange {
            Exchange::Report => 0,
            Exchange::Propose => 1,
        }
}

impl BenOrProcess {
    /// Creates a process with the given initial value.
    #[must_use]
    pub fn new(config: BenOrConfig, input: Value) -> Self {
        BenOrProcess {
            config,
            value: input,
            round: 0,
            exchange: Exchange::Report,
            report_count: [0; 2],
            reports_total: 0,
            propose_count: [0; 2],
            proposes_total: 0,
            seen: HashSet::new(),
            deferred: BTreeMap::new(),
            decision: None,
            decided_round: None,
        }
    }

    /// The process's current working value.
    #[must_use]
    pub fn value(&self) -> Value {
        self.value
    }

    /// The configuration this process runs under.
    #[must_use]
    pub fn config(&self) -> BenOrConfig {
        self.config
    }

    /// The round this process is currently in.
    #[must_use]
    pub fn round(&self) -> u64 {
        self.round
    }

    fn current_slot(&self) -> u64 {
        slot_of(self.round, self.exchange)
    }

    /// Counts one current-slot message; returns `true` if the exchange's
    /// quota was reached.
    fn count(&mut self, sender: ProcessId, msg: BenOrMsg) -> bool {
        if !self.seen.insert(sender.index()) {
            return false;
        }
        match self.exchange {
            Exchange::Report => {
                // A report must carry a value; a Byzantine ⊥-report counts
                // toward the quota but toward neither value.
                if let Some(v) = msg.value {
                    self.report_count[v.index()] += 1;
                }
                self.reports_total += 1;
                self.reports_total >= self.config.quota()
            }
            Exchange::Propose => {
                if let Some(v) = msg.value {
                    self.propose_count[v.index()] += 1;
                }
                self.proposes_total += 1;
                self.proposes_total >= self.config.quota()
            }
        }
    }

    /// Finishes the current exchange and starts the next one.
    fn finish_exchange(&mut self, ctx: &mut Ctx<'_, BenOrMsg>) {
        match self.exchange {
            Exchange::Report => {
                let proposal = Value::BOTH
                    .into_iter()
                    .find(|v| self.config.proposes(self.report_count[v.index()]));
                self.exchange = Exchange::Propose;
                self.seen.clear();
                self.propose_count = [0; 2];
                self.proposes_total = 0;
                ctx.broadcast(BenOrMsg::propose(self.round, proposal));
            }
            Exchange::Propose => {
                // Pick the value with the larger proposal count (they cannot
                // tie above the adoption threshold when both sides would
                // need a correct proposer, but Byzantine noise can create
                // small counts for both; majority wins, ties to zero).
                let best = Value::majority_of(self.propose_count);
                let best_count = self.propose_count[best.index()];
                if self.config.decides(best_count) && self.decision.is_none() {
                    self.decision = Some(best);
                    self.decided_round = Some(self.round);
                    ctx.emit(ProtocolEvent::Decided {
                        phase: self.round,
                        value: best,
                    });
                }
                let previous = self.value;
                if self.config.adopts(best_count) {
                    self.value = best;
                } else if let Some(v) = self.decision {
                    // A decided process keeps reporting its decision rather
                    // than flipping coins against itself.
                    self.value = v;
                } else {
                    self.value = Value::from(ctx.rng().coin());
                    ctx.emit(ProtocolEvent::CoinFlipped {
                        phase: self.round,
                        value: self.value,
                    });
                }
                if self.value != previous {
                    ctx.emit(ProtocolEvent::ValueFlipped {
                        phase: self.round,
                        from: previous,
                        to: self.value,
                    });
                }
                self.round += 1;
                ctx.emit(ProtocolEvent::PhaseEntered { phase: self.round });
                self.exchange = Exchange::Report;
                self.seen.clear();
                self.report_count = [0; 2];
                self.reports_total = 0;
                ctx.broadcast(BenOrMsg::report(self.round, self.value));
            }
        }
    }

    fn drain_deferred(&mut self, ctx: &mut Ctx<'_, BenOrMsg>) {
        loop {
            let slot = self.current_slot();
            let Some(batch) = self.deferred.remove(&slot) else {
                return;
            };
            let mut ended = false;
            for (sender, msg) in batch {
                if self.count(sender, msg) {
                    self.finish_exchange(ctx);
                    ended = true;
                    break;
                }
            }
            if !ended {
                return;
            }
        }
    }
}

impl Process for BenOrProcess {
    type Msg = BenOrMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, BenOrMsg>) {
        ctx.broadcast(BenOrMsg::report(0, self.value));
    }

    fn on_receive(&mut self, env: Envelope<BenOrMsg>, ctx: &mut Ctx<'_, BenOrMsg>) {
        let slot = slot_of(env.msg.round, env.msg.exchange);
        let current = self.current_slot();
        if slot < current {
            return; // stale
        }
        if slot > current {
            self.deferred
                .entry(slot)
                .or_default()
                .push((env.from, env.msg));
            return;
        }
        if self.count(env.from, env.msg) {
            self.finish_exchange(ctx);
            self.drain_deferred(ctx);
        }
    }

    fn decision(&self) -> Option<Value> {
        self.decision
    }

    /// Ben-Or's "phase" is its round.
    fn phase(&self) -> u64 {
        self.round
    }

    fn decision_phase(&self) -> Option<u64> {
        self.decided_round
    }

    fn snapshot(&self) -> Option<Vec<u8>> {
        // The coin-flip RNG lives in the runtime, not here; runtimes that
        // checkpoint a Ben-Or process must checkpoint their RNG alongside.
        let mut out = Vec::new();
        self.value.encode(&mut out);
        self.round.encode(&mut out);
        (self.exchange == Exchange::Propose).encode(&mut out);
        self.report_count[0].encode(&mut out);
        self.report_count[1].encode(&mut out);
        self.reports_total.encode(&mut out);
        self.propose_count[0].encode(&mut out);
        self.propose_count[1].encode(&mut out);
        self.proposes_total.encode(&mut out);
        let mut seen: Vec<usize> = self.seen.iter().copied().collect();
        seen.sort_unstable();
        seen.encode(&mut out);
        let deferred: Vec<(u64, Vec<(ProcessId, BenOrMsg)>)> = self
            .deferred
            .iter()
            .map(|(&slot, msgs)| (slot, msgs.clone()))
            .collect();
        deferred.encode(&mut out);
        self.decision.encode(&mut out);
        self.decided_round.encode(&mut out);
        Some(out)
    }

    fn restore(&mut self, bytes: &[u8]) -> bool {
        let mut r = WireReader::new(bytes);
        let Ok(value) = Value::decode(&mut r) else {
            return false;
        };
        let Ok(round) = u64::decode(&mut r) else {
            return false;
        };
        let Ok(proposing) = bool::decode(&mut r) else {
            return false;
        };
        let mut counts = [0usize; 6];
        for c in &mut counts {
            let Ok(v) = usize::decode(&mut r) else {
                return false;
            };
            *c = v;
        }
        let Ok(seen) = Vec::<usize>::decode(&mut r) else {
            return false;
        };
        let Ok(deferred) = Vec::<(u64, Vec<(ProcessId, BenOrMsg)>)>::decode(&mut r) else {
            return false;
        };
        let Ok(decision) = Option::<Value>::decode(&mut r) else {
            return false;
        };
        let Ok(decided_round) = Option::<u64>::decode(&mut r) else {
            return false;
        };
        if r.finish().is_err() {
            return false;
        }
        self.value = value;
        self.round = round;
        self.exchange = if proposing {
            Exchange::Propose
        } else {
            Exchange::Report
        };
        self.report_count = [counts[0], counts[1]];
        self.reports_total = counts[2];
        self.propose_count = [counts[3], counts[4]];
        self.proposes_total = counts[5];
        self.seen = seen.into_iter().collect();
        self.deferred = deferred.into_iter().collect();
        self.decision = decision;
        self.decided_round = decided_round;
        true
    }
}

/// Builds a full system of correct Ben-Or processes with the given inputs.
///
/// # Panics
///
/// Panics if `inputs.len() != config.n()`.
pub fn build_correct_system(
    builder: &mut simnet::SimBuilder<BenOrMsg>,
    config: BenOrConfig,
    inputs: &[Value],
) {
    assert_eq!(inputs.len(), config.n(), "one input per process");
    for &input in inputs {
        builder.process(
            Box::new(BenOrProcess::new(config, input)),
            simnet::Role::Correct,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::Sim;

    fn run(config: BenOrConfig, inputs: &[Value], seed: u64) -> simnet::RunReport {
        let mut b = Sim::builder();
        build_correct_system(&mut b, config, inputs);
        b.seed(seed).step_limit(8_000_000).build().run()
    }

    #[test]
    fn unanimous_decides_in_round_zero() {
        let config = BenOrConfig::fail_stop(5, 2).unwrap();
        let report = run(config, &[Value::One; 5], 3);
        assert_eq!(report.decided_value(), Some(Value::One));
        assert_eq!(report.phases_to_decision(), Some(0));
    }

    #[test]
    fn validity_for_unanimous_zero() {
        let config = BenOrConfig::fail_stop(4, 1).unwrap();
        for seed in 0..10 {
            let report = run(config, &[Value::Zero; 4], seed);
            assert_eq!(report.decided_value(), Some(Value::Zero), "seed {seed}");
        }
    }

    #[test]
    fn divided_inputs_agree_across_seeds() {
        let config = BenOrConfig::fail_stop(5, 2).unwrap();
        let inputs = [
            Value::Zero,
            Value::One,
            Value::Zero,
            Value::One,
            Value::Zero,
        ];
        for seed in 0..20 {
            let report = run(config, &inputs, seed);
            assert!(report.agreement(), "seed {seed} broke agreement");
            assert!(report.all_correct_decided(), "seed {seed} stalled");
        }
    }

    #[test]
    fn byzantine_variant_agrees_all_honest() {
        let config = BenOrConfig::byzantine(6, 1).unwrap();
        let inputs = [
            Value::Zero,
            Value::One,
            Value::One,
            Value::Zero,
            Value::One,
            Value::Zero,
        ];
        for seed in 0..15 {
            let report = run(config, &inputs, seed);
            assert!(report.agreement(), "seed {seed}");
            assert!(report.all_correct_decided(), "seed {seed}");
        }
    }

    #[test]
    fn duplicate_messages_from_same_sender_count_once() {
        let config = BenOrConfig::fail_stop(3, 1).unwrap();
        let mut p = BenOrProcess::new(config, Value::Zero);
        let mut outbox = Vec::new();
        let mut rng = simnet::SimRng::seed(0);
        let mut ctx = Ctx::new(ProcessId::new(0), 3, 0, &mut outbox, &mut rng);
        p.on_start(&mut ctx);

        let msg = BenOrMsg::report(0, Value::One);
        p.on_receive(Envelope::new(ProcessId::new(1), msg), &mut ctx);
        p.on_receive(Envelope::new(ProcessId::new(1), msg), &mut ctx);
        assert_eq!(p.reports_total, 1, "duplicate ignored");
        assert_eq!(p.round(), 0);
    }

    #[test]
    fn report_then_propose_sequencing() {
        let config = BenOrConfig::fail_stop(3, 1).unwrap();
        let mut p = BenOrProcess::new(config, Value::One);
        let mut outbox = Vec::new();
        let mut rng = simnet::SimRng::seed(0);
        let mut ctx = Ctx::new(ProcessId::new(0), 3, 0, &mut outbox, &mut rng);
        p.on_start(&mut ctx);
        assert_eq!(p.exchange, Exchange::Report);

        // Two same-value reports (quota 2) → propose One (2 > 3/2).
        for s in 0..2 {
            p.on_receive(
                Envelope::new(ProcessId::new(s), BenOrMsg::report(0, Value::One)),
                &mut ctx,
            );
        }
        assert_eq!(p.exchange, Exchange::Propose);

        // Two proposals for One: count 2 ≥ t+1 = 2 → decide.
        for s in 0..2 {
            p.on_receive(
                Envelope::new(ProcessId::new(s), BenOrMsg::propose(0, Some(Value::One))),
                &mut ctx,
            );
        }
        assert_eq!(p.decision(), Some(Value::One));
        assert_eq!(p.decision_phase(), Some(0));
        assert_eq!(p.round(), 1, "keeps participating in round 1");
    }

    #[test]
    fn snapshot_restore_round_trips_mid_round() {
        let config = BenOrConfig::fail_stop(5, 2).unwrap();
        let mut p = BenOrProcess::new(config, Value::One);
        let mut outbox = Vec::new();
        let mut rng = simnet::SimRng::seed(1);
        let mut ctx = Ctx::new(ProcessId::new(0), 5, 0, &mut outbox, &mut rng);
        p.on_start(&mut ctx);
        p.on_receive(
            Envelope::new(ProcessId::new(1), BenOrMsg::report(0, Value::Zero)),
            &mut ctx,
        );
        p.on_receive(
            Envelope::new(ProcessId::new(2), BenOrMsg::propose(1, Some(Value::One))),
            &mut ctx,
        );

        let snap = p.snapshot().unwrap();
        let mut q = BenOrProcess::new(config, Value::Zero);
        assert!(q.restore(&snap));
        assert_eq!(format!("{p:?}"), format!("{q:?}"));
        assert_eq!(q.snapshot().unwrap(), snap);
        assert!(!q.restore(&[0xFF, 0x01]), "garbage rejected");
    }

    #[test]
    fn abstentions_count_toward_quota_but_no_value() {
        let config = BenOrConfig::fail_stop(3, 1).unwrap();
        let mut p = BenOrProcess::new(config, Value::One);
        let mut outbox = Vec::new();
        let mut rng = simnet::SimRng::seed(7);
        {
            let mut ctx = Ctx::new(ProcessId::new(0), 3, 0, &mut outbox, &mut rng);
            p.on_start(&mut ctx);

            for (s, v) in [(0, Value::Zero), (1, Value::One)] {
                p.on_receive(
                    Envelope::new(ProcessId::new(s), BenOrMsg::report(0, v)),
                    &mut ctx,
                );
            }
        }
        assert_eq!(p.exchange, Exchange::Propose);
        // Split reports → our own proposal was an abstention.
        let own_proposal = outbox
            .iter()
            .find(|(_, m)| m.exchange == Exchange::Propose)
            .unwrap();
        assert_eq!(own_proposal.1.value, None);

        // Two abstentions reach the quota with no adoptable value → coin.
        let mut ctx = Ctx::new(ProcessId::new(0), 3, 1, &mut outbox, &mut rng);
        for s in 0..2 {
            p.on_receive(
                Envelope::new(ProcessId::new(s), BenOrMsg::propose(0, None)),
                &mut ctx,
            );
        }
        assert_eq!(p.round(), 1);
        assert_eq!(p.decision(), None);
    }
}
