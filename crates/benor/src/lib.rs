//! # benor — Ben-Or's randomized consensus (the §6 baseline)
//!
//! Bracha & Toueg close by comparing their protocols with Ben-Or's
//! contemporaneous randomized consensus \[BenO83\]: *"The protocols are
//! similar to those given in this paper, but randomization is incorporated
//! in the protocol itself. They have an exponential expected termination
//! time in the fail-stop case, and, in the malicious case, they can
//! overcome up to n/5 malicious processes."*
//!
//! This crate implements both Ben-Or variants on the same [`simnet`]
//! substrate so experiment E7 can race them against the Bracha-Toueg
//! protocols:
//!
//! * [`BenOrFailStop`] — tolerates `t < n/2` crash faults;
//! * [`BenOrByzantine`] — tolerates `t < n/5` malicious faults.
//!
//! Each round has two exchanges. **Report**: broadcast `(R, r, x)` and
//! collect `n−t`; if a strict majority (fail-stop) or `> (n+t)/2`
//! (Byzantine) carry the same `v`, propose it. **Propose**: broadcast
//! `(P, r, v)` or `(P, r, ⊥)` and collect `n−t`; decide `v` on `t+1`
//! (fail-stop) / `2t+1` (Byzantine) proposals for `v`, adopt `v` on
//! `1` / `t+1`, otherwise **flip a fair coin**. The coin is the crucial
//! contrast with Bracha-Toueg: randomness lives in the protocol, not in the
//! message system, and with divided inputs the expected number of rounds
//! grows exponentially in the number of processes that must land the same
//! coin face.
//!
//! ## Quickstart
//!
//! ```
//! use benor::{BenOrConfig, BenOrFailStop};
//! use simnet::{Role, Sim, Value};
//!
//! let config = BenOrConfig::fail_stop(5, 2)?;
//! let mut b = Sim::builder();
//! for i in 0..5 {
//!     b.process(
//!         Box::new(BenOrFailStop::new(config, Value::from(i % 2 == 0))),
//!         Role::Correct,
//!     );
//! }
//! let report = b.seed(9).build().run();
//! assert!(report.agreement());
//! assert!(report.all_correct_decided());
//! # Ok::<(), benor::BenOrConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod message;
mod process;
mod wire;

pub use config::{BenOrConfig, BenOrConfigError, FaultModel};
pub use message::{BenOrMsg, Exchange};
pub use process::{build_correct_system, BenOrByzantine, BenOrFailStop, BenOrProcess};
