//! Wire messages of the Ben-Or protocol.

use simnet::Value;

/// Which of the two per-round exchanges a message belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Exchange {
    /// First exchange: every process reports its current value.
    Report,
    /// Second exchange: processes propose a value they saw a quorum report,
    /// or abstain (`value: None`, the paper's `?`).
    Propose,
}

/// A Ben-Or message: `(exchange, round, value)`.
///
/// `value` is always `Some` in reports; in proposals `None` encodes the
/// abstention mark `?` sent when no reported value reached the proposal
/// threshold.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BenOrMsg {
    /// Which exchange of the round.
    pub exchange: Exchange,
    /// The round number.
    pub round: u64,
    /// The carried value; `None` is a proposal abstention.
    pub value: Option<Value>,
}

impl BenOrMsg {
    /// A report of `value` in `round`.
    #[must_use]
    pub fn report(round: u64, value: Value) -> Self {
        BenOrMsg {
            exchange: Exchange::Report,
            round,
            value: Some(value),
        }
    }

    /// A proposal of `value` in `round` (`None` = abstain).
    #[must_use]
    pub fn propose(round: u64, value: Option<Value>) -> Self {
        BenOrMsg {
            exchange: Exchange::Propose,
            round,
            value,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_fields() {
        let r = BenOrMsg::report(3, Value::One);
        assert_eq!(r.exchange, Exchange::Report);
        assert_eq!(r.round, 3);
        assert_eq!(r.value, Some(Value::One));

        let p = BenOrMsg::propose(4, None);
        assert_eq!(p.exchange, Exchange::Propose);
        assert_eq!(p.value, None);
    }
}
