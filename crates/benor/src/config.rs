//! Configuration for the Ben-Or protocols.

use core::fmt;

/// Which fault model a Ben-Or instance is configured for.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultModel {
    /// Crash faults; requires `n > 2t`.
    FailStop,
    /// Malicious faults; requires `n > 5t` (Ben-Or's bound — weaker than
    /// Bracha-Toueg's `n > 3t`, which is the point of the comparison).
    Byzantine,
}

/// Error returned when `(n, t)` violates the variant's resilience bound.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenOrConfigError {
    n: usize,
    t: usize,
    model: FaultModel,
}

impl fmt::Display for BenOrConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let bound = match self.model {
            FaultModel::FailStop => "n > 2t",
            FaultModel::Byzantine => "n > 5t",
        };
        write!(
            f,
            "t = {} faults with n = {} violates Ben-Or's {:?} bound {}",
            self.t, self.n, self.model, bound
        )
    }
}

impl std::error::Error for BenOrConfigError {}

/// A validated `(n, t)` pair for one of the Ben-Or variants, carrying the
/// thresholds each step of the protocol compares against.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BenOrConfig {
    n: usize,
    t: usize,
    model: FaultModel,
}

impl BenOrConfig {
    /// Creates a fail-stop configuration.
    ///
    /// # Errors
    ///
    /// Returns [`BenOrConfigError`] unless `n > 2t`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn fail_stop(n: usize, t: usize) -> Result<Self, BenOrConfigError> {
        assert!(n > 0, "a system needs at least one process");
        if n <= 2 * t {
            return Err(BenOrConfigError {
                n,
                t,
                model: FaultModel::FailStop,
            });
        }
        Ok(BenOrConfig {
            n,
            t,
            model: FaultModel::FailStop,
        })
    }

    /// Creates a Byzantine configuration.
    ///
    /// # Errors
    ///
    /// Returns [`BenOrConfigError`] unless `n > 5t`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn byzantine(n: usize, t: usize) -> Result<Self, BenOrConfigError> {
        assert!(n > 0, "a system needs at least one process");
        if n <= 5 * t {
            return Err(BenOrConfigError {
                n,
                t,
                model: FaultModel::Byzantine,
            });
        }
        Ok(BenOrConfig {
            n,
            t,
            model: FaultModel::Byzantine,
        })
    }

    /// The number of processes.
    #[must_use]
    pub const fn n(&self) -> usize {
        self.n
    }

    /// The tolerated number of faults.
    #[must_use]
    pub const fn t(&self) -> usize {
        self.t
    }

    /// The fault model this configuration targets.
    #[must_use]
    pub const fn model(&self) -> FaultModel {
        self.model
    }

    /// Messages collected per exchange: `n − t`.
    #[must_use]
    pub const fn quota(&self) -> usize {
        self.n - self.t
    }

    /// Whether `count` same-value reports justify a proposal:
    /// `> n/2` (fail-stop) or `> (n+t)/2` (Byzantine).
    #[must_use]
    pub const fn proposes(&self, count: usize) -> bool {
        match self.model {
            FaultModel::FailStop => 2 * count > self.n,
            FaultModel::Byzantine => 2 * count > self.n + self.t,
        }
    }

    /// Whether `count` same-value proposals force a decision:
    /// `≥ t+1` (fail-stop) or `≥ 2t+1` (Byzantine).
    #[must_use]
    pub const fn decides(&self, count: usize) -> bool {
        match self.model {
            FaultModel::FailStop => count > self.t,
            FaultModel::Byzantine => count > 2 * self.t,
        }
    }

    /// Whether `count` same-value proposals are enough to *adopt* the value
    /// instead of flipping a coin: `≥ 1` (fail-stop) or `≥ t+1` (Byzantine —
    /// at least one correct proposer).
    #[must_use]
    pub const fn adopts(&self, count: usize) -> bool {
        match self.model {
            FaultModel::FailStop => count >= 1,
            FaultModel::Byzantine => count > self.t,
        }
    }
}

impl fmt::Display for BenOrConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ben-or {:?} (n={}, t={})", self.model, self.n, self.t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fail_stop_bound() {
        assert!(BenOrConfig::fail_stop(5, 2).is_ok());
        assert!(BenOrConfig::fail_stop(4, 2).is_err());
        assert!(BenOrConfig::fail_stop(1, 0).is_ok());
    }

    #[test]
    fn byzantine_bound() {
        assert!(BenOrConfig::byzantine(6, 1).is_ok());
        assert!(BenOrConfig::byzantine(5, 1).is_err());
        assert!(BenOrConfig::byzantine(11, 2).is_ok());
        assert!(BenOrConfig::byzantine(10, 2).is_err());
    }

    #[test]
    fn fail_stop_thresholds() {
        let c = BenOrConfig::fail_stop(7, 3).unwrap();
        assert_eq!(c.quota(), 4);
        assert!(!c.proposes(3)); // 6 > 7 is false
        assert!(c.proposes(4));
        assert!(!c.decides(3));
        assert!(c.decides(4)); // t+1 = 4
        assert!(c.adopts(1));
        assert!(!c.adopts(0));
    }

    #[test]
    fn byzantine_thresholds() {
        let c = BenOrConfig::byzantine(11, 2).unwrap();
        assert_eq!(c.quota(), 9);
        assert!(!c.proposes(6)); // 12 > 13 false
        assert!(c.proposes(7));
        assert!(!c.decides(4));
        assert!(c.decides(5)); // 2t+1 = 5
        assert!(!c.adopts(2));
        assert!(c.adopts(3)); // t+1 = 3
    }

    #[test]
    fn error_mentions_bound() {
        let e = BenOrConfig::byzantine(5, 1).unwrap_err();
        assert!(e.to_string().contains("5t"));
    }
}
