//! Per-process message buffers.

use core::fmt;

use crate::Envelope;

/// The message buffer the message system maintains for one process: messages
/// sent to it but not yet received (§2.1).
///
/// `receive` in the paper removes *some* message nondeterministically; here
/// the [scheduler](crate::scheduler) resolves the nondeterminism by picking
/// an index, and [`Buffer::take`] removes it. Arrival order is preserved so
/// FIFO schedulers can model orderly channels, while random schedulers index
/// freely.
pub struct Buffer<M> {
    items: Vec<Envelope<M>>,
    /// Total number of envelopes ever enqueued, for metrics.
    enqueued: u64,
}

impl<M> Buffer<M> {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Buffer {
            items: Vec::new(),
            enqueued: 0,
        }
    }

    /// Number of messages currently awaiting delivery.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the buffer holds no deliverable messages.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Total number of envelopes ever placed in this buffer.
    #[must_use]
    pub fn total_enqueued(&self) -> u64 {
        self.enqueued
    }

    /// Places an envelope at the back of the buffer (the paper's
    /// instantaneous `send`).
    pub fn push(&mut self, env: Envelope<M>) {
        self.enqueued += 1;
        self.items.push(env);
    }

    /// Removes and returns the envelope at `index`, preserving the relative
    /// order of the rest (so index 0 is always the oldest message).
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn take(&mut self, index: usize) -> Envelope<M> {
        self.items.remove(index)
    }

    /// A view of the pending envelopes, oldest first. Schedulers use this to
    /// pick a delivery index; they must not rely on payload contents of
    /// Byzantine senders.
    #[must_use]
    pub fn pending(&self) -> &[Envelope<M>] {
        &self.items
    }

    /// Drops all pending messages (used when a process halts: deliveries to
    /// it can never affect the run again).
    pub fn clear(&mut self) {
        self.items.clear();
    }
}

impl<M> Default for Buffer<M> {
    fn default() -> Self {
        Buffer::new()
    }
}

impl<M: fmt::Debug> fmt::Debug for Buffer<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Buffer")
            .field("pending", &self.items)
            .field("enqueued", &self.enqueued)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProcessId;

    fn env(from: usize, m: u32) -> Envelope<u32> {
        Envelope::new(ProcessId::new(from), m)
    }

    #[test]
    fn push_take_preserves_order() {
        let mut b = Buffer::new();
        b.push(env(0, 10));
        b.push(env(1, 11));
        b.push(env(2, 12));
        assert_eq!(b.len(), 3);

        let middle = b.take(1);
        assert_eq!(middle.msg, 11);
        assert_eq!(b.pending()[0].msg, 10);
        assert_eq!(b.pending()[1].msg, 12);
    }

    #[test]
    fn counts_total_enqueued_across_takes() {
        let mut b = Buffer::new();
        for i in 0..5 {
            b.push(env(0, i));
        }
        while !b.is_empty() {
            b.take(0);
        }
        assert_eq!(b.total_enqueued(), 5);
        assert!(b.is_empty());
    }

    #[test]
    fn clear_empties_but_keeps_stats() {
        let mut b = Buffer::new();
        b.push(env(0, 1));
        b.push(env(0, 2));
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.total_enqueued(), 2);
    }

    #[test]
    #[should_panic]
    fn take_out_of_bounds_panics() {
        let mut b: Buffer<u32> = Buffer::new();
        b.take(0);
    }
}
