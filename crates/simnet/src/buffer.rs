//! Per-process message buffers.
//!
//! Logically a buffer is still what §2.1 describes: the multiset of messages
//! sent to a process but not yet received, ordered by arrival so schedulers
//! can index it deterministically. Physically it is a slab with tombstones —
//! taking a message marks its slot dead instead of shifting every later
//! envelope down (`Vec::remove` made each delivery O(pending), which is what
//! capped simulations near n ≈ 100). A Fenwick tree over 64-slot words turns
//! a *logical* index (rank among live slots, oldest first) into a physical
//! slot in O(log pending), and dead space is compacted away amortized O(1)
//! per take, preserving live order — so the indices schedulers see, and the
//! `index` recorded in [`Event::Deliver`](crate::Event::Deliver), mean
//! exactly what they meant before the rewrite.

use core::fmt;

use crate::Envelope;

/// Fenwick (binary indexed) tree of live counts per 64-slot word: prefix
/// sums and rank-select in O(log words).
#[derive(Default)]
struct WordTree {
    tree: Vec<u32>,
}

impl WordTree {
    /// Sum of word counts in `[0, words)`.
    fn prefix(&self, words: usize) -> usize {
        let mut i = words;
        let mut sum = 0usize;
        while i > 0 {
            sum += self.tree[i - 1] as usize;
            i &= i - 1;
        }
        sum
    }

    fn add(&mut self, word: usize, delta: i32) {
        let mut i = word + 1;
        while i <= self.tree.len() {
            self.tree[i - 1] = (self.tree[i - 1] as i32 + delta) as u32;
            i += i & i.wrapping_neg();
        }
    }

    /// Appends a word with count 0, keeping the tree consistent.
    fn push_zero(&mut self) {
        let i = self.tree.len() + 1; // 1-based position of the new node
        let lowbit = i & i.wrapping_neg();
        let value = self.prefix(i - 1) - self.prefix(i - lowbit);
        self.tree.push(value as u32);
    }

    /// Finds the word containing the live slot of rank `rank`; returns the
    /// word index and the remaining rank within it. `rank` must be less
    /// than the total count.
    fn select(&self, rank: usize) -> (usize, usize) {
        let len = self.tree.len();
        let mut pos = 0usize;
        let mut rem = rank;
        let mut pw = len.next_power_of_two();
        if pw > len {
            pw >>= 1;
        }
        while pw > 0 {
            let next = pos + pw;
            if next <= len && (self.tree[next - 1] as usize) <= rem {
                rem -= self.tree[next - 1] as usize;
                pos = next;
            }
            pw >>= 1;
        }
        (pos, rem)
    }

    /// Rebuilds from per-word counts in O(words).
    fn rebuild(&mut self, counts: impl Iterator<Item = u32>) {
        self.tree.clear();
        self.tree.extend(counts);
        let len = self.tree.len();
        for i in 1..=len {
            let parent = i + (i & i.wrapping_neg());
            if parent <= len {
                self.tree[parent - 1] += self.tree[i - 1];
            }
        }
    }

    fn clear(&mut self) {
        self.tree.clear();
    }
}

/// Index of the `rank`-th set bit of `word` (rank < popcount).
fn nth_set_bit(mut word: u64, mut rank: usize) -> usize {
    loop {
        let tz = word.trailing_zeros() as usize;
        if rank == 0 {
            return tz;
        }
        word &= word - 1;
        rank -= 1;
    }
}

/// Compact once the dead fraction dominates and is worth the scan; keeps
/// iteration O(live + small constant) and take amortized O(1) while never
/// compacting tiny buffers on every operation.
const COMPACT_MIN_DEAD: usize = 64;

/// The message buffer the message system maintains for one process: messages
/// sent to it but not yet received (§2.1).
///
/// `receive` in the paper removes *some* message nondeterministically; here
/// the [scheduler](crate::scheduler) resolves the nondeterminism by picking
/// an index, and [`Buffer::take`] removes it. Arrival order is preserved so
/// FIFO schedulers can model orderly channels, while random schedulers index
/// freely.
pub struct Buffer<M> {
    /// Arrival-ordered slots; `None` marks an already-taken message.
    slots: Vec<Option<Envelope<M>>>,
    /// Live bit per slot, one `u64` per 64 slots.
    mask: Vec<u64>,
    /// Fenwick tree of live counts per mask word.
    tree: WordTree,
    /// Number of live (pending) messages.
    live: usize,
    /// Total number of envelopes ever enqueued, for metrics.
    enqueued: u64,
}

impl<M> Buffer<M> {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Buffer {
            slots: Vec::new(),
            mask: Vec::new(),
            tree: WordTree::default(),
            live: 0,
            enqueued: 0,
        }
    }

    /// Number of messages currently awaiting delivery.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the buffer holds no deliverable messages.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total number of envelopes ever placed in this buffer.
    #[must_use]
    pub fn total_enqueued(&self) -> u64 {
        self.enqueued
    }

    /// Places an envelope at the back of the buffer (the paper's
    /// instantaneous `send`).
    pub fn push(&mut self, env: Envelope<M>) {
        self.enqueued += 1;
        let phys = self.slots.len();
        let word = phys >> 6;
        if word == self.mask.len() {
            self.mask.push(0);
            self.tree.push_zero();
        }
        self.slots.push(Some(env));
        self.mask[word] |= 1u64 << (phys & 63);
        self.tree.add(word, 1);
        self.live += 1;
    }

    /// Physical slot of the live message with logical index `index`.
    fn locate(&self, index: usize) -> usize {
        assert!(
            index < self.live,
            "buffer index {index} out of range (len {})",
            self.live
        );
        let (word, rem) = self.tree.select(index);
        (word << 6) | nth_set_bit(self.mask[word], rem)
    }

    /// Removes and returns the envelope at `index`, preserving the relative
    /// order of the rest (so index 0 is always the oldest message).
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn take(&mut self, index: usize) -> Envelope<M> {
        let phys = self.locate(index);
        let env = self.slots[phys].take().expect("live bit points at a slot");
        self.mask[phys >> 6] &= !(1u64 << (phys & 63));
        self.tree.add(phys >> 6, -1);
        self.live -= 1;
        let dead = self.slots.len() - self.live;
        if dead > self.live && dead >= COMPACT_MIN_DEAD {
            self.compact();
        }
        env
    }

    /// Drops tombstones, preserving live order. Amortized against the takes
    /// that created the dead slots.
    fn compact(&mut self) {
        self.slots.retain(Option::is_some);
        debug_assert_eq!(self.slots.len(), self.live);
        let words = self.slots.len().div_ceil(64);
        self.mask.clear();
        self.mask.resize(words, 0);
        for word in 0..words {
            let bits = (self.slots.len() - (word << 6)).min(64);
            self.mask[word] = if bits == 64 { !0 } else { (1u64 << bits) - 1 };
        }
        self.tree.rebuild(self.mask.iter().map(|w| w.count_ones()));
    }

    /// The live message at logical `index` (0 = oldest), without removal.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    #[must_use]
    pub fn get(&self, index: usize) -> &Envelope<M> {
        self.slots[self.locate(index)]
            .as_ref()
            .expect("live bit points at a slot")
    }

    /// Iterates the pending envelopes, oldest first. Schedulers use this to
    /// pick a delivery index; they must not rely on payload contents of
    /// Byzantine senders.
    pub fn iter(&self) -> impl Iterator<Item = &Envelope<M>> {
        self.slots.iter().filter_map(Option::as_ref)
    }

    /// Drops all pending messages (used when a process halts: deliveries to
    /// it can never affect the run again).
    pub fn clear(&mut self) {
        self.slots.clear();
        self.mask.clear();
        self.tree.clear();
        self.live = 0;
    }
}

impl<M> Default for Buffer<M> {
    fn default() -> Self {
        Buffer::new()
    }
}

impl<M: fmt::Debug> fmt::Debug for Buffer<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Buffer")
            .field("pending", &self.iter().collect::<Vec<_>>())
            .field("enqueued", &self.enqueued)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProcessId;

    fn env(from: usize, m: u32) -> Envelope<u32> {
        Envelope::new(ProcessId::new(from), m)
    }

    #[test]
    fn push_take_preserves_order() {
        let mut b = Buffer::new();
        b.push(env(0, 10));
        b.push(env(1, 11));
        b.push(env(2, 12));
        assert_eq!(b.len(), 3);

        let middle = b.take(1);
        assert_eq!(middle.msg, 11);
        assert_eq!(b.get(0).msg, 10);
        assert_eq!(b.get(1).msg, 12);
        assert_eq!(b.iter().map(|e| e.msg).collect::<Vec<_>>(), vec![10, 12]);
    }

    #[test]
    fn counts_total_enqueued_across_takes() {
        let mut b = Buffer::new();
        for i in 0..5 {
            b.push(env(0, i));
        }
        while !b.is_empty() {
            b.take(0);
        }
        assert_eq!(b.total_enqueued(), 5);
        assert!(b.is_empty());
    }

    #[test]
    fn clear_empties_but_keeps_stats() {
        let mut b = Buffer::new();
        b.push(env(0, 1));
        b.push(env(0, 2));
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.total_enqueued(), 2);
    }

    #[test]
    #[should_panic]
    fn take_out_of_bounds_panics() {
        let mut b: Buffer<u32> = Buffer::new();
        b.take(0);
    }

    /// Cross-checks the slab against the obviously correct `Vec::remove`
    /// model across a long randomized push/take interleaving — including
    /// runs long enough to trigger compaction many times over.
    #[test]
    fn matches_vec_remove_model_under_random_workload() {
        let mut rng = crate::SimRng::seed(0xB0FF);
        let mut b = Buffer::new();
        let mut model: Vec<u32> = Vec::new();
        let mut next = 0u32;
        for _ in 0..20_000 {
            let push = model.is_empty() || rng.index(3) > 0;
            if push {
                b.push(env(0, next));
                model.push(next);
                next += 1;
            } else {
                let i = rng.index(model.len());
                assert_eq!(b.take(i).msg, model.remove(i));
            }
            assert_eq!(b.len(), model.len());
            if !model.is_empty() {
                let probe = rng.index(model.len());
                assert_eq!(b.get(probe).msg, model[probe]);
            }
        }
        assert_eq!(b.iter().map(|e| e.msg).collect::<Vec<_>>(), model);
        assert_eq!(b.total_enqueued(), u64::from(next));
    }

    #[test]
    fn interleaved_takes_hit_every_logical_position() {
        let mut b = Buffer::new();
        for i in 0..300 {
            b.push(env(0, i));
        }
        // Take from the middle repeatedly: ranks shift exactly like remove.
        let mut model: Vec<u32> = (0..300).collect();
        for step in 0..250 {
            let i = (step * 7) % model.len();
            assert_eq!(b.take(i).msg, model.remove(i), "step {step}");
        }
        assert_eq!(b.iter().map(|e| e.msg).collect::<Vec<_>>(), model);
    }
}
