//! Run metrics: message and step accounting.

/// Counters accumulated by the engine over one run.
///
/// Experiment E9 (message complexity) reads these: the Figure 1 fail-stop
/// protocol sends Θ(n²) messages per phase while the Figure 2 malicious
/// protocol's echo stage amplifies that to Θ(n³) per phase. The per-phase
/// breakdown attributes each send to the sender's `phaseno` at send time,
/// giving the phase-resolved message complexity §4 reasons about.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Messages placed into buffers (including those later dropped).
    pub messages_sent: u64,
    /// Messages delivered to a process step.
    pub messages_delivered: u64,
    /// Messages addressed to halted processes (dropped on send) plus
    /// messages discarded from a buffer when its owner halted.
    pub messages_dropped: u64,
    /// The largest number of undelivered messages any single buffer held at
    /// once — how far delivery lagged behind sending in the worst case.
    pub max_buffer_occupancy: u64,
    /// Per-process count of messages sent.
    pub sent_by: Vec<u64>,
    /// Per-process count of atomic steps taken.
    pub steps_by: Vec<u64>,
    /// Messages sent while the sender was in each phase, indexed by phase
    /// number. Grows on demand; empty for runs that never send.
    pub sent_by_phase: Vec<u64>,
    /// Deliveries replayed from a write-ahead log during crash recovery.
    /// Always 0 for simulated runs; networked runs (`netstack`) fill it in
    /// so reports surface that a run survived a restart.
    pub recovered: u64,
    /// Equivocation attempts observed on the wire: a sender re-using a
    /// sequence number for a *different* payload. Always 0 for simulated
    /// runs; networked runs fill it in.
    pub equivocations: u64,
}

impl Metrics {
    /// Creates zeroed metrics for an `n`-process system.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Metrics {
            sent_by: vec![0; n],
            steps_by: vec![0; n],
            ..Metrics::default()
        }
    }

    /// The system size these metrics were collected over, derived from the
    /// per-process table rather than stored separately.
    #[must_use]
    pub fn n(&self) -> usize {
        self.sent_by.len()
    }

    /// Messages still undelivered at the end of the run.
    #[must_use]
    pub fn in_flight(&self) -> u64 {
        self.messages_sent - self.messages_delivered - self.messages_dropped
    }

    /// Records one send by `from` while it was in `phase`.
    pub(crate) fn record_send(&mut self, from: usize, phase: u64) {
        self.messages_sent += 1;
        self.sent_by[from] += 1;
        let phase = usize::try_from(phase).expect("phase fits in usize");
        if phase >= self.sent_by_phase.len() {
            self.sent_by_phase.resize(phase + 1, 0);
        }
        self.sent_by_phase[phase] += 1;
    }

    /// Folds a buffer-occupancy observation into the high-water mark.
    pub(crate) fn observe_occupancy(&mut self, occupancy: usize) {
        self.max_buffer_occupancy = self.max_buffer_occupancy.max(occupancy as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_zeroed_and_sized_from_n() {
        let m = Metrics::new(3);
        assert_eq!(m.messages_sent, 0);
        assert_eq!(m.sent_by, vec![0, 0, 0]);
        assert_eq!(m.n(), 3);
        assert_eq!(m.max_buffer_occupancy, 0);
        assert!(m.sent_by_phase.is_empty());
        assert_eq!(m.in_flight(), 0);
    }

    #[test]
    fn in_flight_balances() {
        let mut m = Metrics::new(1);
        m.messages_sent = 10;
        m.messages_delivered = 6;
        m.messages_dropped = 1;
        assert_eq!(m.in_flight(), 3);
    }

    #[test]
    fn sends_are_attributed_to_phases() {
        let mut m = Metrics::new(2);
        m.record_send(0, 0);
        m.record_send(1, 2);
        m.record_send(1, 2);
        assert_eq!(m.messages_sent, 3);
        assert_eq!(m.sent_by, vec![1, 2]);
        assert_eq!(m.sent_by_phase, vec![1, 0, 2]);
    }

    #[test]
    fn occupancy_tracks_high_water_mark() {
        let mut m = Metrics::new(1);
        m.observe_occupancy(3);
        m.observe_occupancy(1);
        m.observe_occupancy(7);
        m.observe_occupancy(2);
        assert_eq!(m.max_buffer_occupancy, 7);
    }
}
