//! Run metrics: message and step accounting.

use serde::{Deserialize, Serialize};

/// Counters accumulated by the engine over one run.
///
/// Experiment E9 (message complexity) reads these: the Figure 1 fail-stop
/// protocol sends Θ(n²) messages per phase while the Figure 2 malicious
/// protocol's echo stage amplifies that to Θ(n³) per phase.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Metrics {
    /// Messages placed into buffers (including those later dropped).
    pub messages_sent: u64,
    /// Messages delivered to a process step.
    pub messages_delivered: u64,
    /// Messages addressed to halted processes (dropped on send) plus
    /// messages discarded from a buffer when its owner halted.
    pub messages_dropped: u64,
    /// Per-process count of messages sent.
    pub sent_by: Vec<u64>,
    /// Per-process count of atomic steps taken.
    pub steps_by: Vec<u64>,
}

impl Metrics {
    /// Creates zeroed metrics for an `n`-process system.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Metrics {
            messages_sent: 0,
            messages_delivered: 0,
            messages_dropped: 0,
            sent_by: vec![0; n],
            steps_by: vec![0; n],
        }
    }

    /// Messages still undelivered at the end of the run.
    #[must_use]
    pub fn in_flight(&self) -> u64 {
        self.messages_sent - self.messages_delivered - self.messages_dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_zeroed() {
        let m = Metrics::new(3);
        assert_eq!(m.messages_sent, 0);
        assert_eq!(m.sent_by, vec![0, 0, 0]);
        assert_eq!(m.in_flight(), 0);
    }

    #[test]
    fn in_flight_balances() {
        let mut m = Metrics::new(1);
        m.messages_sent = 10;
        m.messages_delivered = 6;
        m.messages_dropped = 1;
        assert_eq!(m.in_flight(), 3);
    }
}
