//! Run observability: the subscriber hook the engine publishes events to.
//!
//! A [`Subscriber`] receives every [`Event`] the engine would record in a
//! [`Trace`](crate::Trace) — engine events *and* the structured
//! [`ProtocolEvent`](crate::ProtocolEvent)s emitted by instrumented
//! protocols — plus run-boundary callbacks, in a deterministic order fixed
//! by the seed. Sinks live in the `obs` crate (in-memory per-phase
//! aggregation, JSONL trace files, console reporting); this trait lives
//! here so the engine can hold one without depending on any sink.
//!
//! The slot is optional and `None` by default: an unobserved run performs
//! exactly one `Option` discriminant check per event site, so the hot path
//! of benches and Monte-Carlo sweeps is unaffected.

use std::sync::{Arc, Mutex};

use crate::{Event, RunReport};

/// Receives structured events from a running simulation.
///
/// Methods default to no-ops so sinks implement only what they consume.
/// Callback order within a run is deterministic (a pure function of the
/// seed), so any sink that is itself deterministic produces identical
/// output across identical runs.
pub trait Subscriber: Send {
    /// The run is about to start: `n` processes, driven by `seed`.
    fn on_run_start(&mut self, n: usize, seed: u64) {
        let _ = (n, seed);
    }

    /// One event, in execution order. Called for every event, even when the
    /// bounded [`Trace`](crate::Trace) has overflowed or is disabled.
    fn on_event(&mut self, event: &Event) {
        let _ = event;
    }

    /// The run finished; `report` is the same value [`Sim::run`] returns.
    ///
    /// [`Sim::run`]: crate::Sim::run
    fn on_run_end(&mut self, report: &RunReport) {
        let _ = report;
    }
}

/// The shared handle a simulation holds its subscriber through.
///
/// [`Sim::run`](crate::Sim::run) consumes the simulation, so callers keep
/// their own clone of the `Arc` and read the sink back out after the run:
///
/// ```
/// use std::sync::{Arc, Mutex};
/// use simnet::{Event, Role, Sim, SharedSubscriber, Subscriber, Value};
/// # use simnet::{Ctx, Envelope, Process};
/// # #[derive(Debug)]
/// # struct Yes;
/// # impl Process for Yes {
/// #     type Msg = ();
/// #     fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) { ctx.broadcast(()); }
/// #     fn on_receive(&mut self, _e: Envelope<()>, _c: &mut Ctx<'_, ()>) {}
/// #     fn decision(&self) -> Option<Value> { Some(Value::One) }
/// #     fn phase(&self) -> u64 { 0 }
/// # }
///
/// #[derive(Default)]
/// struct Counter(u64);
/// impl Subscriber for Counter {
///     fn on_event(&mut self, _event: &Event) { self.0 += 1; }
/// }
///
/// let sink: SharedSubscriber = Arc::new(Mutex::new(Counter::default()));
/// let mut b = Sim::builder();
/// b.process(Box::new(Yes), Role::Correct).seed(1);
/// b.subscriber(Arc::clone(&sink));
/// b.build().run();
/// // The sink outlives the consumed Sim.
/// # drop(sink);
/// ```
pub type SharedSubscriber = Arc<Mutex<dyn Subscriber>>;
