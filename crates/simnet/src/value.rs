//! The binary consensus value domain.

use core::fmt;
use core::ops::Not;

/// A binary consensus value, `0` or `1`.
///
/// The paper's protocols decide values in `{0, 1}`; every protocol in this
/// workspace uses this domain. A dedicated enum (rather than `bool`) keeps
/// call sites self-describing ([C-CUSTOM-TYPE]) and gives a natural pair of
/// array indices via [`Value::index`] for the per-value counters the
/// protocols keep (`message_count`, `witness_count`, ...).
///
/// # Examples
///
/// ```
/// use simnet::Value;
///
/// let mut counts = [0usize; 2];
/// counts[Value::One.index()] += 1;
/// assert_eq!(counts, [0, 1]);
/// assert_eq!(!Value::One, Value::Zero);
/// ```
///
/// [C-CUSTOM-TYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// The value `0`.
    Zero,
    /// The value `1`.
    One,
}

impl Value {
    /// Both values, in numeric order. Handy for iterating per-value counters.
    pub const BOTH: [Value; 2] = [Value::Zero, Value::One];

    /// Returns `0` for [`Value::Zero`] and `1` for [`Value::One`], for use as
    /// an index into two-element counter arrays.
    #[must_use]
    pub const fn index(self) -> usize {
        match self {
            Value::Zero => 0,
            Value::One => 1,
        }
    }

    /// Converts an index (`0` or `1`) back into a value.
    ///
    /// # Panics
    ///
    /// Panics if `index > 1`.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        match index {
            0 => Value::Zero,
            1 => Value::One,
            other => panic!("binary value index must be 0 or 1, got {other}"),
        }
    }

    /// Returns the value held by the majority of a `[zero_count, one_count]`
    /// pair, breaking the tie in favour of `0` exactly as the paper's
    /// protocols do (`if message_count(1) > message_count(0) then 1 else 0`).
    #[must_use]
    pub fn majority_of(counts: [usize; 2]) -> Self {
        if counts[1] > counts[0] {
            Value::One
        } else {
            Value::Zero
        }
    }
}

impl Not for Value {
    type Output = Value;

    fn not(self) -> Value {
        match self {
            Value::Zero => Value::One,
            Value::One => Value::Zero,
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        if b {
            Value::One
        } else {
            Value::Zero
        }
    }
}

impl From<Value> for bool {
    fn from(v: Value) -> bool {
        v == Value::One
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.index())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trips() {
        for v in Value::BOTH {
            assert_eq!(Value::from_index(v.index()), v);
        }
    }

    #[test]
    #[should_panic(expected = "binary value index")]
    fn from_index_rejects_out_of_range() {
        let _ = Value::from_index(2);
    }

    #[test]
    fn not_flips() {
        assert_eq!(!Value::Zero, Value::One);
        assert_eq!(!Value::One, Value::Zero);
    }

    #[test]
    fn bool_conversions() {
        assert_eq!(Value::from(true), Value::One);
        assert_eq!(Value::from(false), Value::Zero);
        assert!(bool::from(Value::One));
        assert!(!bool::from(Value::Zero));
    }

    #[test]
    fn majority_breaks_ties_towards_zero() {
        assert_eq!(Value::majority_of([3, 3]), Value::Zero);
        assert_eq!(Value::majority_of([2, 3]), Value::One);
        assert_eq!(Value::majority_of([3, 2]), Value::Zero);
        assert_eq!(Value::majority_of([0, 0]), Value::Zero);
    }
}
