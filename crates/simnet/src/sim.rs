//! The simulation engine: drives processes through atomic steps.

use core::fmt;

use crate::scheduler::{FairScheduler, Scheduler, SystemView};
use crate::{
    Buffer, Ctx, Envelope, Event, Metrics, Process, ProcessId, SharedSubscriber, SimRng, Trace,
    Value,
};

/// Whether a process is counted as correct when checking consensus
/// properties.
///
/// The engine never peeks inside a process: a Byzantine strategy and a
/// correct protocol instance are both just [`Process`] implementations. The
/// role tag tells the engine (and the invariant checks in
/// [`RunReport`]) which processes the consensus properties quantify over.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Role {
    /// A process that follows the protocol; agreement/validity/termination
    /// are asserted over these.
    Correct,
    /// A faulty process (fail-stop or malicious); exempt from the properties.
    Faulty,
}

/// Why a run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunStatus {
    /// Every correct process decided (the configured stop condition held).
    Stopped,
    /// No runnable process had a pending message: the system went quiescent
    /// before the stop condition held. For a deadlock-free protocol under a
    /// reliable scheduler this indicates a bug or an impossible configuration
    /// (e.g. beyond the resilience bound).
    Quiescent,
    /// The step budget ran out first.
    StepLimitReached,
}

/// When the engine stops a run early (the step limit always applies).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum StopWhen {
    /// Stop as soon as every correct process has decided. The default: the
    /// paper's convergence property is about decisions, not halting.
    #[default]
    AllCorrectDecided,
    /// Stop only when every correct process has halted (useful for checking
    /// post-decision shutdown behaviour).
    AllCorrectHalted,
    /// Never stop early; run to quiescence or the step limit (useful for
    /// observing post-decision message traffic).
    Never,
}

/// Builder for a [`Sim`].
///
/// # Examples
///
/// Assemble and run a two-process "echo once" toy system:
///
/// ```
/// use simnet::{Ctx, Envelope, Process, ProcessId, Sim, Role, Value};
///
/// #[derive(Debug)]
/// struct Shout(Option<Value>);
///
/// impl Process for Shout {
///     type Msg = Value;
///     fn on_start(&mut self, ctx: &mut Ctx<'_, Value>) {
///         ctx.broadcast(Value::One);
///     }
///     fn on_receive(&mut self, env: Envelope<Value>, _ctx: &mut Ctx<'_, Value>) {
///         self.0 = Some(env.msg);
///     }
///     fn decision(&self) -> Option<Value> {
///         self.0
///     }
///     fn phase(&self) -> u64 {
///         0
///     }
/// }
///
/// let report = Sim::builder()
///     .process(Box::new(Shout(None)), Role::Correct)
///     .process(Box::new(Shout(None)), Role::Correct)
///     .seed(1)
///     .build()
///     .run();
/// assert!(report.agreement());
/// assert_eq!(report.decided_value(), Some(Value::One));
/// ```
#[allow(missing_debug_implementations)] // holds unboxed user closures via dyn Process
pub struct SimBuilder<M> {
    procs: Vec<(Box<dyn Process<Msg = M>>, Role)>,
    scheduler: Option<Box<dyn Scheduler<M>>>,
    seed: u64,
    step_limit: u64,
    stop_when: StopWhen,
    trace_capacity: usize,
    subscriber: Option<SharedSubscriber>,
}

impl<M: 'static> SimBuilder<M> {
    fn new() -> Self {
        SimBuilder {
            procs: Vec::new(),
            scheduler: None,
            seed: 0,
            step_limit: 1_000_000,
            stop_when: StopWhen::default(),
            trace_capacity: 0,
            subscriber: None,
        }
    }

    /// Adds a process with the given role. Processes receive dense ids in
    /// the order they are added.
    pub fn process(&mut self, process: Box<dyn Process<Msg = M>>, role: Role) -> &mut Self {
        self.procs.push((process, role));
        self
    }

    /// Adds `count` processes produced by `make(pid)`, all with `role`.
    pub fn processes(
        &mut self,
        count: usize,
        role: Role,
        mut make: impl FnMut(ProcessId) -> Box<dyn Process<Msg = M>>,
    ) -> &mut Self {
        for _ in 0..count {
            let pid = ProcessId::new(self.procs.len());
            self.procs.push((make(pid), role));
        }
        self
    }

    /// Sets the scheduler. Defaults to [`FairScheduler`], the one satisfying
    /// the paper's §2.3 probabilistic assumption.
    pub fn scheduler(&mut self, scheduler: Box<dyn Scheduler<M>>) -> &mut Self {
        self.scheduler = Some(scheduler);
        self
    }

    /// Sets the seed for the run's deterministic random stream.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.seed = seed;
        self
    }

    /// Caps the number of atomic steps (defaults to 1,000,000).
    ///
    /// # Panics
    ///
    /// Panics if `limit == 0`.
    pub fn step_limit(&mut self, limit: u64) -> &mut Self {
        assert!(limit > 0, "step limit must be positive");
        self.step_limit = limit;
        self
    }

    /// Sets the early-stop condition (defaults to
    /// [`StopWhen::AllCorrectDecided`]).
    pub fn stop_when(&mut self, stop: StopWhen) -> &mut Self {
        self.stop_when = stop;
        self
    }

    /// Enables event tracing with the given capacity (0 disables, the
    /// default).
    pub fn trace_capacity(&mut self, capacity: usize) -> &mut Self {
        self.trace_capacity = capacity;
        self
    }

    /// Attaches a [`Subscriber`](crate::Subscriber) that will receive every
    /// run event (engine and protocol level), unbounded by the trace
    /// capacity. `None` by default; an unobserved run pays only an
    /// `Option` check per event site. Callers keep their own clone of the
    /// `Arc` to read the sink back after [`Sim::run`] consumes the `Sim`.
    pub fn subscriber(&mut self, subscriber: SharedSubscriber) -> &mut Self {
        self.subscriber = Some(subscriber);
        self
    }

    /// Builds the simulation.
    ///
    /// # Panics
    ///
    /// Panics if no processes were added.
    pub fn build(&mut self) -> Sim<M> {
        assert!(!self.procs.is_empty(), "a simulation needs processes");
        let n = self.procs.len();
        let (procs, roles): (Vec<_>, Vec<_>) = std::mem::take(&mut self.procs).into_iter().unzip();
        Sim {
            procs,
            roles,
            buffers: (0..n).map(|_| Buffer::new()).collect(),
            scheduler: self
                .scheduler
                .take()
                .unwrap_or_else(|| Box::new(FairScheduler::new())),
            rng: SimRng::seed(self.seed),
            step_limit: self.step_limit,
            stop_when: self.stop_when,
            trace: if self.trace_capacity > 0 {
                Some(Trace::with_capacity(self.trace_capacity))
            } else {
                None
            },
            subscriber: self.subscriber.take(),
            metrics: Metrics::new(n),
            decision_steps: vec![None; n],
            decision_phases: vec![None; n],
            halt_recorded: vec![false; n],
            runnable: Vec::new(),
            ready: Vec::new(),
            decided_seen: Vec::new(),
            undecided_correct: 0,
            unhalted_correct: 0,
            step: 0,
        }
    }
}

/// A configured simulation, ready to [`run`](Sim::run).
///
/// The run is a pure function of the added processes, the scheduler and the
/// seed: re-building with the same inputs replays the identical execution.
pub struct Sim<M> {
    procs: Vec<Box<dyn Process<Msg = M>>>,
    roles: Vec<Role>,
    buffers: Vec<Buffer<M>>,
    scheduler: Box<dyn Scheduler<M>>,
    rng: SimRng,
    step_limit: u64,
    stop_when: StopWhen,
    trace: Option<Trace>,
    subscriber: Option<SharedSubscriber>,
    metrics: Metrics,
    decision_steps: Vec<Option<u64>>,
    decision_phases: Vec<Option<u64>>,
    halt_recorded: Vec<bool>,
    // Incrementally maintained run state. `Process::halted`/`decision` can
    // only change during the process's own atomic step, and every step is
    // followed by `observe`, so these stay exact mirrors of the O(n) scans
    // the engine used to redo on every delivery.
    /// `!procs[i].halted()`, kept current by [`Sim::observe`].
    runnable: Vec<bool>,
    /// Bit `i` set iff process `i` is runnable with a non-empty buffer —
    /// the scheduler's candidate set, maintained across deliveries.
    ready: Vec<u64>,
    /// Whether a decision by process `i` has been counted.
    decided_seen: Vec<bool>,
    /// Correct processes that have not yet decided (stop condition).
    undecided_correct: usize,
    /// Correct processes that have not yet halted (stop condition).
    unhalted_correct: usize,
    step: u64,
}

impl<M: 'static> Sim<M> {
    /// Starts building a simulation.
    #[must_use]
    pub fn builder() -> SimBuilder<M> {
        SimBuilder::new()
    }

    /// Number of processes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.procs.len()
    }

    /// Records an event in the bounded trace and forwards it to the
    /// subscriber, when either is attached.
    fn publish(&mut self, event: Event) {
        if let Some(t) = &mut self.trace {
            t.record(event);
        }
        if let Some(s) = &self.subscriber {
            s.lock().expect("subscriber lock poisoned").on_event(&event);
        }
    }

    /// Whether protocol-level emission should be collected at all.
    fn observed(&self) -> bool {
        self.trace.is_some() || self.subscriber.is_some()
    }

    fn deliver_outbox(&mut self, from: ProcessId, outbox: &mut Vec<(ProcessId, M)>) {
        // Sends are attributed to the sender's phase when the step commits.
        let phase = self.procs[from.index()].phase();
        // The sender may have halted during the very step being committed
        // (a crash wrapper truncating mid-broadcast); refresh its flag so
        // self-addressed sends are dropped exactly as a fresh `halted()`
        // query would have. No other process can have changed state since
        // its own last observed step.
        self.runnable[from.index()] = !self.procs[from.index()].halted();
        for (to, msg) in outbox.drain(..) {
            self.metrics.record_send(from.index(), phase);
            self.publish(Event::Send {
                step: self.step,
                from,
                to,
            });
            let ti = to.index();
            if !self.runnable[ti] {
                self.metrics.messages_dropped += 1;
            } else {
                self.buffers[ti].push(Envelope::new(from, msg));
                let occupancy = self.buffers[ti].len();
                self.metrics.observe_occupancy(occupancy);
                self.ready[ti >> 6] |= 1u64 << (ti & 63);
            }
        }
    }

    /// Observes decisions/halts of `pid` after a step, updating bookkeeping.
    fn observe(&mut self, pid: ProcessId) {
        let i = pid.index();
        if self.decision_steps[i].is_none() {
            if let Some(v) = self.procs[i].decision() {
                self.decision_steps[i] = Some(self.step);
                self.decision_phases[i] = self.procs[i].decision_phase();
                self.publish(Event::Decide {
                    step: self.step,
                    pid,
                    value: v,
                });
            }
        }
        if !self.decided_seen[i] && self.procs[i].decision().is_some() {
            self.decided_seen[i] = true;
            if self.roles[i] == Role::Correct {
                self.undecided_correct -= 1;
            }
        }
        if self.procs[i].halted() && !self.halt_recorded[i] {
            self.halt_recorded[i] = true;
            self.runnable[i] = false;
            self.ready[i >> 6] &= !(1u64 << (i & 63));
            if self.roles[i] == Role::Correct {
                self.unhalted_correct -= 1;
            }
            let dropped = self.buffers[i].len() as u64;
            self.metrics.messages_dropped += dropped;
            self.buffers[i].clear();
            self.publish(Event::Halt {
                step: self.step,
                pid,
            });
        }
    }

    fn stop_condition_met(&self) -> bool {
        match self.stop_when {
            StopWhen::AllCorrectDecided => self.undecided_correct == 0,
            StopWhen::AllCorrectHalted => self.unhalted_correct == 0,
            StopWhen::Never => false,
        }
    }

    /// Runs the simulation to completion and reports what happened.
    pub fn run(mut self) -> RunReport {
        let n = self.n();
        let observed = self.observed();
        // One outbox reused for every step of the run: `deliver_outbox`
        // drains it in place, so after warm-up no step allocates.
        let mut outbox: Vec<(ProcessId, M)> = Vec::new();

        // Seed the incremental mirrors from the processes' build-time state
        // (a restored checkpoint may arrive already decided or halted).
        self.runnable = self.procs.iter().map(|p| !p.halted()).collect();
        self.ready = vec![0u64; n.div_ceil(64)];
        self.decided_seen = self.procs.iter().map(|p| p.decision().is_some()).collect();
        self.undecided_correct = (0..n)
            .filter(|&i| self.roles[i] == Role::Correct && !self.decided_seen[i])
            .count();
        self.unhalted_correct = (0..n)
            .filter(|&i| self.roles[i] == Role::Correct && self.runnable[i])
            .count();

        if let Some(s) = &self.subscriber {
            let seed = self.rng.initial_seed();
            s.lock()
                .expect("subscriber lock poisoned")
                .on_run_start(n, seed);
        }

        // Initial atomic steps, in index order.
        for pid in ProcessId::all(n) {
            if !self.runnable[pid.index()] {
                continue;
            }
            self.publish(Event::Start { pid });
            let mut ctx =
                Ctx::new(pid, n, self.step, &mut outbox, &mut self.rng).with_obs(observed);
            self.procs[pid.index()].on_start(&mut ctx);
            let emitted = ctx.take_events();
            self.metrics.steps_by[pid.index()] += 1;
            for event in emitted {
                self.publish(Event::Protocol {
                    step: self.step,
                    pid,
                    event,
                });
            }
            self.deliver_outbox(pid, &mut outbox);
            self.observe(pid);
        }

        let status = loop {
            if self.stop_condition_met() {
                break RunStatus::Stopped;
            }
            if self.step >= self.step_limit {
                break RunStatus::StepLimitReached;
            }

            let selection = {
                let view =
                    SystemView::with_ready(&self.buffers, &self.runnable, &self.ready, self.step);
                self.scheduler.select(&view, &mut self.rng)
            };
            let Some(sel) = selection else {
                break RunStatus::Quiescent;
            };

            let ti = sel.to.index();
            let env = self.buffers[ti].take(sel.index);
            if self.buffers[ti].is_empty() {
                self.ready[ti >> 6] &= !(1u64 << (ti & 63));
            }
            self.step += 1;
            self.metrics.messages_delivered += 1;
            self.metrics.steps_by[sel.to.index()] += 1;
            self.publish(Event::Deliver {
                step: self.step,
                to: sel.to,
                from: env.from,
                index: sel.index,
            });
            let mut ctx =
                Ctx::new(sel.to, n, self.step, &mut outbox, &mut self.rng).with_obs(observed);
            self.procs[sel.to.index()].on_receive(env, &mut ctx);
            let emitted = ctx.take_events();
            for event in emitted {
                self.publish(Event::Protocol {
                    step: self.step,
                    pid: sel.to,
                    event,
                });
            }
            self.deliver_outbox(sel.to, &mut outbox);
            self.observe(sel.to);
        };

        let subscriber = self.subscriber.take();
        let report = RunReport {
            status,
            decisions: self.procs.iter().map(|p| p.decision()).collect(),
            roles: self.roles,
            steps: self.step,
            decision_steps: self.decision_steps,
            decision_phases: self.decision_phases,
            max_phase: self.procs.iter().map(|p| p.phase()).max().unwrap_or(0),
            metrics: self.metrics,
            trace: self.trace,
        };
        if let Some(s) = &subscriber {
            s.lock()
                .expect("subscriber lock poisoned")
                .on_run_end(&report);
        }
        report
    }
}

impl<M> fmt::Debug for Sim<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sim")
            .field("n", &self.procs.len())
            .field("step", &self.step)
            .field("step_limit", &self.step_limit)
            .finish()
    }
}

/// Everything observable about a finished run.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct RunReport {
    /// Why the run ended.
    pub status: RunStatus,
    /// Final decision of each process (`d_p`), by index.
    pub decisions: Vec<Option<Value>>,
    /// Role of each process, by index.
    pub roles: Vec<Role>,
    /// Total atomic steps taken.
    pub steps: u64,
    /// Step at which each process decided, if it did.
    pub decision_steps: Vec<Option<u64>>,
    /// Phase in which each process decided, if it did.
    pub decision_phases: Vec<Option<u64>>,
    /// Highest phase any process reached.
    pub max_phase: u64,
    /// Message/step counters.
    pub metrics: Metrics,
    /// The event trace, if enabled.
    pub trace: Option<Trace>,
}

impl RunReport {
    /// Assembles a report from externally collected run facts.
    ///
    /// [`Sim::run`] builds reports internally; this constructor exists for
    /// *other* runtimes that host [`Process`] state machines — the
    /// `netstack` socket runtime synthesizes one per cluster run so the
    /// `obs` sinks (`Subscriber::on_run_end`, `btreport`) consume simulated
    /// and networked executions identically.
    ///
    /// `steps` is the runtime's own step notion (for a networked run, the
    /// sum of per-node atomic steps); per-process vectors are indexed by
    /// [`ProcessId`].
    ///
    /// # Panics
    ///
    /// Panics unless `decisions`, `roles`, `decision_steps` and
    /// `decision_phases` all have the same length.
    #[allow(clippy::too_many_arguments)] // mirrors the report's fields 1:1
    #[must_use]
    pub fn synthesize(
        status: RunStatus,
        decisions: Vec<Option<Value>>,
        roles: Vec<Role>,
        steps: u64,
        decision_steps: Vec<Option<u64>>,
        decision_phases: Vec<Option<u64>>,
        max_phase: u64,
        metrics: Metrics,
    ) -> Self {
        let n = decisions.len();
        assert!(
            roles.len() == n && decision_steps.len() == n && decision_phases.len() == n,
            "per-process vectors must agree on n"
        );
        RunReport {
            status,
            decisions,
            roles,
            steps,
            decision_steps,
            decision_phases,
            max_phase,
            metrics,
            trace: None,
        }
    }

    /// Iterates over the indices of correct processes.
    pub fn correct(&self) -> impl Iterator<Item = usize> + '_ {
        self.roles
            .iter()
            .enumerate()
            .filter(|(_, r)| **r == Role::Correct)
            .map(|(i, _)| i)
    }

    /// The paper's **consistency** property: no two correct processes
    /// decided different values. (Vacuously true if none decided.)
    #[must_use]
    pub fn agreement(&self) -> bool {
        let mut seen: Option<Value> = None;
        for i in self.correct() {
            if let Some(v) = self.decisions[i] {
                match seen {
                    None => seen = Some(v),
                    Some(w) if w != v => return false,
                    Some(_) => {}
                }
            }
        }
        true
    }

    /// Whether every correct process decided.
    #[must_use]
    pub fn all_correct_decided(&self) -> bool {
        self.correct().all(|i| self.decisions[i].is_some())
    }

    /// The common decision value, if all correct processes decided and agree.
    #[must_use]
    pub fn decided_value(&self) -> Option<Value> {
        if !self.all_correct_decided() || !self.agreement() {
            return None;
        }
        self.correct().find_map(|i| self.decisions[i])
    }

    /// The largest phase in which any correct process decided (a run-level
    /// "phases to consensus" figure), if all decided.
    #[must_use]
    pub fn phases_to_decision(&self) -> Option<u64> {
        let mut max = None;
        for i in self.correct() {
            match self.decision_phases[i] {
                None => return None,
                Some(p) => max = Some(max.map_or(p, |m: u64| m.max(p))),
            }
        }
        max
    }

    /// The step at which the last correct process decided, if all decided.
    #[must_use]
    pub fn steps_to_decision(&self) -> Option<u64> {
        let mut max = None;
        for i in self.correct() {
            match self.decision_steps[i] {
                None => return None,
                Some(s) => max = Some(max.map_or(s, |m: u64| m.max(s))),
            }
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Decides its input as soon as it hears from anyone (including itself).
    #[derive(Debug)]
    struct EchoOnce {
        input: Value,
        decided: Option<Value>,
    }

    impl Process for EchoOnce {
        type Msg = Value;

        fn on_start(&mut self, ctx: &mut Ctx<'_, Value>) {
            ctx.broadcast(self.input);
        }

        fn on_receive(&mut self, env: Envelope<Value>, _ctx: &mut Ctx<'_, Value>) {
            if self.decided.is_none() {
                self.decided = Some(env.msg);
            }
        }

        fn decision(&self) -> Option<Value> {
            self.decided
        }

        fn phase(&self) -> u64 {
            0
        }

        fn halted(&self) -> bool {
            self.decided.is_some()
        }
    }

    fn echo(v: Value) -> Box<dyn Process<Msg = Value>> {
        Box::new(EchoOnce {
            input: v,
            decided: None,
        })
    }

    #[test]
    fn runs_to_stop_condition() {
        let report = Sim::builder()
            .process(echo(Value::One), Role::Correct)
            .process(echo(Value::One), Role::Correct)
            .process(echo(Value::One), Role::Correct)
            .seed(3)
            .build()
            .run();
        assert_eq!(report.status, RunStatus::Stopped);
        assert!(report.all_correct_decided());
        assert!(report.agreement());
        assert_eq!(report.decided_value(), Some(Value::One));
        assert_eq!(report.metrics.messages_sent, 9, "3 broadcasts of 3");
    }

    #[test]
    fn identical_seeds_replay_identically() {
        let run = |seed: u64| {
            Sim::builder()
                .process(echo(Value::Zero), Role::Correct)
                .process(echo(Value::One), Role::Correct)
                .process(echo(Value::One), Role::Correct)
                .seed(seed)
                .trace_capacity(1000)
                .build()
                .run()
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a.decisions, b.decisions);
        assert_eq!(a.steps, b.steps);
        assert_eq!(
            a.trace.as_ref().unwrap().events(),
            b.trace.as_ref().unwrap().events()
        );
    }

    #[test]
    fn quiescence_detected() {
        /// Never sends, never decides.
        #[derive(Debug)]
        struct Mute;
        impl Process for Mute {
            type Msg = Value;
            fn on_start(&mut self, _ctx: &mut Ctx<'_, Value>) {}
            fn on_receive(&mut self, _e: Envelope<Value>, _ctx: &mut Ctx<'_, Value>) {}
            fn decision(&self) -> Option<Value> {
                None
            }
            fn phase(&self) -> u64 {
                0
            }
        }
        let report = Sim::builder()
            .process(Box::new(Mute), Role::Correct)
            .seed(0)
            .build()
            .run();
        assert_eq!(report.status, RunStatus::Quiescent);
        assert!(!report.all_correct_decided());
    }

    #[test]
    fn step_limit_enforced() {
        /// Ping-pongs forever.
        #[derive(Debug)]
        struct Chatter;
        impl Process for Chatter {
            type Msg = Value;
            fn on_start(&mut self, ctx: &mut Ctx<'_, Value>) {
                ctx.broadcast(Value::Zero);
            }
            fn on_receive(&mut self, env: Envelope<Value>, ctx: &mut Ctx<'_, Value>) {
                ctx.send(env.from, env.msg);
            }
            fn decision(&self) -> Option<Value> {
                None
            }
            fn phase(&self) -> u64 {
                0
            }
        }
        let report = Sim::builder()
            .process(Box::new(Chatter), Role::Correct)
            .process(Box::new(Chatter), Role::Correct)
            .seed(0)
            .step_limit(500)
            .build()
            .run();
        assert_eq!(report.status, RunStatus::StepLimitReached);
        assert_eq!(report.steps, 500);
    }

    #[test]
    fn messages_to_halted_processes_are_dropped() {
        let report = Sim::builder()
            .process(echo(Value::One), Role::Correct)
            .process(echo(Value::One), Role::Correct)
            .seed(9)
            .stop_when(StopWhen::Never)
            .build()
            .run();
        // Both processes halt after their first delivery; remaining
        // buffered/in-flight messages get dropped.
        assert_eq!(report.status, RunStatus::Quiescent);
        assert_eq!(report.metrics.messages_sent, 4);
        assert_eq!(report.metrics.in_flight(), 0);
        assert!(report.metrics.messages_dropped > 0);
    }

    #[test]
    fn disagreement_is_reported() {
        // Two isolated echoers with different inputs each hear themselves
        // first under a seed where self-delivery happens first; force it by
        // giving each only its own broadcast (n=2, different inputs, and
        // EchoOnce decides on whatever arrives first). Find a seed where they
        // disagree.
        let mut saw_disagreement = false;
        for seed in 0..50 {
            let report = Sim::builder()
                .process(echo(Value::Zero), Role::Correct)
                .process(echo(Value::One), Role::Correct)
                .seed(seed)
                .build()
                .run();
            if !report.agreement() {
                saw_disagreement = true;
                assert_eq!(report.decided_value(), None);
            }
        }
        assert!(
            saw_disagreement,
            "EchoOnce is not a consensus protocol; some seed must split it"
        );
    }

    #[test]
    fn faulty_roles_excluded_from_properties() {
        let report = Sim::builder()
            .process(echo(Value::Zero), Role::Faulty)
            .process(echo(Value::One), Role::Correct)
            .process(echo(Value::One), Role::Correct)
            .seed(7)
            .build()
            .run();
        // The property checks quantify over correct processes only.
        let correct: Vec<_> = report.correct().collect();
        assert_eq!(correct, vec![1, 2]);
        assert!(report.all_correct_decided());
        // agreement() must ignore whatever p0 (faulty) decided: force a
        // disagreement that involves only the faulty process and recheck.
        let mut rigged = report.clone();
        rigged.decisions[1] = Some(Value::One);
        rigged.decisions[2] = Some(Value::One);
        rigged.decisions[0] = Some(Value::Zero);
        assert!(rigged.agreement());
    }
}
