//! # simnet — the asynchronous message-passing substrate
//!
//! A deterministic discrete-event simulator of the system model of
//! Bracha & Toueg, *Resilient Consensus Protocols* (PODC 1983):
//!
//! * `n` fully interconnected processes communicating through a **reliable
//!   but completely asynchronous** message system — every process has a
//!   buffer of messages sent to it but not yet received, and `receive`
//!   removes *some* message nondeterministically;
//! * **atomic steps** in which a process receives one message, computes, and
//!   sends a finite set of messages (placed instantaneously in the
//!   recipients' buffers);
//! * **authenticated senders**: the engine stamps the true origin on every
//!   [`Envelope`], so malicious processes can lie in payloads but cannot
//!   impersonate others (the §3.1 requirement);
//! * pluggable [`scheduler`]s resolving the delivery nondeterminism — the
//!   [`scheduler::FairScheduler`] realises the paper's §2.3 probabilistic
//!   assumption under which the protocols terminate with probability 1,
//!   while adversarial schedulers (delaying, partitioning) stress safety;
//! * a parallel Monte-Carlo [`runner`] for estimating expected
//!   phases-to-decision and violation rates across thousands of seeded runs,
//!   each replayable from its seed.
//!
//! Protocols are [`Process`] implementations; the crates `bt-core` (the
//! paper's protocols), `benor` (the baseline) and `adversary` (fault models)
//! all plug into this engine.
//!
//! ## Quickstart
//!
//! ```
//! use simnet::{Ctx, Envelope, Process, Role, Sim, Value};
//!
//! /// A (non-fault-tolerant) toy: decide the first value you hear.
//! #[derive(Debug)]
//! struct FirstWins {
//!     input: Value,
//!     decided: Option<Value>,
//! }
//!
//! impl Process for FirstWins {
//!     type Msg = Value;
//!     fn on_start(&mut self, ctx: &mut Ctx<'_, Value>) {
//!         ctx.broadcast(self.input);
//!     }
//!     fn on_receive(&mut self, env: Envelope<Value>, _ctx: &mut Ctx<'_, Value>) {
//!         self.decided.get_or_insert(env.msg);
//!     }
//!     fn decision(&self) -> Option<Value> {
//!         self.decided
//!     }
//!     fn phase(&self) -> u64 {
//!         0
//!     }
//! }
//!
//! let mut b = Sim::builder();
//! for _ in 0..4 {
//!     b.process(
//!         Box::new(FirstWins { input: Value::One, decided: None }),
//!         Role::Correct,
//!     );
//! }
//! let report = b.seed(1).build().run();
//! assert_eq!(report.decided_value(), Some(Value::One));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod buffer;
mod envelope;
mod id;
mod metrics;
mod process;
mod rng;
pub mod runner;
pub mod scheduler;
mod sim;
mod subscriber;
mod trace;
mod value;
pub mod wire;

pub use buffer::Buffer;
pub use envelope::Envelope;
pub use id::ProcessId;
pub use metrics::Metrics;
pub use process::{Ctx, Process};
pub use rng::SimRng;
pub use runner::{run_trials, run_trials_observed, run_trials_seq, Summary, TrialStats};
pub use scheduler::{Scheduler, Selection, SystemView};
pub use sim::{Role, RunReport, RunStatus, Sim, SimBuilder, StopWhen};
pub use subscriber::{SharedSubscriber, Subscriber};
pub use trace::{Event, ProtocolEvent, Trace};
pub use value::Value;
pub use wire::{Wire, WireError, WireReader};
