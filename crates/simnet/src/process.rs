//! The process abstraction: protocol state machines driven by the engine.

use core::fmt;

use crate::{Envelope, ProcessId, ProtocolEvent, SimRng, Value};

/// A protocol running at one process, expressed as an event-driven state
/// machine.
///
/// # Correspondence with the paper's model
///
/// In the paper (§2.1) an *atomic step* lets a process try to receive one
/// message (possibly getting the null value φ), perform a local computation,
/// and send a finite set of messages. The protocols in the paper only make
/// progress when a message actually arrives — after the initial broadcast,
/// every send is triggered by a receipt. The engine therefore drives a
/// process through:
///
/// * one [`Process::on_start`] call (the first atomic step, in which the
///   paper's protocols broadcast their initial state), then
/// * one [`Process::on_receive`] call per delivered message.
///
/// Steps in which `receive` returns φ leave the protocol state unchanged, so
/// the simulator does not spend scheduler turns on them; the arbitrary delays
/// φ models are expressed by the scheduler's freedom to reorder deliveries
/// indefinitely. See `DESIGN.md` for the equivalence argument.
///
/// # Object safety
///
/// The trait is object-safe for a fixed message type: the engine stores
/// processes as `Box<dyn Process<Msg = M>>`, so a single simulation can mix
/// correct processes, crash-wrapped processes and Byzantine strategies.
pub trait Process: fmt::Debug {
    /// The protocol's wire message type.
    type Msg;

    /// The first atomic step, before any delivery. The paper's protocols use
    /// it to broadcast their phase-0 state.
    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>);

    /// One atomic step triggered by the delivery of `env`.
    fn on_receive(&mut self, env: Envelope<Self::Msg>, ctx: &mut Ctx<'_, Self::Msg>);

    /// The decision value, once the process has irrevocably decided
    /// (`d_p` in the paper). Must never change after first returning `Some`.
    fn decision(&self) -> Option<Value>;

    /// The protocol phase this process is currently in (`phaseno`). Used for
    /// metrics and by crash schedules that kill a process upon entering a
    /// given phase. Protocols without phases may return 0.
    fn phase(&self) -> u64;

    /// The phase in which the process decided, in the paper's sense
    /// ("decides in phase `t` if it sets `d_p` while `phaseno = t`").
    ///
    /// The default reports [`Process::phase`] at the time the engine first
    /// observes the decision — correct for protocols that decide between
    /// phases, off by the in-step increment for protocols whose decision and
    /// phase advance happen in the same atomic step; the latter should
    /// override this.
    fn decision_phase(&self) -> Option<u64> {
        self.decision().map(|_| self.phase())
    }

    /// Whether the process has left the protocol and will never send again.
    /// A halted process is never scheduled and deliveries to it are dropped.
    fn halted(&self) -> bool {
        false
    }

    /// Serializes the protocol's full mutable state (phase, current value,
    /// tallies, decided flag, deferred messages) for a durable checkpoint.
    ///
    /// Returns `None` when the protocol does not support checkpointing;
    /// recovery layers then fall back to replaying the delivery log from
    /// genesis. Implementations must encode collections in a canonical
    /// order so identical states produce identical bytes.
    fn snapshot(&self) -> Option<Vec<u8>> {
        None
    }

    /// Restores state captured by [`Process::snapshot`] onto a freshly
    /// constructed process with the same configuration and input.
    ///
    /// Returns `false` (leaving the process unchanged) when the bytes are
    /// malformed or checkpointing is unsupported; callers must then fall
    /// back to replay from genesis rather than trust partial state.
    fn restore(&mut self, bytes: &[u8]) -> bool {
        let _ = bytes;
        false
    }

    /// A digest of the *replicated* portion of this process's state — the
    /// part every correct replica agrees on (an applied-log hash, say),
    /// excluding anything process-local. An amnesiac node compares these
    /// digests across peers during quorum state transfer; two correct
    /// peers serving the same replicated prefix must return the same
    /// digest, which is exactly where [`Process::snapshot`] (whose bytes
    /// include process-local state) cannot be reused.
    ///
    /// Returns 0 when the protocol has no transferable replicated state;
    /// the transfer layer then matches on decisions alone.
    fn transfer_digest(&self) -> u64 {
        0
    }

    /// The replicated state behind [`Process::transfer_digest`], encoded
    /// canonically (identical replicated state ⇒ identical bytes), or
    /// `None` when the protocol has nothing to transfer.
    fn transfer_state(&self) -> Option<Vec<u8>> {
        None
    }

    /// Installs replicated state received from a quorum of peers onto a
    /// freshly constructed process (the state-transfer counterpart of
    /// [`Process::restore`]). Returns `false` — leaving the process
    /// unchanged — when the bytes are malformed or transfer is
    /// unsupported.
    fn adopt_transfer(&mut self, bytes: &[u8]) -> bool {
        let _ = bytes;
        false
    }
}

/// The engine-provided context for one atomic step: identity, system size,
/// the outbox, and the deterministic random stream.
///
/// All sends performed during a step are placed instantaneously in the
/// recipients' buffers when the step commits, matching the paper's
/// `send(p, m)` primitive.
pub struct Ctx<'a, M> {
    me: ProcessId,
    n: usize,
    step: u64,
    outbox: &'a mut Vec<(ProcessId, M)>,
    rng: &'a mut SimRng,
    obs: bool,
    live: bool,
    events: Vec<ProtocolEvent>,
}

impl<'a, M> Ctx<'a, M> {
    /// Creates a step context. Called by the engine; exposed so protocol
    /// crates can unit-test their state machines without a full simulation.
    ///
    /// Observability starts disabled: [`Ctx::emit`] is a no-op until
    /// [`Ctx::with_obs`] enables it (the engine does so only when a trace
    /// or subscriber is attached, keeping unobserved runs free of cost).
    pub fn new(
        me: ProcessId,
        n: usize,
        step: u64,
        outbox: &'a mut Vec<(ProcessId, M)>,
        rng: &'a mut SimRng,
    ) -> Self {
        Ctx {
            me,
            n,
            step,
            outbox,
            rng,
            obs: false,
            live: true,
            events: Vec::new(),
        }
    }

    /// Enables or disables collection of [`Ctx::emit`]ted events.
    #[must_use]
    pub fn with_obs(mut self, enabled: bool) -> Self {
        self.obs = enabled;
        self
    }

    /// Marks whether this step is a *live* delivery (the default) or a
    /// replay of a journaled delivery during crash recovery. Protocols that
    /// report to external observers (wall-clock metrics, client completion
    /// callbacks) consult [`Ctx::live`] so a replayed step reconstructs the
    /// state without double-reporting side effects that already happened.
    #[must_use]
    pub fn with_live(mut self, live: bool) -> Self {
        self.live = live;
        self
    }

    /// Whether this step is a live delivery rather than a recovery replay.
    #[must_use]
    pub fn live(&self) -> bool {
        self.live
    }

    /// Records a structured protocol event for this step. Dropped silently
    /// unless observability was enabled via [`Ctx::with_obs`]; the engine
    /// drains the buffer with [`Ctx::take_events`] after the step commits.
    pub fn emit(&mut self, event: ProtocolEvent) {
        if self.obs {
            self.events.push(event);
        }
    }

    /// Drains the events emitted during this step, in emission order.
    pub fn take_events(&mut self) -> Vec<ProtocolEvent> {
        std::mem::take(&mut self.events)
    }

    /// The identity of the process taking this step.
    #[must_use]
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// The total number of processes `n` in the system.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The global atomic-step counter at the time of this step.
    #[must_use]
    pub fn step(&self) -> u64 {
        self.step
    }

    /// Sends `msg` to `to` (placed in `to`'s buffer when the step commits).
    pub fn send(&mut self, to: ProcessId, msg: M) {
        self.outbox.push((to, msg));
    }

    /// Sends a copy of `msg` to every process, *including* the sender itself
    /// — the paper's `for all q, 1 ≤ q ≤ n, send(q, …)` loop.
    pub fn broadcast(&mut self, msg: M)
    where
        M: Clone,
    {
        for q in ProcessId::all(self.n) {
            self.outbox.push((q, msg.clone()));
        }
    }

    /// Sends `make(q)` to every process `q`; for messages that depend on the
    /// recipient (used by equivocating Byzantine strategies).
    pub fn broadcast_with(&mut self, mut make: impl FnMut(ProcessId) -> M) {
        for q in ProcessId::all(self.n) {
            self.outbox.push((q, make(q)));
        }
    }

    /// The deterministic random stream for this run. Randomized protocols
    /// (Ben-Or's coin flips) and randomized Byzantine strategies draw from
    /// here so whole runs stay reproducible from a single seed.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }
}

impl<M> fmt::Debug for Ctx<'_, M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ctx")
            .field("me", &self.me)
            .field("n", &self.n)
            .field("step", &self.step)
            .field("outbox_len", &self.outbox.len())
            .field("obs", &self.obs)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_and_broadcast_fill_outbox() {
        let mut outbox = Vec::new();
        let mut rng = SimRng::seed(0);
        let mut ctx = Ctx::new(ProcessId::new(1), 4, 9, &mut outbox, &mut rng);
        assert_eq!(ctx.me(), ProcessId::new(1));
        assert_eq!(ctx.n(), 4);
        assert_eq!(ctx.step(), 9);

        ctx.send(ProcessId::new(0), 10u8);
        ctx.broadcast(7u8);
        ctx.broadcast_with(|q| q.index() as u8);

        assert_eq!(outbox.len(), 1 + 4 + 4);
        assert_eq!(outbox[0], (ProcessId::new(0), 10));
        // broadcast includes self
        assert!(outbox[1..5]
            .iter()
            .enumerate()
            .all(|(i, (to, m))| to.index() == i && *m == 7));
        assert!(outbox[5..]
            .iter()
            .enumerate()
            .all(|(i, (to, m))| to.index() == i && *m as usize == i));
    }

    #[test]
    fn emit_is_dropped_unless_obs_enabled() {
        let mut outbox: Vec<(ProcessId, u8)> = Vec::new();
        let mut rng = SimRng::seed(0);
        let mut ctx = Ctx::new(ProcessId::new(0), 2, 1, &mut outbox, &mut rng);
        ctx.emit(ProtocolEvent::PhaseEntered { phase: 1 });
        assert!(ctx.take_events().is_empty(), "disabled by default");

        let mut ctx = Ctx::new(ProcessId::new(0), 2, 1, &mut outbox, &mut rng).with_obs(true);
        ctx.emit(ProtocolEvent::PhaseEntered { phase: 1 });
        ctx.emit(ProtocolEvent::Halted { phase: 1 });
        let events = ctx.take_events();
        assert_eq!(
            events,
            vec![
                ProtocolEvent::PhaseEntered { phase: 1 },
                ProtocolEvent::Halted { phase: 1 },
            ]
        );
        assert!(ctx.take_events().is_empty(), "drained");
    }
}
