//! Monte-Carlo trial runner: estimate convergence statistics over many seeds.
//!
//! The paper's convergence property is probabilistic ("terminates with
//! probability 1, finite expected time"), so reproducing §4's performance
//! numbers means sampling: run the same configuration under many independent
//! scheduler streams and aggregate phases-to-decision, steps, messages and
//! property violations. Trials run in parallel with `std::thread::scope`;
//! each trial's seed is derived deterministically from the base seed, so
//! any individual failure can be replayed from its reported seed.

use core::fmt;
use std::sync::Mutex;

use crate::{RunReport, RunStatus, Sim, SimRng, Value};

/// Aggregated results of a batch of trials.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct TrialStats {
    /// Number of trials run.
    pub trials: usize,
    /// Trials in which every correct process decided.
    pub decided: usize,
    /// Trials in which two correct processes decided differently
    /// (consistency violations — must be zero within the resilience bound).
    pub disagreements: usize,
    /// Trials that ended quiescent without full decision (deadlocks).
    pub deadlocks: usize,
    /// Trials that hit the step limit before full decision.
    pub timeouts: usize,
    /// Per-decided-trial phases to decision (max over correct processes).
    pub phases: Summary,
    /// Per-decided-trial steps to decision.
    pub steps: Summary,
    /// Per-trial messages sent.
    pub messages: Summary,
    /// Total scheduler steps (deliveries) executed across **all** trials,
    /// decided or not — the denominator for per-delivery cost metrics.
    pub total_steps: u64,
    /// How often the common decision was `1` (over decided trials).
    pub ones_decided: usize,
    /// Seeds of trials that violated a property, for replay.
    pub violation_seeds: Vec<u64>,
}

impl TrialStats {
    /// Fraction of trials in which every correct process decided.
    #[must_use]
    pub fn termination_rate(&self) -> f64 {
        if self.trials == 0 {
            return 0.0;
        }
        self.decided as f64 / self.trials as f64
    }

    /// Fraction of decided trials whose common decision was `1`.
    #[must_use]
    pub fn one_rate(&self) -> f64 {
        if self.decided == 0 {
            return 0.0;
        }
        self.ones_decided as f64 / self.decided as f64
    }

    /// Whether any trial violated agreement or deadlocked.
    #[must_use]
    pub fn all_safe(&self) -> bool {
        self.disagreements == 0 && self.deadlocks == 0
    }
}

/// Summary statistics of a sample.
#[derive(Clone, Debug, Default)]
#[non_exhaustive]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Sample mean (0 if empty).
    pub mean: f64,
    /// Sample standard deviation (0 if fewer than 2 points).
    pub stddev: f64,
    /// Minimum (0 if empty).
    pub min: f64,
    /// Maximum (0 if empty).
    pub max: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Summary {
    /// Summarises a sample. The input need not be sorted.
    #[must_use]
    pub fn of(mut values: Vec<f64>) -> Self {
        if values.is_empty() {
            return Summary::default();
        }
        values.sort_by(|a, b| a.partial_cmp(b).expect("samples must not be NaN"));
        let count = values.len();
        let mean = values.iter().sum::<f64>() / count as f64;
        let var = if count > 1 {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (count - 1) as f64
        } else {
            0.0
        };
        let pct = |q: f64| -> f64 {
            let idx = ((count as f64 - 1.0) * q).round() as usize;
            values[idx]
        };
        Summary {
            count,
            mean,
            stddev: var.sqrt(),
            min: values[0],
            max: values[count - 1],
            p50: pct(0.50),
            p95: pct(0.95),
            p99: pct(0.99),
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mean {:.2} ± {:.2} (min {:.1}, p50 {:.1}, p95 {:.1}, max {:.1}, n={})",
            self.mean, self.stddev, self.min, self.p50, self.p95, self.max, self.count
        )
    }
}

/// Runs `trials` independent simulations in parallel and aggregates them.
///
/// `factory(seed)` must build a fully configured [`Sim`] for that seed; the
/// seeds are derived deterministically from `base_seed`. The factory runs on
/// worker threads, so it must be `Sync` (typically it captures only
/// configuration values).
///
/// # Examples
///
/// ```
/// # use simnet::{runner, Ctx, Envelope, Process, Role, Sim, Value};
/// # #[derive(Debug)]
/// # struct Yes;
/// # impl Process for Yes {
/// #     type Msg = ();
/// #     fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) { ctx.broadcast(()); }
/// #     fn on_receive(&mut self, _e: Envelope<()>, _c: &mut Ctx<'_, ()>) {}
/// #     fn decision(&self) -> Option<Value> { Some(Value::One) }
/// #     fn phase(&self) -> u64 { 0 }
/// # }
/// let stats = runner::run_trials(8, 42, |seed| {
///     let mut b = Sim::builder();
///     b.process(Box::new(Yes), Role::Correct).seed(seed);
///     b.build()
/// });
/// assert_eq!(stats.trials, 8);
/// assert_eq!(stats.termination_rate(), 1.0);
/// ```
pub fn run_trials<M, F>(trials: usize, base_seed: u64, factory: F) -> TrialStats
where
    M: 'static,
    F: Fn(u64) -> Sim<M> + Sync,
{
    let mut seed_gen = SimRng::seed(base_seed);
    let seeds: Vec<u64> = (0..trials)
        .map(|i| seed_gen.fork(i as u64).initial_seed())
        .collect();

    let reports: Mutex<Vec<(u64, RunReport)>> = Mutex::new(Vec::with_capacity(trials));
    let workers = std::thread::available_parallelism().map_or(1, |p| p.get());
    let chunk = trials.div_ceil(workers).max(1);

    std::thread::scope(|scope| {
        for ids in seeds.chunks(chunk) {
            let reports = &reports;
            let factory = &factory;
            scope.spawn(move || {
                let mut local = Vec::with_capacity(ids.len());
                for &seed in ids {
                    let report = factory(seed).run();
                    local.push((seed, report));
                }
                reports
                    .lock()
                    .expect("a trial worker panicked while reporting")
                    .extend(local);
            });
        }
    });

    let reports = reports
        .into_inner()
        .expect("a trial worker panicked while reporting");
    aggregate(&reports)
}

/// Runs `trials` sequentially on the current thread. Useful where the
/// factory cannot be `Sync`, and in tests that want full determinism of
/// aggregation order.
pub fn run_trials_seq<M, F>(trials: usize, base_seed: u64, factory: F) -> TrialStats
where
    M: 'static,
    F: FnMut(u64) -> Sim<M>,
{
    run_trials_observed(trials, base_seed, factory, |_, _| {})
}

/// Runs `trials` sequentially, invoking `observe(seed, &report)` after each
/// trial, in trial order — the hook telemetry sinks (phase aggregators,
/// JSONL writers) attach through when they need every run of a sweep, not
/// just the aggregate. Sequential on purpose: the observation order is
/// deterministic, so a deterministic sink produces identical output for
/// identical `(trials, base_seed, factory)`.
pub fn run_trials_observed<M, F, O>(
    trials: usize,
    base_seed: u64,
    mut factory: F,
    mut observe: O,
) -> TrialStats
where
    M: 'static,
    F: FnMut(u64) -> Sim<M>,
    O: FnMut(u64, &RunReport),
{
    let mut seed_gen = SimRng::seed(base_seed);
    let mut reports = Vec::with_capacity(trials);
    for i in 0..trials {
        let seed = seed_gen.fork(i as u64).initial_seed();
        let report = factory(seed).run();
        observe(seed, &report);
        reports.push((seed, report));
    }
    aggregate(&reports)
}

fn aggregate(reports: &[(u64, RunReport)]) -> TrialStats {
    let mut decided = 0;
    let mut disagreements = 0;
    let mut deadlocks = 0;
    let mut timeouts = 0;
    let mut ones_decided = 0;
    let mut phases = Vec::new();
    let mut steps = Vec::new();
    let mut messages = Vec::new();
    let mut violation_seeds = Vec::new();
    let mut total_steps = 0u64;

    for (seed, r) in reports {
        messages.push(r.metrics.messages_sent as f64);
        total_steps += r.steps;
        if !r.agreement() {
            disagreements += 1;
            violation_seeds.push(*seed);
        }
        if r.all_correct_decided() {
            decided += 1;
            if r.decided_value() == Some(Value::One) {
                ones_decided += 1;
            }
            if let Some(p) = r.phases_to_decision() {
                phases.push(p as f64);
            }
            if let Some(s) = r.steps_to_decision() {
                steps.push(s as f64);
            }
        } else {
            match r.status {
                RunStatus::Quiescent => {
                    deadlocks += 1;
                    violation_seeds.push(*seed);
                }
                RunStatus::StepLimitReached => timeouts += 1,
                RunStatus::Stopped => {}
            }
        }
    }

    TrialStats {
        trials: reports.len(),
        decided,
        disagreements,
        deadlocks,
        timeouts,
        phases: Summary::of(phases),
        steps: Summary::of(steps),
        messages: Summary::of(messages),
        total_steps,
        ones_decided,
        violation_seeds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Ctx, Envelope, Process, Role};

    /// Decides 1 immediately.
    #[derive(Debug)]
    struct Instant;

    impl Process for Instant {
        type Msg = ();
        fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
            ctx.broadcast(());
        }
        fn on_receive(&mut self, _e: Envelope<()>, _c: &mut Ctx<'_, ()>) {}
        fn decision(&self) -> Option<Value> {
            Some(Value::One)
        }
        fn phase(&self) -> u64 {
            1
        }
    }

    fn sim(seed: u64) -> Sim<()> {
        let mut b = Sim::builder();
        b.process(Box::new(Instant), Role::Correct)
            .process(Box::new(Instant), Role::Correct)
            .seed(seed);
        b.build()
    }

    #[test]
    fn summary_statistics_are_correct() {
        let s = Summary::of(vec![4.0, 1.0, 3.0, 2.0]);
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        // stddev of 1..4 with Bessel correction: sqrt(5/3)
        assert!((s.stddev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_of_empty_is_zeroed() {
        let s = Summary::of(vec![]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let a = run_trials(16, 7, sim);
        let b = run_trials_seq(16, 7, sim);
        assert_eq!(a.trials, b.trials);
        assert_eq!(a.decided, b.decided);
        assert_eq!(a.phases.mean, b.phases.mean);
        assert_eq!(a.messages.mean, b.messages.mean);
        // The step total is a plain sum, so worker scheduling cannot move it.
        assert_eq!(a.total_steps, b.total_steps);
    }

    #[test]
    fn observed_runner_sees_every_trial_in_order() {
        let mut seen: Vec<u64> = Vec::new();
        let stats = run_trials_observed(8, 7, sim, |seed, report| {
            assert!(report.all_correct_decided());
            seen.push(seed);
        });
        assert_eq!(seen.len(), 8);
        // Observation order matches the deterministic seed derivation.
        let mut seed_gen = SimRng::seed(7);
        let expected: Vec<u64> = (0..8).map(|i| seed_gen.fork(i).initial_seed()).collect();
        assert_eq!(seen, expected);
        assert_eq!(stats.trials, 8);
    }

    #[test]
    fn stats_fields_consistent() {
        let stats = run_trials_seq(10, 1, sim);
        assert_eq!(stats.trials, 10);
        assert_eq!(stats.decided, 10);
        assert_eq!(stats.termination_rate(), 1.0);
        assert_eq!(stats.one_rate(), 1.0);
        assert!(stats.all_safe());
        assert!(stats.violation_seeds.is_empty());
        assert_eq!(stats.phases.mean, 1.0);
    }
}
