//! Process identifiers.

use core::fmt;

/// Identifier of a process in a system of `n` fully interconnected processes.
///
/// Identifiers are dense indices `0..n`, which lets per-process state live in
/// plain vectors. The paper's model (§3.1) assumes the message system lets a
/// receiver verify the identity of the sender of each message; the simulator
/// enforces this by stamping the true `ProcessId` on every
/// [`Envelope`](crate::Envelope) — a malicious process can lie in the payload
/// but never about who it is.
///
/// # Examples
///
/// ```
/// use simnet::ProcessId;
///
/// let p = ProcessId::new(3);
/// assert_eq!(p.index(), 3);
/// assert_eq!(p.to_string(), "p3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(usize);

impl ProcessId {
    /// Creates a process identifier from its dense index.
    #[must_use]
    pub const fn new(index: usize) -> Self {
        ProcessId(index)
    }

    /// Returns the dense index of this process, in `0..n`.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }

    /// Iterates over all process identifiers of an `n`-process system.
    ///
    /// # Examples
    ///
    /// ```
    /// use simnet::ProcessId;
    ///
    /// let ids: Vec<_> = ProcessId::all(3).collect();
    /// assert_eq!(ids.len(), 3);
    /// assert_eq!(ids[2].index(), 2);
    /// ```
    pub fn all(n: usize) -> impl DoubleEndedIterator<Item = ProcessId> + ExactSizeIterator {
        (0..n).map(ProcessId)
    }
}

impl fmt::Debug for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<usize> for ProcessId {
    fn from(index: usize) -> Self {
        ProcessId(index)
    }
}

impl From<ProcessId> for usize {
    fn from(id: ProcessId) -> Self {
        id.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trips() {
        for i in 0..10 {
            assert_eq!(ProcessId::new(i).index(), i);
            assert_eq!(usize::from(ProcessId::from(i)), i);
        }
    }

    #[test]
    fn all_yields_dense_range() {
        let ids: Vec<_> = ProcessId::all(5).collect();
        assert_eq!(ids.len(), 5);
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(id.index(), i);
        }
    }

    #[test]
    fn display_and_debug_are_compact() {
        let p = ProcessId::new(7);
        assert_eq!(format!("{p}"), "p7");
        assert_eq!(format!("{p:?}"), "p7");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(ProcessId::new(1) < ProcessId::new(2));
        assert_eq!(ProcessId::new(4), ProcessId::new(4));
    }
}
