//! Message envelopes: authenticated carrier of protocol payloads.

use core::fmt;

use crate::ProcessId;

/// A message in flight, stamped with the identity of its true sender.
///
/// The paper's malicious model (§3.1) requires that "the message system must
/// provide a way for correct processes to verify the identity of the sender
/// of each message" — otherwise one malicious process could impersonate the
/// whole system. The simulator provides exactly this guarantee: envelopes are
/// constructed only by the engine, which stamps [`Envelope::from`] with the
/// identity of the process whose atomic step produced the message. A
/// Byzantine process may put arbitrary lies in the payload `msg`, but can
/// never forge the envelope sender.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Envelope<M> {
    /// The authenticated identity of the sender.
    pub from: ProcessId,
    /// The protocol payload.
    pub msg: M,
}

impl<M> Envelope<M> {
    /// Creates an envelope. Outside the engine this is mainly useful in tests
    /// and in protocol unit tests that drive `on_receive` by hand.
    pub fn new(from: ProcessId, msg: M) -> Self {
        Envelope { from, msg }
    }

    /// Maps the payload, keeping the sender stamp.
    pub fn map<N>(self, f: impl FnOnce(M) -> N) -> Envelope<N> {
        Envelope {
            from: self.from,
            msg: f(self.msg),
        }
    }
}

impl<M: fmt::Debug> fmt::Debug for Envelope<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}⇒{:?}", self.from, self.msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_sender() {
        let e = Envelope::new(ProcessId::new(2), 41u32);
        let e2 = e.map(|m| m + 1);
        assert_eq!(e2.from, ProcessId::new(2));
        assert_eq!(e2.msg, 42);
    }

    #[test]
    fn debug_is_nonempty() {
        let e = Envelope::new(ProcessId::new(0), "x");
        assert!(!format!("{e:?}").is_empty());
    }
}
