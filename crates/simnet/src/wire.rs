//! The `Wire` codec: a hand-rolled, dependency-free binary encoding for
//! protocol messages crossing a real network.
//!
//! Inside the simulator, messages move between processes as plain Rust
//! values — the engine owns both ends, so no serialization is needed. The
//! `netstack` runtime runs the same [`Process`](crate::Process) state
//! machines over TCP sockets, where every payload must become bytes. This
//! module is the contract between the two worlds: a protocol message type
//! implements [`Wire`], and any runtime (simulated or networked) can carry
//! it.
//!
//! The encoding is deliberately boring and stable:
//!
//! * integers are **unsigned LEB128 varints** (`u64`/`usize`), so small
//!   phase numbers — the overwhelmingly common case — cost one byte while
//!   `u64::MAX` still round-trips;
//! * enums are a **single discriminant byte** followed by the variant's
//!   fields in declaration order;
//! * sequences are a varint length followed by the elements.
//!
//! There is no self-description, versioning, or field skipping: both ends
//! of a connection run the same binary, exactly like the simulator runs a
//! single `Msg` type per system. Decoding is total — any byte sequence
//! either yields a value or a [`WireError`], never a panic — because over
//! a socket the peer may be Byzantine and the bytes arbitrary.
//!
//! The codec lives in `simnet` (rather than `netstack`) so protocol crates
//! can implement it next to their message definitions without depending on
//! the socket runtime.

use core::fmt;

use crate::{ProcessId, Value};

/// Why a decode failed.
///
/// Carried offsets are byte positions in the *payload being decoded*, not
/// in any enclosing frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before the value was complete.
    Truncated {
        /// Byte offset at which more input was needed.
        offset: usize,
    },
    /// A discriminant byte or field value was out of range for the type.
    Invalid {
        /// What was being decoded.
        what: &'static str,
        /// Byte offset of the offending input.
        offset: usize,
    },
    /// Decoding succeeded but bytes were left over (a malformed or
    /// mismatched payload; a correct peer never produces this).
    Trailing {
        /// Number of unconsumed bytes.
        extra: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { offset } => {
                write!(f, "payload truncated at byte {offset}")
            }
            WireError::Invalid { what, offset } => {
                write!(f, "invalid {what} at byte {offset}")
            }
            WireError::Trailing { extra } => {
                write!(f, "{extra} trailing bytes after a complete value")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// A cursor over a payload being decoded.
///
/// Tracks the read position so [`WireError`]s can report where a malformed
/// payload went wrong.
#[derive(Debug)]
pub struct WireReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Starts reading at the beginning of `bytes`.
    #[must_use]
    pub fn new(bytes: &'a [u8]) -> Self {
        WireReader { bytes, pos: 0 }
    }

    /// The current byte offset.
    #[must_use]
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] at end of input.
    pub fn byte(&mut self) -> Result<u8, WireError> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or(WireError::Truncated { offset: self.pos })?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads an unsigned LEB128 varint.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] at end of input, [`WireError::Invalid`] if
    /// the varint is longer than a `u64` allows (10 bytes) or overflows.
    pub fn varint(&mut self) -> Result<u64, WireError> {
        let start = self.pos;
        let mut out: u64 = 0;
        let mut shift = 0u32;
        loop {
            let b = self.byte()?;
            let low = u64::from(b & 0x7f);
            if shift >= 64 || (shift == 63 && low > 1) {
                return Err(WireError::Invalid {
                    what: "varint (overflows u64)",
                    offset: start,
                });
            }
            out |= low << shift;
            if b & 0x80 == 0 {
                return Ok(out);
            }
            shift += 7;
        }
    }

    /// Fails with [`WireError::Trailing`] unless the whole payload was
    /// consumed.
    ///
    /// # Errors
    ///
    /// [`WireError::Trailing`] when unconsumed bytes remain.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::Trailing {
                extra: self.remaining(),
            })
        }
    }
}

/// Appends `v` to `out` as an unsigned LEB128 varint.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let mut b = (v & 0x7f) as u8;
        v >>= 7;
        if v != 0 {
            b |= 0x80;
        }
        out.push(b);
        if v == 0 {
            return;
        }
    }
}

/// A type with a binary wire encoding.
///
/// The contract is exact round-tripping: for every value `m`,
/// `M::from_bytes(&m.to_bytes()) == Ok(m)` — the property the `netstack`
/// codec proptests pin down for every protocol message type in the
/// workspace. Decoding arbitrary bytes must return an error, never panic.
pub trait Wire: Sized {
    /// Appends this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decodes one value from the reader, advancing it.
    ///
    /// # Errors
    ///
    /// A [`WireError`] describing how the payload was malformed.
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError>;

    /// This value's encoding as a fresh byte vector.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Decodes a value that must occupy the whole payload.
    ///
    /// # Errors
    ///
    /// A [`WireError`], including [`WireError::Trailing`] if `bytes` holds
    /// more than one value.
    fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(bytes);
        let v = Self::decode(&mut r)?;
        r.finish()?;
        Ok(v)
    }

    /// Whether this value is well-formed for a system of `n` processes.
    ///
    /// Decoding only checks that bytes parse; a Byzantine peer can still
    /// send a structurally valid message whose *contents* are out of range
    /// for the system — most importantly a [`ProcessId`] with
    /// `index() >= n`, which would panic any protocol that indexes its
    /// per-process tables by it. Runtimes call this on every decoded
    /// message before delivery and drop anything invalid, exactly as they
    /// drop undecodable bytes.
    ///
    /// The default accepts everything; types carrying process ids (or
    /// containers of such types) override it.
    fn validate(&self, n: usize) -> bool {
        let _ = n;
        true
    }
}

impl Wire for u8 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.byte()
    }
}

impl Wire for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        put_varint(out, *self);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.varint()
    }
}

impl Wire for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        put_varint(out, *self as u64);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let offset = r.offset();
        usize::try_from(r.varint()?).map_err(|_| WireError::Invalid {
            what: "usize (too large for this platform)",
            offset,
        })
    }
}

impl Wire for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let offset = r.offset();
        match r.byte()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Invalid {
                what: "bool",
                offset,
            }),
        }
    }
}

impl Wire for Value {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(self.index() as u8);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let offset = r.offset();
        match r.byte()? {
            0 => Ok(Value::Zero),
            1 => Ok(Value::One),
            _ => Err(WireError::Invalid {
                what: "binary value",
                offset,
            }),
        }
    }
}

impl Wire for ProcessId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.index().encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(ProcessId::new(usize::decode(r)?))
    }

    fn validate(&self, n: usize) -> bool {
        self.index() < n
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let offset = r.offset();
        match r.byte()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            _ => Err(WireError::Invalid {
                what: "option tag",
                offset,
            }),
        }
    }

    fn validate(&self, n: usize) -> bool {
        self.as_ref().is_none_or(|v| v.validate(n))
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        for item in self {
            item.encode(out);
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let len = usize::decode(r)?;
        // Cap pre-allocation by what the payload could possibly hold (one
        // byte per element minimum) so a hostile length prefix cannot
        // balloon memory before `Truncated` fires.
        let mut items = Vec::with_capacity(len.min(r.remaining()));
        for _ in 0..len {
            items.push(T::decode(r)?);
        }
        Ok(items)
    }

    fn validate(&self, n: usize) -> bool {
        self.iter().all(|item| item.validate(n))
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }

    fn validate(&self, n: usize) -> bool {
        self.0.validate(n) && self.1.validate(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Wire + PartialEq + fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        assert_eq!(T::from_bytes(&bytes), Ok(v), "encoding: {bytes:?}");
    }

    #[test]
    fn varint_boundaries_round_trip() {
        for v in [
            0u64,
            1,
            127,
            128,
            129,
            16_383,
            16_384,
            u64::from(u32::MAX),
            u64::MAX - 1,
            u64::MAX,
        ] {
            round_trip(v);
        }
    }

    #[test]
    fn varint_sizes_match_leb128() {
        assert_eq!(0u64.to_bytes().len(), 1);
        assert_eq!(127u64.to_bytes().len(), 1);
        assert_eq!(128u64.to_bytes().len(), 2);
        assert_eq!(u64::MAX.to_bytes().len(), 10);
    }

    #[test]
    fn overlong_varint_rejected() {
        // 11 continuation bytes can never be a valid u64.
        let bytes = [0x80u8; 10];
        let mut with_terminator = bytes.to_vec();
        with_terminator.push(0x01);
        assert!(matches!(
            u64::from_bytes(&with_terminator),
            Err(WireError::Invalid { .. })
        ));
    }

    #[test]
    fn truncated_input_reports_offset() {
        assert_eq!(
            u64::from_bytes(&[0x80]),
            Err(WireError::Truncated { offset: 1 })
        );
        assert_eq!(u8::from_bytes(&[]), Err(WireError::Truncated { offset: 0 }));
    }

    #[test]
    fn trailing_bytes_rejected() {
        assert_eq!(
            u8::from_bytes(&[1, 2]),
            Err(WireError::Trailing { extra: 1 })
        );
    }

    #[test]
    fn core_types_round_trip() {
        round_trip(Value::Zero);
        round_trip(Value::One);
        round_trip(ProcessId::new(0));
        round_trip(ProcessId::new(usize::from(u16::MAX)));
        round_trip(true);
        round_trip(false);
        round_trip(Option::<Value>::None);
        round_trip(Some(Value::One));
        round_trip(vec![ProcessId::new(0), ProcessId::new(7)]);
        round_trip(Vec::<u64>::new());
        round_trip((3u8, Value::One));
    }

    #[test]
    fn invalid_discriminants_rejected() {
        assert!(matches!(
            Value::from_bytes(&[2]),
            Err(WireError::Invalid {
                what: "binary value",
                ..
            })
        ));
        assert!(matches!(
            bool::from_bytes(&[9]),
            Err(WireError::Invalid { .. })
        ));
        assert!(matches!(
            Option::<Value>::from_bytes(&[7]),
            Err(WireError::Invalid {
                what: "option tag",
                ..
            })
        ));
    }

    #[test]
    fn hostile_vec_length_does_not_allocate() {
        // Length claims u64::MAX/2 elements but the payload is 2 bytes:
        // must fail with Truncated, not abort on allocation.
        let mut bytes = Vec::new();
        put_varint(&mut bytes, u64::MAX / 2);
        bytes.extend_from_slice(&[1, 1]);
        assert!(matches!(
            Vec::<Value>::from_bytes(&bytes),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn validate_bounds_process_ids() {
        assert!(ProcessId::new(3).validate(4));
        assert!(!ProcessId::new(4).validate(4));
        assert!(!ProcessId::new(usize::MAX).validate(4));

        // Containers delegate to their elements.
        assert!(Some(ProcessId::new(0)).validate(1));
        assert!(!Some(ProcessId::new(1)).validate(1));
        assert!(Option::<ProcessId>::None.validate(0));
        assert!(vec![ProcessId::new(0), ProcessId::new(2)].validate(3));
        assert!(!vec![ProcessId::new(0), ProcessId::new(3)].validate(3));
        assert!((7u8, ProcessId::new(1)).validate(2));
        assert!(!(7u8, ProcessId::new(2)).validate(2));

        // Types without process ids are valid in any system.
        assert!(u64::MAX.validate(0));
        assert!(Value::One.validate(0));
    }

    #[test]
    fn errors_display() {
        for e in [
            WireError::Truncated { offset: 3 },
            WireError::Invalid {
                what: "bool",
                offset: 0,
            },
            WireError::Trailing { extra: 2 },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
