//! An adversarial scheduler that intermittently partitions the system.

use core::fmt;

use crate::{ProcessId, SimRng};

use super::{FairScheduler, Scheduler, Selection, SystemView};

/// Scheduler that alternates between *partitioned* epochs — in which only
/// messages whose sender and receiver are on the same side of a cut are
/// delivered — and periodic *healed* epochs in which all traffic flows.
///
/// The healed epochs keep the message system reliable (every message is
/// eventually delivered), so this is a legal — if hostile — resolution of the
/// paper's asynchrony. It is the schedule family behind Lemma 1's intuition:
/// a subset `S` of `n−k` correct processes must be able to carry the protocol
/// to a decision entirely on its own, because the complement may be silent
/// (dead or merely partitioned away) for arbitrarily long.
pub struct PartitionScheduler {
    side: Vec<bool>,
    epoch_len: u64,
    heal_every: u64,
    inner: FairScheduler,
}

impl PartitionScheduler {
    /// Creates a partition scheduler. Processes in `left` form one side of
    /// the cut; everyone else forms the other. Epochs last `epoch_len`
    /// deliveries; every `heal_every`-th epoch is healed (all traffic flows).
    ///
    /// # Panics
    ///
    /// Panics if `epoch_len == 0`, `heal_every == 0`, or a member of `left`
    /// is out of range.
    #[must_use]
    pub fn new(n: usize, left: &[ProcessId], epoch_len: u64, heal_every: u64) -> Self {
        assert!(epoch_len > 0, "epoch_len must be positive");
        assert!(heal_every > 0, "heal_every must be positive");
        let mut side = vec![false; n];
        for p in left {
            assert!(p.index() < n, "process {p} out of range for n={n}");
            side[p.index()] = true;
        }
        PartitionScheduler {
            side,
            epoch_len,
            heal_every,
            inner: FairScheduler::new(),
        }
    }

    /// Whether the epoch containing global step `step` is healed.
    #[must_use]
    pub fn is_healed_at(&self, step: u64) -> bool {
        (step / self.epoch_len) % self.heal_every == self.heal_every - 1
    }

    fn same_side(&self, a: ProcessId, b: ProcessId) -> bool {
        self.side[a.index()] == self.side[b.index()]
    }
}

impl fmt::Debug for PartitionScheduler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let left: Vec<usize> = (0..self.side.len()).filter(|&i| self.side[i]).collect();
        f.debug_struct("PartitionScheduler")
            .field("left", &left)
            .field("epoch_len", &self.epoch_len)
            .field("heal_every", &self.heal_every)
            .finish()
    }
}

impl<M> Scheduler<M> for PartitionScheduler {
    fn select(&mut self, view: &SystemView<'_, M>, rng: &mut SimRng) -> Option<Selection> {
        if !self.is_healed_at(view.step()) {
            let mut intra: Vec<Selection> = Vec::new();
            for to in view.deliverable() {
                for (index, from) in view.pending_senders(to) {
                    if self.same_side(from, to) {
                        intra.push(Selection { to, index });
                    }
                }
            }
            if !intra.is_empty() {
                return Some(intra[rng.index(intra.len())]);
            }
            // No intra-partition traffic left this epoch: rather than stall
            // (which would just burn steps), fall through to fair delivery.
        }
        self.inner.select(view, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Buffer, Envelope};

    fn view_fixture() -> (Vec<Buffer<u32>>, [bool; 4]) {
        // p0's buffer: a message from p1 (same side) and one from p2 (other).
        let mut b0 = Buffer::new();
        b0.push(Envelope::new(ProcessId::new(1), 10));
        b0.push(Envelope::new(ProcessId::new(2), 20));
        let buffers = vec![b0, Buffer::new(), Buffer::new(), Buffer::new()];
        (buffers, [true, true, true, true])
    }

    fn left() -> Vec<ProcessId> {
        vec![ProcessId::new(0), ProcessId::new(1)]
    }

    #[test]
    fn partitioned_epoch_delivers_intra_side_only() {
        let (buffers, runnable) = view_fixture();
        let view = SystemView::new(&buffers, &runnable, 0);
        let mut s = PartitionScheduler::new(4, &left(), 100, 10);
        assert!(!s.is_healed_at(0));
        let mut rng = SimRng::seed(0);
        for _ in 0..20 {
            let sel = s.select(&view, &mut rng).unwrap();
            assert_eq!(sel.index, 0, "only the p1→p0 message is intra-side");
        }
    }

    #[test]
    fn healed_epoch_delivers_everything() {
        let (buffers, runnable) = view_fixture();
        // step 900..=999 is epoch 9, and heal_every=10 heals epoch 9.
        let view = SystemView::new(&buffers, &runnable, 950);
        let mut s = PartitionScheduler::new(4, &left(), 100, 10);
        assert!(s.is_healed_at(950));
        let mut rng = SimRng::seed(1);
        let mut saw_cross = false;
        for _ in 0..50 {
            if s.select(&view, &mut rng).unwrap().index == 1 {
                saw_cross = true;
            }
        }
        assert!(saw_cross, "healed epoch must deliver cross-partition mail");
    }

    #[test]
    fn falls_back_when_no_intra_traffic() {
        // Only a cross-partition message pending during a partitioned epoch.
        let mut b0 = Buffer::new();
        b0.push(Envelope::new(ProcessId::new(2), 20u32));
        let buffers = vec![b0, Buffer::new(), Buffer::new(), Buffer::new()];
        let runnable = [true, true, true, true];
        let view = SystemView::new(&buffers, &runnable, 0);
        let mut s = PartitionScheduler::new(4, &left(), 100, 10);
        let mut rng = SimRng::seed(2);
        assert!(s.select(&view, &mut rng).is_some(), "must not stall");
    }

    #[test]
    #[should_panic(expected = "epoch_len must be positive")]
    fn rejects_zero_epoch() {
        let _ = PartitionScheduler::new(2, &[], 0, 1);
    }
}
