//! A scheduler wrapper that records the schedule it resolves.

use core::fmt;
use std::sync::{Arc, Mutex, PoisonError};

use crate::SimRng;

use super::{Scheduler, Selection, SystemView};

/// A shared handle to a recorded schedule.
///
/// [`Sim::run`](crate::Sim::run) consumes the boxed scheduler, so the
/// recording is exposed through an `Arc` the caller keeps: clone the handle
/// before handing the scheduler to the builder, run, then read the schedule
/// back.
pub type RecordedSchedule = Arc<Mutex<Vec<Selection>>>;

/// Wraps any scheduler and records every [`Selection`] it makes.
///
/// This is the simulator's scenario-replay hook: whatever resolved the
/// nondeterminism of a run — fair randomness, a delaying adversary, a
/// partition — the recorded selection sequence *is* the paper's §2.1
/// schedule, and replaying it through
/// [`ScriptedScheduler::exact`](super::ScriptedScheduler::exact) reproduces
/// the identical execution without the original scheduler or its RNG
/// stream. Fuzzers use this to turn a randomly found failure into a
/// self-contained scripted reproducer.
///
/// # Examples
///
/// ```
/// use simnet::scheduler::{FairScheduler, RecordingScheduler, ScriptedScheduler};
/// use simnet::{Ctx, Envelope, Process, Role, Sim, Value};
///
/// #[derive(Debug)]
/// struct Echo(Option<Value>);
/// impl Process for Echo {
///     type Msg = Value;
///     fn on_start(&mut self, ctx: &mut Ctx<'_, Value>) { ctx.broadcast(Value::One); }
///     fn on_receive(&mut self, env: Envelope<Value>, _: &mut Ctx<'_, Value>) {
///         self.0.get_or_insert(env.msg);
///     }
///     fn decision(&self) -> Option<Value> { self.0 }
///     fn phase(&self) -> u64 { 0 }
/// }
///
/// let (recorder, schedule) = RecordingScheduler::new(Box::new(FairScheduler::new()));
/// let a = Sim::builder()
///     .process(Box::new(Echo(None)), Role::Correct)
///     .process(Box::new(Echo(None)), Role::Correct)
///     .scheduler(Box::new(recorder))
///     .seed(9)
///     .build()
///     .run();
/// let script = schedule.lock().unwrap().clone();
/// let b = Sim::builder()
///     .process(Box::new(Echo(None)), Role::Correct)
///     .process(Box::new(Echo(None)), Role::Correct)
///     .scheduler(Box::new(ScriptedScheduler::exact(script)))
///     .seed(9)
///     .build()
///     .run();
/// assert_eq!(a.decisions, b.decisions);
/// ```
pub struct RecordingScheduler<M> {
    inner: Box<dyn Scheduler<M>>,
    recorded: RecordedSchedule,
}

impl<M> RecordingScheduler<M> {
    /// Wraps `inner`, returning the wrapper and the shared handle through
    /// which the recorded schedule is read back after the run.
    #[must_use]
    pub fn new(inner: Box<dyn Scheduler<M>>) -> (Self, RecordedSchedule) {
        let recorded: RecordedSchedule = Arc::new(Mutex::new(Vec::new()));
        (
            RecordingScheduler {
                inner,
                recorded: Arc::clone(&recorded),
            },
            recorded,
        )
    }
}

impl<M> fmt::Debug for RecordingScheduler<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let len = self
            .recorded
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len();
        f.debug_struct("RecordingScheduler")
            .field("inner", &self.inner)
            .field("recorded", &len)
            .finish()
    }
}

impl<M> Scheduler<M> for RecordingScheduler<M> {
    fn select(&mut self, view: &SystemView<'_, M>, rng: &mut SimRng) -> Option<Selection> {
        let selection = self.inner.select(view, rng);
        if let Some(sel) = selection {
            self.recorded
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(sel);
        }
        selection
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::test_util::make_buffers;
    use crate::scheduler::{FairScheduler, ScriptedScheduler};

    #[test]
    fn records_every_selection_in_order() {
        let buffers = make_buffers(&[2, 1]);
        let runnable = [true, true];
        let view = SystemView::new(&buffers, &runnable, 0);
        let (mut rec, handle) = RecordingScheduler::<u32>::new(Box::new(FairScheduler::new()));
        let mut rng = SimRng::seed(5);
        let a = rec.select(&view, &mut rng).unwrap();
        let b = rec.select(&view, &mut rng).unwrap();
        assert_eq!(*handle.lock().unwrap(), vec![a, b]);
    }

    #[test]
    fn recorded_schedule_replays_through_scripted() {
        let buffers = make_buffers(&[3]);
        let runnable = [true];
        let view = SystemView::new(&buffers, &runnable, 0);
        let (mut rec, handle) = RecordingScheduler::<u32>::new(Box::new(FairScheduler::new()));
        let mut rng = SimRng::seed(11);
        let picks: Vec<Selection> = (0..3)
            .map(|_| rec.select(&view, &mut rng).unwrap())
            .collect();
        let mut scripted = ScriptedScheduler::exact(handle.lock().unwrap().clone());
        let mut rng2 = SimRng::seed(0);
        for expected in picks {
            assert_eq!(scripted.select(&view, &mut rng2), Some(expected));
        }
    }

    #[test]
    fn none_is_not_recorded() {
        let buffers = make_buffers(&[0]);
        let runnable = [true];
        let view = SystemView::new(&buffers, &runnable, 0);
        let (mut rec, handle) = RecordingScheduler::<u32>::new(Box::new(FairScheduler::new()));
        let mut rng = SimRng::seed(1);
        assert_eq!(rec.select(&view, &mut rng), None);
        assert!(handle.lock().unwrap().is_empty());
    }
}
