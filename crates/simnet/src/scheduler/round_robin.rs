//! Deterministic round-robin scheduling.

use crate::{ProcessId, SimRng};

use super::{Scheduler, Selection, SystemView};

/// Fully deterministic scheduler: cycles through processes in index order and
/// delivers each one's oldest pending message.
///
/// Round-robin is a *legal* resolution of the model's nondeterminism but does
/// **not** satisfy the §2.3 probabilistic assumption (only one view per phase
/// has nonzero probability), so the convergence theorems do not apply under
/// it — only safety does. It is nonetheless the fastest way to drive a run
/// to completion when all processes are correct, and its determinism makes
/// golden-trace tests possible.
#[derive(Clone, Debug, Default)]
pub struct RoundRobinScheduler {
    cursor: usize,
}

impl RoundRobinScheduler {
    /// Creates a round-robin scheduler starting at process 0.
    #[must_use]
    pub fn new() -> Self {
        RoundRobinScheduler { cursor: 0 }
    }
}

impl<M> Scheduler<M> for RoundRobinScheduler {
    fn select(&mut self, view: &SystemView<'_, M>, _rng: &mut SimRng) -> Option<Selection> {
        let n = view.n();
        for offset in 0..n {
            let idx = (self.cursor + offset) % n;
            let pid = ProcessId::new(idx);
            if view.is_runnable(pid) && view.pending_len(pid) > 0 {
                self.cursor = (idx + 1) % n;
                return Some(Selection { to: pid, index: 0 });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::test_util::make_buffers;

    #[test]
    fn cycles_through_processes() {
        let buffers = make_buffers(&[2, 2, 2]);
        let runnable = [true, true, true];
        let view = SystemView::new(&buffers, &runnable, 0);
        let mut s = RoundRobinScheduler::new();
        let mut rng = SimRng::seed(0);
        let order: Vec<usize> = (0..6)
            .map(|_| s.select(&view, &mut rng).unwrap().to.index())
            .collect();
        assert_eq!(order, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn skips_empty_and_halted() {
        let buffers = make_buffers(&[0, 2, 2]);
        let runnable = [true, true, false];
        let view = SystemView::new(&buffers, &runnable, 0);
        let mut s = RoundRobinScheduler::new();
        let mut rng = SimRng::seed(0);
        for _ in 0..4 {
            assert_eq!(s.select(&view, &mut rng).unwrap().to.index(), 1);
        }
    }

    #[test]
    fn none_when_quiescent() {
        let buffers = make_buffers(&[0, 0]);
        let runnable = [true, true];
        let view = SystemView::new(&buffers, &runnable, 0);
        let mut s = RoundRobinScheduler::new();
        let mut rng = SimRng::seed(0);
        assert_eq!(Scheduler::<u32>::select(&mut s, &view, &mut rng), None);
    }

    #[test]
    fn always_delivers_oldest() {
        let buffers = make_buffers(&[3]);
        let runnable = [true];
        let view = SystemView::new(&buffers, &runnable, 0);
        let mut s = RoundRobinScheduler::new();
        let mut rng = SimRng::seed(0);
        assert_eq!(s.select(&view, &mut rng).unwrap().index, 0);
    }
}
