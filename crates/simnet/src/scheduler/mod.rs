//! Schedulers: resolution of the message system's nondeterminism.
//!
//! In the paper's model the `receive` primitive removes *some* message from
//! the buffer nondeterministically (or returns φ), modelling arbitrarily long
//! transmission delays. A [`Scheduler`] resolves that nondeterminism: each
//! simulation tick it picks which process receives which pending message.
//!
//! The paper's convergence proofs rest on one probabilistic assumption
//! (§2.3): *in any phase, every possible view of `n−k` messages has some
//! fixed probability ε > 0 of being the one a process sees.* The
//! [`FairScheduler`] satisfies it (every pending message has positive
//! probability of being delivered next, hence every view has positive
//! probability). The adversarial schedulers ([`DelayingScheduler`],
//! [`PartitionScheduler`]) deliberately violate uniformity while preserving
//! reliability, to stress the safety properties — which the paper proves
//! without any probabilistic assumption.

mod delaying;
mod fair;
mod partition;
mod recording;
mod round_robin;
mod scripted;

pub use delaying::DelayingScheduler;
pub use fair::{DeliveryOrder, FairScheduler};
pub use partition::PartitionScheduler;
pub use recording::{RecordedSchedule, RecordingScheduler};
pub use round_robin::RoundRobinScheduler;
pub use scripted::ScriptedScheduler;

use core::fmt;
use std::borrow::Cow;

use crate::{Buffer, ProcessId, SimRng};

/// A read-only view of the system the scheduler may base its choice on:
/// which processes can still take steps, and what is pending in each buffer.
///
/// The deliverable set (runnable processes with a non-empty buffer) is
/// materialized as a bitmask so schedulers can count and rank-select
/// candidates in O(n/64) instead of collecting a fresh `Vec` per delivery.
/// The engine maintains the mask incrementally across steps and lends it
/// via [`SystemView::with_ready`]; the public [`SystemView::new`] builds it
/// by scanning, which is fine for tests and one-shot callers.
pub struct SystemView<'a, M> {
    buffers: &'a [Buffer<M>],
    runnable: &'a [bool],
    ready: Cow<'a, [u64]>,
    step: u64,
}

impl<'a, M> SystemView<'a, M> {
    /// Creates a view. Called by the engine; public so schedulers can be
    /// unit-tested in isolation.
    pub fn new(buffers: &'a [Buffer<M>], runnable: &'a [bool], step: u64) -> Self {
        assert_eq!(
            buffers.len(),
            runnable.len(),
            "buffers and runnable mask must have the same length"
        );
        let mut ready = vec![0u64; buffers.len().div_ceil(64)];
        for (i, b) in buffers.iter().enumerate() {
            if runnable[i] && !b.is_empty() {
                ready[i >> 6] |= 1u64 << (i & 63);
            }
        }
        SystemView {
            buffers,
            runnable,
            ready: Cow::Owned(ready),
            step,
        }
    }

    /// Creates a view around an engine-maintained deliverable mask (bit `i`
    /// set iff process `i` is runnable with a non-empty buffer). The caller
    /// guarantees the mask is consistent with `buffers`/`runnable`.
    pub(crate) fn with_ready(
        buffers: &'a [Buffer<M>],
        runnable: &'a [bool],
        ready: &'a [u64],
        step: u64,
    ) -> Self {
        SystemView {
            buffers,
            runnable,
            ready: Cow::Borrowed(ready),
            step,
        }
    }

    /// Number of processes in the system.
    #[must_use]
    pub fn n(&self) -> usize {
        self.buffers.len()
    }

    /// The global atomic-step counter.
    #[must_use]
    pub fn step(&self) -> u64 {
        self.step
    }

    /// Whether `pid` is still participating (alive and not halted).
    #[must_use]
    pub fn is_runnable(&self, pid: ProcessId) -> bool {
        self.runnable[pid.index()]
    }

    /// Number of messages pending at `pid`, oldest-first indexed; the valid
    /// delivery indices for `pid` are `0..pending_len(pid)`.
    #[must_use]
    pub fn pending_len(&self, pid: ProcessId) -> usize {
        self.buffers[pid.index()].len()
    }

    /// The senders of `pid`'s pending messages, as `(index, from)` pairs in
    /// oldest-first order. Adversarial schedulers (delay, partition) filter
    /// on provenance through this; payload contents stay invisible so no
    /// scheduler can depend on what a Byzantine sender wrote.
    pub fn pending_senders(&self, pid: ProcessId) -> impl Iterator<Item = (usize, ProcessId)> + '_ {
        self.buffers[pid.index()]
            .iter()
            .enumerate()
            .map(|(i, env)| (i, env.from))
    }

    /// Processes that are runnable and have at least one pending message —
    /// the candidates for the next delivery, in ascending id order.
    pub fn deliverable(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.ready.iter().enumerate().flat_map(|(w, &word)| {
            let mut bits = word;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let tz = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(ProcessId::new((w << 6) | tz))
            })
        })
    }

    /// Number of deliverable processes (the length of
    /// [`SystemView::deliverable`]).
    #[must_use]
    pub fn deliverable_count(&self) -> usize {
        self.ready.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The `rank`-th deliverable process in ascending id order.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= self.deliverable_count()`.
    #[must_use]
    pub fn deliverable_nth(&self, rank: usize) -> ProcessId {
        let mut rem = rank;
        for (w, &word) in self.ready.iter().enumerate() {
            let count = word.count_ones() as usize;
            if rem < count {
                let mut bits = word;
                for _ in 0..rem {
                    bits &= bits - 1;
                }
                return ProcessId::new((w << 6) | bits.trailing_zeros() as usize);
            }
            rem -= count;
        }
        panic!("deliverable rank {rank} out of range");
    }

    /// Total number of pending messages across runnable processes.
    #[must_use]
    pub fn total_deliverable(&self) -> usize {
        self.deliverable()
            .map(|p| self.buffers[p.index()].len())
            .sum()
    }
}

impl<M> fmt::Debug for SystemView<'_, M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SystemView")
            .field("n", &self.n())
            .field("step", &self.step)
            .field("total_deliverable", &self.total_deliverable())
            .finish()
    }
}

/// One resolved delivery: give process `to` the pending message at `index`
/// in its buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Selection {
    /// The receiving process.
    pub to: ProcessId,
    /// Index into `view.pending(to)`.
    pub index: usize,
}

/// Strategy resolving which pending message is delivered next.
///
/// Returning `None` means no delivery is possible (every runnable process has
/// an empty buffer); the engine then declares the run quiescent. A scheduler
/// must only select runnable processes and in-bounds indices.
pub trait Scheduler<M>: fmt::Debug {
    /// Picks the next delivery, or `None` if nothing is deliverable.
    fn select(&mut self, view: &SystemView<'_, M>, rng: &mut SimRng) -> Option<Selection>;
}

#[cfg(test)]
pub(crate) mod test_util {
    use super::*;
    use crate::Envelope;

    /// Builds buffers where process `i` holds `counts[i]` dummy messages
    /// (all from p0), plus a runnable mask.
    pub(crate) fn make_buffers(counts: &[usize]) -> Vec<Buffer<u32>> {
        counts
            .iter()
            .map(|&c| {
                let mut b = Buffer::new();
                for m in 0..c {
                    b.push(Envelope::new(ProcessId::new(0), m as u32));
                }
                b
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::test_util::make_buffers;
    use super::*;

    #[test]
    fn view_reports_deliverable_processes() {
        let buffers = make_buffers(&[2, 0, 1, 3]);
        let runnable = [true, true, false, true];
        let view = SystemView::new(&buffers, &runnable, 5);
        let d: Vec<_> = view.deliverable().map(ProcessId::index).collect();
        assert_eq!(d, vec![0, 3], "p1 empty, p2 not runnable");
        assert_eq!(view.total_deliverable(), 5);
        assert_eq!(view.step(), 5);
        assert_eq!(view.n(), 4);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn view_rejects_mismatched_lengths() {
        let buffers = make_buffers(&[1]);
        let runnable = [true, false];
        let _ = SystemView::new(&buffers, &runnable, 0);
    }
}
