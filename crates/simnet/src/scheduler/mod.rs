//! Schedulers: resolution of the message system's nondeterminism.
//!
//! In the paper's model the `receive` primitive removes *some* message from
//! the buffer nondeterministically (or returns φ), modelling arbitrarily long
//! transmission delays. A [`Scheduler`] resolves that nondeterminism: each
//! simulation tick it picks which process receives which pending message.
//!
//! The paper's convergence proofs rest on one probabilistic assumption
//! (§2.3): *in any phase, every possible view of `n−k` messages has some
//! fixed probability ε > 0 of being the one a process sees.* The
//! [`FairScheduler`] satisfies it (every pending message has positive
//! probability of being delivered next, hence every view has positive
//! probability). The adversarial schedulers ([`DelayingScheduler`],
//! [`PartitionScheduler`]) deliberately violate uniformity while preserving
//! reliability, to stress the safety properties — which the paper proves
//! without any probabilistic assumption.

mod delaying;
mod fair;
mod partition;
mod recording;
mod round_robin;
mod scripted;

pub use delaying::DelayingScheduler;
pub use fair::{DeliveryOrder, FairScheduler};
pub use partition::PartitionScheduler;
pub use recording::{RecordedSchedule, RecordingScheduler};
pub use round_robin::RoundRobinScheduler;
pub use scripted::ScriptedScheduler;

use core::fmt;

use crate::{Buffer, Envelope, ProcessId, SimRng};

/// A read-only view of the system the scheduler may base its choice on:
/// which processes can still take steps, and what is pending in each buffer.
pub struct SystemView<'a, M> {
    buffers: &'a [Buffer<M>],
    runnable: &'a [bool],
    step: u64,
}

impl<'a, M> SystemView<'a, M> {
    /// Creates a view. Called by the engine; public so schedulers can be
    /// unit-tested in isolation.
    pub fn new(buffers: &'a [Buffer<M>], runnable: &'a [bool], step: u64) -> Self {
        assert_eq!(
            buffers.len(),
            runnable.len(),
            "buffers and runnable mask must have the same length"
        );
        SystemView {
            buffers,
            runnable,
            step,
        }
    }

    /// Number of processes in the system.
    #[must_use]
    pub fn n(&self) -> usize {
        self.buffers.len()
    }

    /// The global atomic-step counter.
    #[must_use]
    pub fn step(&self) -> u64 {
        self.step
    }

    /// Whether `pid` is still participating (alive and not halted).
    #[must_use]
    pub fn is_runnable(&self, pid: ProcessId) -> bool {
        self.runnable[pid.index()]
    }

    /// The pending messages of `pid`, oldest first.
    #[must_use]
    pub fn pending(&self, pid: ProcessId) -> &[Envelope<M>] {
        self.buffers[pid.index()].pending()
    }

    /// Processes that are runnable and have at least one pending message —
    /// the candidates for the next delivery.
    pub fn deliverable(&self) -> impl Iterator<Item = ProcessId> + '_ {
        ProcessId::all(self.n())
            .filter(move |p| self.is_runnable(*p) && !self.buffers[p.index()].is_empty())
    }

    /// Total number of pending messages across runnable processes.
    #[must_use]
    pub fn total_deliverable(&self) -> usize {
        self.deliverable()
            .map(|p| self.buffers[p.index()].len())
            .sum()
    }
}

impl<M> fmt::Debug for SystemView<'_, M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SystemView")
            .field("n", &self.n())
            .field("step", &self.step)
            .field("total_deliverable", &self.total_deliverable())
            .finish()
    }
}

/// One resolved delivery: give process `to` the pending message at `index`
/// in its buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Selection {
    /// The receiving process.
    pub to: ProcessId,
    /// Index into `view.pending(to)`.
    pub index: usize,
}

/// Strategy resolving which pending message is delivered next.
///
/// Returning `None` means no delivery is possible (every runnable process has
/// an empty buffer); the engine then declares the run quiescent. A scheduler
/// must only select runnable processes and in-bounds indices.
pub trait Scheduler<M>: fmt::Debug {
    /// Picks the next delivery, or `None` if nothing is deliverable.
    fn select(&mut self, view: &SystemView<'_, M>, rng: &mut SimRng) -> Option<Selection>;
}

#[cfg(test)]
pub(crate) mod test_util {
    use super::*;

    /// Builds buffers where process `i` holds `counts[i]` dummy messages
    /// (all from p0), plus a runnable mask.
    pub(crate) fn make_buffers(counts: &[usize]) -> Vec<Buffer<u32>> {
        counts
            .iter()
            .map(|&c| {
                let mut b = Buffer::new();
                for m in 0..c {
                    b.push(Envelope::new(ProcessId::new(0), m as u32));
                }
                b
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::test_util::make_buffers;
    use super::*;

    #[test]
    fn view_reports_deliverable_processes() {
        let buffers = make_buffers(&[2, 0, 1, 3]);
        let runnable = [true, true, false, true];
        let view = SystemView::new(&buffers, &runnable, 5);
        let d: Vec<_> = view.deliverable().map(ProcessId::index).collect();
        assert_eq!(d, vec![0, 3], "p1 empty, p2 not runnable");
        assert_eq!(view.total_deliverable(), 5);
        assert_eq!(view.step(), 5);
        assert_eq!(view.n(), 4);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn view_rejects_mismatched_lengths() {
        let buffers = make_buffers(&[1]);
        let runnable = [true, false];
        let _ = SystemView::new(&buffers, &runnable, 0);
    }
}
