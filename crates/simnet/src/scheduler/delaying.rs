//! An adversarial scheduler that starves selected senders.

use core::fmt;

use crate::{ProcessId, SimRng};

use super::{FairScheduler, Scheduler, Selection, SystemView};

/// Adversarial scheduler that delays every message *from* a chosen set of
/// senders for as long as anything else is deliverable.
///
/// This models the strongest delay pattern a reliable asynchronous network
/// allows: messages from the victims are postponed indefinitely while other
/// traffic flows, and are only let through when the system would otherwise
/// be stuck (which keeps the message system reliable, as the model requires).
/// The paper's protocols must stay safe under *any* such scheduler; only
/// convergence is allowed to degrade. Deadlock-freedom (Thm 2/4) is exactly
/// the property that the "only let through when stuck" fallback keeps runs
/// finishing: a protocol waiting on `n−k` messages can always proceed on
/// traffic from the non-delayed majority.
pub struct DelayingScheduler {
    delayed_from: Vec<bool>,
    inner: FairScheduler,
    n: usize,
}

impl DelayingScheduler {
    /// Creates a scheduler that starves messages sent by `victims` in an
    /// `n`-process system.
    ///
    /// # Panics
    ///
    /// Panics if any victim index is `>= n`.
    #[must_use]
    pub fn new(n: usize, victims: &[ProcessId]) -> Self {
        let mut delayed_from = vec![false; n];
        for v in victims {
            assert!(v.index() < n, "victim {v} out of range for n={n}");
            delayed_from[v.index()] = true;
        }
        DelayingScheduler {
            delayed_from,
            inner: FairScheduler::new(),
            n,
        }
    }

    /// Whether messages from `pid` are being delayed.
    #[must_use]
    pub fn is_delayed(&self, pid: ProcessId) -> bool {
        self.delayed_from[pid.index()]
    }
}

impl fmt::Debug for DelayingScheduler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let victims: Vec<usize> = (0..self.n).filter(|&i| self.delayed_from[i]).collect();
        f.debug_struct("DelayingScheduler")
            .field("delayed_from", &victims)
            .finish()
    }
}

impl<M> Scheduler<M> for DelayingScheduler {
    fn select(&mut self, view: &SystemView<'_, M>, rng: &mut SimRng) -> Option<Selection> {
        // Gather deliveries whose sender is NOT delayed.
        let mut fresh: Vec<Selection> = Vec::new();
        for to in view.deliverable() {
            for (index, from) in view.pending_senders(to) {
                if !self.delayed_from[from.index()] {
                    fresh.push(Selection { to, index });
                }
            }
        }
        if !fresh.is_empty() {
            return Some(fresh[rng.index(fresh.len())]);
        }
        // Nothing undelayed is deliverable: fall back to fair delivery so the
        // network stays reliable (messages are delayed, never lost).
        self.inner.select(view, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Buffer, Envelope};

    fn buffers_with_senders(senders: &[&[usize]]) -> Vec<Buffer<u32>> {
        senders
            .iter()
            .map(|list| {
                let mut b = Buffer::new();
                for (i, &s) in list.iter().enumerate() {
                    b.push(Envelope::new(ProcessId::new(s), i as u32));
                }
                b
            })
            .collect()
    }

    #[test]
    fn prefers_undelayed_senders() {
        // p0's buffer holds one message from p1 (delayed) and one from p2.
        let buffers = buffers_with_senders(&[&[1, 2]]);
        let runnable = [true];
        let view = SystemView::new(&buffers, &runnable, 0);
        let mut s = DelayingScheduler::new(3, &[ProcessId::new(1)]);
        let mut rng = SimRng::seed(0);
        for _ in 0..20 {
            let sel = s.select(&view, &mut rng).unwrap();
            assert_eq!(sel.index, 1, "must pick the message from p2");
        }
    }

    #[test]
    fn falls_back_when_only_delayed_remain() {
        let buffers = buffers_with_senders(&[&[1, 1]]);
        let runnable = [true];
        let view = SystemView::new(&buffers, &runnable, 0);
        let mut s = DelayingScheduler::new(2, &[ProcessId::new(1)]);
        let mut rng = SimRng::seed(0);
        let sel = s.select(&view, &mut rng).unwrap();
        assert_eq!(sel.to.index(), 0, "reliability: delayed mail still flows");
    }

    #[test]
    fn none_when_quiescent() {
        let buffers = buffers_with_senders(&[&[], &[]]);
        let runnable = [true, true];
        let view = SystemView::new(&buffers, &runnable, 0);
        let mut s = DelayingScheduler::new(2, &[]);
        let mut rng = SimRng::seed(0);
        assert_eq!(Scheduler::<u32>::select(&mut s, &view, &mut rng), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_victim() {
        let _ = DelayingScheduler::new(2, &[ProcessId::new(5)]);
    }

    #[test]
    fn reports_delayed_set() {
        let s = DelayingScheduler::new(3, &[ProcessId::new(2)]);
        assert!(s.is_delayed(ProcessId::new(2)));
        assert!(!s.is_delayed(ProcessId::new(0)));
    }
}
