//! A scheduler that plays back an explicit schedule.

use core::fmt;

use crate::SimRng;

use super::{FairScheduler, Scheduler, Selection, SystemView};

/// Replays a fixed list of [`Selection`]s, then (optionally) falls back to
/// fair scheduling.
///
/// This is the bridge between the paper's *schedule* formalism (§2.1: "a
/// sequence of atomic steps is called a schedule") and the simulator:
/// specific interleavings — e.g. one exhibited by the model checker, or a
/// regression case for a past bug — can be pinned down exactly.
///
/// Scripted steps whose target has no deliverable message at that index are
/// skipped (with a counter, so tests can assert the script stayed valid).
pub struct ScriptedScheduler {
    script: Vec<Selection>,
    cursor: usize,
    skipped: usize,
    fallback: Option<FairScheduler>,
}

impl ScriptedScheduler {
    /// Plays `script`, then falls back to fair scheduling.
    #[must_use]
    pub fn with_fallback(script: Vec<Selection>) -> Self {
        ScriptedScheduler {
            script,
            cursor: 0,
            skipped: 0,
            fallback: Some(FairScheduler::new()),
        }
    }

    /// Plays `script`, then stops the run (quiescence) even if messages
    /// remain — the adversary simply refuses to deliver further, which the
    /// asynchronous model permits at any finite point.
    #[must_use]
    pub fn exact(script: Vec<Selection>) -> Self {
        ScriptedScheduler {
            script,
            cursor: 0,
            skipped: 0,
            fallback: None,
        }
    }

    /// How many scripted steps were invalid when their turn came.
    #[must_use]
    pub fn skipped(&self) -> usize {
        self.skipped
    }

    /// Whether the whole script has been consumed.
    #[must_use]
    pub fn finished(&self) -> bool {
        self.cursor >= self.script.len()
    }
}

impl fmt::Debug for ScriptedScheduler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScriptedScheduler")
            .field("len", &self.script.len())
            .field("cursor", &self.cursor)
            .field("skipped", &self.skipped)
            .field("has_fallback", &self.fallback.is_some())
            .finish()
    }
}

impl<M> Scheduler<M> for ScriptedScheduler {
    fn select(&mut self, view: &SystemView<'_, M>, rng: &mut SimRng) -> Option<Selection> {
        while self.cursor < self.script.len() {
            let sel = self.script[self.cursor];
            self.cursor += 1;
            let valid = sel.to.index() < view.n()
                && view.is_runnable(sel.to)
                && sel.index < view.pending_len(sel.to);
            if valid {
                return Some(sel);
            }
            self.skipped += 1;
        }
        match &mut self.fallback {
            Some(fair) => fair.select(view, rng),
            None => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::test_util::make_buffers;
    use crate::ProcessId;

    fn sel(to: usize, index: usize) -> Selection {
        Selection {
            to: ProcessId::new(to),
            index,
        }
    }

    #[test]
    fn plays_script_in_order() {
        let buffers = make_buffers(&[2, 2]);
        let runnable = [true, true];
        let view = SystemView::new(&buffers, &runnable, 0);
        let mut s = ScriptedScheduler::exact(vec![sel(1, 1), sel(0, 0)]);
        let mut rng = SimRng::seed(0);
        assert_eq!(s.select(&view, &mut rng), Some(sel(1, 1)));
        assert_eq!(s.select(&view, &mut rng), Some(sel(0, 0)));
        assert!(s.finished());
        assert_eq!(Scheduler::<u32>::select(&mut s, &view, &mut rng), None);
    }

    #[test]
    fn invalid_steps_are_skipped_and_counted() {
        let buffers = make_buffers(&[1, 0]);
        let runnable = [true, false];
        let view = SystemView::new(&buffers, &runnable, 0);
        let mut s = ScriptedScheduler::exact(vec![
            sel(1, 0), // not runnable
            sel(0, 5), // out of range
            sel(0, 0), // valid
        ]);
        let mut rng = SimRng::seed(0);
        assert_eq!(s.select(&view, &mut rng), Some(sel(0, 0)));
        assert_eq!(s.skipped(), 2);
    }

    #[test]
    fn fallback_takes_over_after_script() {
        let buffers = make_buffers(&[3]);
        let runnable = [true];
        let view = SystemView::new(&buffers, &runnable, 0);
        let mut s = ScriptedScheduler::with_fallback(vec![sel(0, 2)]);
        let mut rng = SimRng::seed(0);
        assert_eq!(s.select(&view, &mut rng), Some(sel(0, 2)));
        // Script done; fair fallback keeps delivering.
        assert!(s.select(&view, &mut rng).is_some());
    }
}
