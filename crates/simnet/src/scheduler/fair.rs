//! The probabilistically fair scheduler of §2.3.

use core::fmt;

use crate::{ProcessId, SimRng};

use super::{Scheduler, Selection, SystemView};

/// How the [`FairScheduler`] picks a message once it has picked a receiver.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DeliveryOrder {
    /// Uniformly random among pending messages — the fully asynchronous
    /// model, and the default.
    #[default]
    Random,
    /// Oldest first, modelling FIFO channels. Still fair across processes.
    Fifo,
    /// Newest first. An unusual but legal resolution of the model's
    /// nondeterminism; useful for shaking out ordering assumptions.
    Lifo,
}

/// The scheduler that realises the paper's probabilistic assumption: every
/// pending message of every runnable process has positive probability of
/// being delivered next, so in any phase every candidate view of `n−k`
/// messages has probability ≥ ε of being the one a process sees (§2.3).
///
/// Receiver choice can be weighted per process via
/// [`FairScheduler::with_weights`], modelling heterogeneous process speeds
/// while preserving fairness (all weights must be positive).
///
/// # Examples
///
/// ```
/// use simnet::scheduler::{DeliveryOrder, FairScheduler};
///
/// let sched = FairScheduler::new();
/// let fifo = FairScheduler::new().delivery_order(DeliveryOrder::Fifo);
/// # let _ = (sched, fifo);
/// ```
#[derive(Clone)]
pub struct FairScheduler {
    order: DeliveryOrder,
    weights: Option<Vec<f64>>,
}

impl FairScheduler {
    /// Creates the default fair scheduler: uniform receiver, uniform message.
    #[must_use]
    pub fn new() -> Self {
        FairScheduler {
            order: DeliveryOrder::Random,
            weights: None,
        }
    }

    /// Sets how the message is chosen once the receiver is fixed.
    #[must_use]
    pub fn delivery_order(mut self, order: DeliveryOrder) -> Self {
        self.order = order;
        self
    }

    /// Weights receiver choice by `weights[p]` (relative process speeds).
    ///
    /// # Panics
    ///
    /// Panics if any weight is not strictly positive and finite — a zero
    /// weight would starve a process forever and violate fairness.
    #[must_use]
    pub fn with_weights(mut self, weights: Vec<f64>) -> Self {
        assert!(
            weights.iter().all(|w| w.is_finite() && *w > 0.0),
            "all scheduler weights must be positive and finite"
        );
        self.weights = Some(weights);
        self
    }

    fn pick_receiver<M>(&self, view: &SystemView<'_, M>, rng: &mut SimRng) -> Option<ProcessId> {
        // Count-then-rank-select over the view's deliverable bitmask: the
        // same uniform choice (and the same RNG draw sequence) the old
        // collect-into-a-Vec implementation made, without the per-delivery
        // allocation — this is the engine's hottest scheduler path.
        let count = view.deliverable_count();
        if count == 0 {
            return None;
        }
        match &self.weights {
            None => Some(view.deliverable_nth(rng.index(count))),
            Some(w) => {
                let total: f64 = view.deliverable().map(|p| w[p.index()]).sum();
                // Inverse-CDF sampling over the candidate weights.
                let mut x = (rng.next_u64() as f64 / u64::MAX as f64) * total;
                let mut last = None;
                for p in view.deliverable() {
                    x -= w[p.index()];
                    if x <= 0.0 {
                        return Some(p);
                    }
                    last = Some(p);
                }
                last
            }
        }
    }
}

impl Default for FairScheduler {
    fn default() -> Self {
        FairScheduler::new()
    }
}

impl fmt::Debug for FairScheduler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FairScheduler")
            .field("order", &self.order)
            .field("weighted", &self.weights.is_some())
            .finish()
    }
}

impl<M> Scheduler<M> for FairScheduler {
    fn select(&mut self, view: &SystemView<'_, M>, rng: &mut SimRng) -> Option<Selection> {
        let to = self.pick_receiver(view, rng)?;
        let len = view.pending_len(to);
        let index = match self.order {
            DeliveryOrder::Random => rng.index(len),
            DeliveryOrder::Fifo => 0,
            DeliveryOrder::Lifo => len - 1,
        };
        Some(Selection { to, index })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::test_util::make_buffers;

    #[test]
    fn returns_none_when_nothing_deliverable() {
        let buffers = make_buffers(&[0, 0]);
        let runnable = [true, true];
        let view = SystemView::new(&buffers, &runnable, 0);
        let mut s = FairScheduler::new();
        let mut rng = SimRng::seed(1);
        assert_eq!(Scheduler::<u32>::select(&mut s, &view, &mut rng), None);
    }

    #[test]
    fn skips_non_runnable_processes() {
        let buffers = make_buffers(&[3, 3]);
        let runnable = [false, true];
        let view = SystemView::new(&buffers, &runnable, 0);
        let mut s = FairScheduler::new();
        let mut rng = SimRng::seed(2);
        for _ in 0..50 {
            let sel = s.select(&view, &mut rng).unwrap();
            assert_eq!(sel.to.index(), 1);
            assert!(sel.index < 3);
        }
    }

    #[test]
    fn every_pending_message_is_eventually_chosen() {
        let buffers = make_buffers(&[4]);
        let runnable = [true];
        let view = SystemView::new(&buffers, &runnable, 0);
        let mut s = FairScheduler::new();
        let mut rng = SimRng::seed(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            let sel = s.select(&view, &mut rng).unwrap();
            seen[sel.index] = true;
        }
        assert!(seen.iter().all(|&b| b), "fairness: all indices reachable");
    }

    #[test]
    fn fifo_and_lifo_pick_ends() {
        let buffers = make_buffers(&[5]);
        let runnable = [true];
        let view = SystemView::new(&buffers, &runnable, 0);
        let mut rng = SimRng::seed(4);

        let mut fifo = FairScheduler::new().delivery_order(DeliveryOrder::Fifo);
        assert_eq!(fifo.select(&view, &mut rng).unwrap().index, 0);

        let mut lifo = FairScheduler::new().delivery_order(DeliveryOrder::Lifo);
        assert_eq!(lifo.select(&view, &mut rng).unwrap().index, 4);
    }

    #[test]
    fn weighted_choice_biases_towards_heavy_process() {
        let buffers = make_buffers(&[1, 1]);
        let runnable = [true, true];
        let view = SystemView::new(&buffers, &runnable, 0);
        let mut s = FairScheduler::new().with_weights(vec![1.0, 9.0]);
        let mut rng = SimRng::seed(5);
        let heavy = (0..2000)
            .filter(|_| s.select(&view, &mut rng).unwrap().to.index() == 1)
            .count();
        assert!((1600..=2000).contains(&heavy), "got {heavy}");
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn zero_weight_rejected() {
        let _ = FairScheduler::new().with_weights(vec![1.0, 0.0]);
    }
}
