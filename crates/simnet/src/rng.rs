//! Deterministic seeded randomness for reproducible simulations.

use core::fmt;

use prng::Prng;

/// The simulator's random-number generator.
///
/// Every run of the simulator is a pure function of the protocol code and a
/// single `u64` seed: the engine threads one `SimRng` through the scheduler
/// and every process step, so identical seeds replay identical executions.
/// This is what makes failures found by the Monte-Carlo
/// [`runner`](crate::runner) reproducible from their reported seed alone.
///
/// # Examples
///
/// ```
/// use simnet::SimRng;
///
/// let mut a = SimRng::seed(7);
/// let mut b = SimRng::seed(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
pub struct SimRng {
    inner: Prng,
    seed: u64,
}

impl SimRng {
    /// Creates a generator from a seed. Identical seeds produce identical
    /// streams.
    #[must_use]
    pub fn seed(seed: u64) -> Self {
        SimRng {
            inner: Prng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this generator was created from.
    #[must_use]
    pub fn initial_seed(&self) -> u64 {
        self.seed
    }

    /// Draws the next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Draws a uniform index in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "cannot draw an index from an empty range");
        self.inner.index(bound)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.inner.chance(p)
    }

    /// Flips a fair coin, as Ben-Or's protocol does in its random step.
    pub fn coin(&mut self) -> bool {
        self.inner.coin()
    }

    /// Captures the generator's full state for a durable checkpoint:
    /// the original seed plus the current 256-bit xoshiro state.
    #[must_use]
    pub fn save(&self) -> (u64, [u64; 4]) {
        (self.seed, self.inner.state())
    }

    /// Rebuilds a generator from a [`SimRng::save`] checkpoint; the stream
    /// continues exactly where the saved generator stood.
    #[must_use]
    pub fn restore(seed: u64, state: [u64; 4]) -> Self {
        SimRng {
            inner: Prng::from_state(state),
            seed,
        }
    }

    /// Derives an independent child generator; used by the Monte-Carlo runner
    /// to give each trial its own stream while staying reproducible.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        // Mix with a large odd constant (splitmix64 finaliser flavour) so
        // nearby trial indices land on unrelated seeds.
        let mixed =
            (self.seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15)).wrapping_add(self.next_u64());
        SimRng::seed(mixed)
    }
}

impl fmt::Debug for SimRng {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimRng").field("seed", &self.seed).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed(123);
        let mut b = SimRng::seed(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed(1);
        let mut b = SimRng::seed(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be essentially uncorrelated");
    }

    #[test]
    fn index_stays_in_bounds() {
        let mut rng = SimRng::seed(9);
        for bound in 1..40 {
            for _ in 0..50 {
                assert!(rng.index(bound) < bound);
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn index_rejects_zero_bound() {
        SimRng::seed(0).index(0);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed(4);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn forks_are_reproducible_and_distinct() {
        let mut root1 = SimRng::seed(42);
        let mut root2 = SimRng::seed(42);
        let mut f1 = root1.fork(5);
        let mut f2 = root2.fork(5);
        assert_eq!(f1.next_u64(), f2.next_u64());

        let mut root = SimRng::seed(42);
        let mut a = root.fork(0);
        let mut b = root.fork(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn save_restore_resumes_mid_stream() {
        let mut a = SimRng::seed(55);
        for _ in 0..9 {
            a.next_u64();
        }
        let (seed, state) = a.save();
        let mut b = SimRng::restore(seed, state);
        assert_eq!(b.initial_seed(), 55);
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn coin_is_roughly_fair() {
        let mut rng = SimRng::seed(77);
        let heads = (0..10_000).filter(|_| rng.coin()).count();
        assert!((4_500..=5_500).contains(&heads), "got {heads} heads");
    }
}
