//! Execution traces: a compact record of what a run did.

use crate::{ProcessId, Value};

/// A structured protocol-level event, emitted by a protocol through
/// [`Ctx::emit`](crate::Ctx::emit) and surfaced as [`Event::Protocol`].
///
/// Engine events ([`Event::Send`], [`Event::Deliver`], …) describe what the
/// *message system* did; `ProtocolEvent`s describe what the *protocol state
/// machine* did with it — the phase transitions, witness counts and echo
/// tallies that §4 of the paper reasons about. Emission is free when
/// observability is off (the engine leaves the context's event buffer
/// disabled unless a trace or subscriber is attached).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtocolEvent {
    /// The process advanced to `phase` (`phaseno ← phase`).
    PhaseEntered {
        /// The phase just entered.
        phase: u64,
    },
    /// A value reached witness cardinality at this process (fail-stop
    /// protocol: a message carried `cardinality > n/2`).
    WitnessReached {
        /// The phase in which the witness was observed.
        phase: u64,
        /// The witnessed value.
        value: Value,
        /// The cardinality that made it a witness.
        cardinality: usize,
    },
    /// An initial/echo broadcast instance was accepted (malicious protocol:
    /// more than `(n + k)/2` echoes for one `(subject, value, phase)`).
    EchoAccepted {
        /// The phase of the accepted broadcast.
        phase: u64,
        /// The process whose initial message was echoed.
        subject: ProcessId,
        /// The accepted value.
        value: Value,
        /// Distinct echoes counted at acceptance.
        echoes: usize,
    },
    /// The process's current estimate changed between phases.
    ValueFlipped {
        /// The phase in which the flip happened.
        phase: u64,
        /// The previous estimate.
        from: Value,
        /// The new estimate.
        to: Value,
    },
    /// A randomized protocol drew its local coin (Ben-Or's random step).
    CoinFlipped {
        /// The phase (round) of the flip.
        phase: u64,
        /// The value the coin chose.
        value: Value,
    },
    /// The process irrevocably set `d_p` while in `phase`.
    Decided {
        /// The paper's decision phase (`phaseno` when `d_p` was set).
        phase: u64,
        /// The decision value.
        value: Value,
    },
    /// The process left the protocol (post-decision exit broadcast done).
    Halted {
        /// The phase at halt.
        phase: u64,
    },
}

/// One observable event in a run. Message payloads are deliberately not
/// recorded — traces stay message-type-agnostic and cheap; protocol-level
/// state is carried by the structured [`Event::Protocol`] variant instead.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// A process took its initial atomic step.
    Start {
        /// The process taking the step.
        pid: ProcessId,
    },
    /// A message was delivered (the receiver took an atomic step on it).
    Deliver {
        /// Global step counter at delivery.
        step: u64,
        /// The receiver.
        to: ProcessId,
        /// The authenticated sender.
        from: ProcessId,
        /// The buffer slot the scheduler selected (the `index` of the
        /// [`Selection`](crate::Selection) that caused this delivery).
        /// Together with `to` this pins the exact schedule, so a recorded
        /// trace can be replayed through
        /// [`ScriptedScheduler`](crate::scheduler::ScriptedScheduler).
        /// Runtimes without delivery buffers (the netstack socket runtime)
        /// report 0.
        index: usize,
    },
    /// A message was placed in a buffer.
    Send {
        /// Global step counter at send.
        step: u64,
        /// The sender.
        from: ProcessId,
        /// The recipient.
        to: ProcessId,
    },
    /// A process irrevocably decided.
    Decide {
        /// Global step counter at decision.
        step: u64,
        /// The deciding process.
        pid: ProcessId,
        /// The decision value.
        value: Value,
    },
    /// A process halted (left the protocol, or crashed).
    Halt {
        /// Global step counter at halt.
        step: u64,
        /// The halting process.
        pid: ProcessId,
    },
    /// A protocol-level event emitted by the process taking the step.
    Protocol {
        /// Global step counter when the event was emitted.
        step: u64,
        /// The emitting process.
        pid: ProcessId,
        /// The structured protocol event.
        event: ProtocolEvent,
    },
    /// A crashed process rejoined by replaying its durable log (the
    /// netstack crash-recovery path; the simulator itself never emits
    /// this). Emitted once, after replay completes, carrying the state
    /// the node resumed at.
    Recover {
        /// Local step counter after replay (the step the node resumed at).
        step: u64,
        /// The recovered process.
        pid: ProcessId,
        /// Deliveries replayed from the log during recovery.
        replayed: u64,
    },
}

/// A bounded event log. Recording stops silently once `capacity` events have
/// been collected; [`Trace::truncated`] reports whether that happened.
#[derive(Clone, Debug)]
pub struct Trace {
    events: Vec<Event>,
    capacity: usize,
    dropped: u64,
}

impl Trace {
    /// Creates a trace that records at most `capacity` events.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            events: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Records an event (or counts it as dropped when full).
    pub fn record(&mut self, event: Event) {
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.dropped += 1;
        }
    }

    /// The recorded events, in order.
    #[must_use]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Whether events were dropped because the capacity was reached.
    #[must_use]
    pub fn truncated(&self) -> bool {
        self.dropped > 0
    }

    /// Number of events that could not be recorded.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Convenience: the decisions in decision order.
    pub fn decisions(&self) -> impl Iterator<Item = (ProcessId, Value)> + '_ {
        self.events.iter().filter_map(|e| match e {
            Event::Decide { pid, value, .. } => Some((*pid, *value)),
            _ => None,
        })
    }

    /// Renders the trace as one human-readable line per event — the format
    /// you paste into a bug report next to the seed that produced it.
    ///
    /// # Examples
    ///
    /// ```
    /// use simnet::{Event, ProcessId, Trace, Value};
    ///
    /// let mut t = Trace::with_capacity(8);
    /// t.record(Event::Start { pid: ProcessId::new(0) });
    /// t.record(Event::Decide { step: 3, pid: ProcessId::new(0), value: Value::One });
    /// let text = t.render();
    /// assert!(text.contains("p0 starts"));
    /// assert!(text.contains("decides 1"));
    /// ```
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for e in &self.events {
            match e {
                Event::Start { pid } => {
                    let _ = writeln!(out, "[    0] {pid} starts");
                }
                Event::Send { step, from, to } => {
                    let _ = writeln!(out, "[{step:>5}] {from} sends to {to}");
                }
                Event::Deliver { step, to, from, .. } => {
                    let _ = writeln!(out, "[{step:>5}] {to} receives from {from}");
                }
                Event::Decide { step, pid, value } => {
                    let _ = writeln!(out, "[{step:>5}] {pid} decides {value}");
                }
                Event::Halt { step, pid } => {
                    let _ = writeln!(out, "[{step:>5}] {pid} halts");
                }
                Event::Protocol { step, pid, event } => {
                    let _ = writeln!(out, "[{step:>5}] {pid} {}", render_protocol(event));
                }
                Event::Recover {
                    step,
                    pid,
                    replayed,
                } => {
                    let _ = writeln!(
                        out,
                        "[{step:>5}] {pid} recovers ({replayed} deliveries replayed)"
                    );
                }
            }
        }
        if self.dropped > 0 {
            let _ = writeln!(out, "… plus {} unrecorded events", self.dropped);
        }
        out
    }
}

fn render_protocol(e: &ProtocolEvent) -> String {
    match e {
        ProtocolEvent::PhaseEntered { phase } => format!("enters phase {phase}"),
        ProtocolEvent::WitnessReached {
            phase,
            value,
            cardinality,
        } => format!("sees witness for {value} (cardinality {cardinality}) in phase {phase}"),
        ProtocolEvent::EchoAccepted {
            phase,
            subject,
            value,
            echoes,
        } => format!("accepts {subject}'s {value} ({echoes} echoes) in phase {phase}"),
        ProtocolEvent::ValueFlipped { phase, from, to } => {
            format!("flips {from} → {to} in phase {phase}")
        }
        ProtocolEvent::CoinFlipped { phase, value } => {
            format!("flips coin → {value} in phase {phase}")
        }
        ProtocolEvent::Decided { phase, value } => format!("decides {value} in phase {phase}"),
        ProtocolEvent::Halted { phase } => format!("leaves the protocol in phase {phase}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_until_capacity() {
        let mut t = Trace::with_capacity(2);
        t.record(Event::Start {
            pid: ProcessId::new(0),
        });
        t.record(Event::Start {
            pid: ProcessId::new(1),
        });
        t.record(Event::Start {
            pid: ProcessId::new(2),
        });
        assert_eq!(t.events().len(), 2);
        assert!(t.truncated());
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn render_covers_every_event_kind_and_truncation() {
        let mut t = Trace::with_capacity(5);
        t.record(Event::Start {
            pid: ProcessId::new(0),
        });
        t.record(Event::Send {
            step: 1,
            from: ProcessId::new(0),
            to: ProcessId::new(1),
        });
        t.record(Event::Deliver {
            step: 2,
            to: ProcessId::new(1),
            from: ProcessId::new(0),
            index: 0,
        });
        t.record(Event::Decide {
            step: 3,
            pid: ProcessId::new(1),
            value: Value::Zero,
        });
        t.record(Event::Halt {
            step: 4,
            pid: ProcessId::new(1),
        });
        t.record(Event::Start {
            pid: ProcessId::new(2),
        }); // dropped
        let text = t.render();
        for needle in [
            "starts",
            "sends",
            "receives",
            "decides 0",
            "halts",
            "unrecorded",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        let mut t = Trace::with_capacity(1);
        t.record(Event::Recover {
            step: 9,
            pid: ProcessId::new(1),
            replayed: 4,
        });
        let text = t.render();
        for needle in ["recovers", "4 deliveries replayed"] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn protocol_events_render() {
        let mut t = Trace::with_capacity(10);
        t.record(Event::Protocol {
            step: 2,
            pid: ProcessId::new(1),
            event: ProtocolEvent::PhaseEntered { phase: 3 },
        });
        t.record(Event::Protocol {
            step: 4,
            pid: ProcessId::new(0),
            event: ProtocolEvent::WitnessReached {
                phase: 3,
                value: Value::One,
                cardinality: 4,
            },
        });
        t.record(Event::Protocol {
            step: 5,
            pid: ProcessId::new(0),
            event: ProtocolEvent::Decided {
                phase: 3,
                value: Value::One,
            },
        });
        let text = t.render();
        for needle in ["enters phase 3", "witness for 1", "decides 1 in phase 3"] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn decisions_iterator_filters() {
        let mut t = Trace::with_capacity(10);
        t.record(Event::Start {
            pid: ProcessId::new(0),
        });
        t.record(Event::Decide {
            step: 5,
            pid: ProcessId::new(1),
            value: Value::One,
        });
        t.record(Event::Halt {
            step: 6,
            pid: ProcessId::new(1),
        });
        let d: Vec<_> = t.decisions().collect();
        assert_eq!(d, vec![(ProcessId::new(1), Value::One)]);
    }
}
