//! Engine stop conditions and scripted scheduling, end to end.

use simnet::scheduler::ScriptedScheduler;
use simnet::{Ctx, Envelope, Process, ProcessId, Role, RunStatus, Selection, Sim, StopWhen, Value};

/// Decides after `threshold` deliveries, halts `lag` deliveries later.
#[derive(Debug)]
struct SlowHalter {
    received: usize,
    threshold: usize,
    lag: usize,
    decided: Option<Value>,
    halted: bool,
}

impl SlowHalter {
    fn new(threshold: usize, lag: usize) -> Self {
        SlowHalter {
            received: 0,
            threshold,
            lag,
            decided: None,
            halted: false,
        }
    }
}

impl Process for SlowHalter {
    type Msg = ();

    fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
        ctx.broadcast(());
    }

    fn on_receive(&mut self, _env: Envelope<()>, ctx: &mut Ctx<'_, ()>) {
        self.received += 1;
        if self.received >= self.threshold && self.decided.is_none() {
            self.decided = Some(Value::One);
        }
        if self.received >= self.threshold + self.lag {
            self.halted = true;
        } else {
            // Keep traffic alive so the run does not quiesce early.
            ctx.broadcast(());
        }
    }

    fn decision(&self) -> Option<Value> {
        self.decided
    }

    fn phase(&self) -> u64 {
        self.received as u64
    }

    fn halted(&self) -> bool {
        self.halted
    }
}

fn build(stop: StopWhen) -> Sim<()> {
    let mut b = Sim::builder();
    b.process(Box::new(SlowHalter::new(2, 3)), Role::Correct)
        .process(Box::new(SlowHalter::new(2, 3)), Role::Correct)
        .seed(5)
        .step_limit(10_000)
        .stop_when(stop);
    b.build()
}

#[test]
fn all_correct_decided_stops_before_halting() {
    let r = build(StopWhen::AllCorrectDecided).run();
    assert_eq!(r.status, RunStatus::Stopped);
    assert!(r.all_correct_decided());
    // Stopped at decision: processes had not halted yet (halt events would
    // appear in metrics as cleared buffers; phases prove the early stop).
    assert!(r.max_phase < 6, "stopped soon after the decisions");
}

#[test]
fn all_correct_halted_runs_longer() {
    let decided = build(StopWhen::AllCorrectDecided).run();
    let halted = build(StopWhen::AllCorrectHalted).run();
    assert_eq!(halted.status, RunStatus::Stopped);
    assert!(
        halted.steps > decided.steps,
        "halting takes strictly more deliveries than deciding ({} vs {})",
        halted.steps,
        decided.steps
    );
}

#[test]
fn never_runs_to_quiescence() {
    let r = build(StopWhen::Never).run();
    // All processes eventually halt themselves; with nobody left to
    // deliver to, the run quiesces.
    assert_eq!(r.status, RunStatus::Quiescent);
    assert_eq!(r.metrics.in_flight(), 0);
}

#[test]
fn scripted_scheduler_drives_engine_deterministically() {
    // Script: alternate deliveries p0, p1, p0, p1... via FIFO indices.
    let script: Vec<Selection> = (0..8)
        .map(|i| Selection {
            to: ProcessId::new(i % 2),
            index: 0,
        })
        .collect();
    let mut b = Sim::builder();
    b.process(Box::new(SlowHalter::new(2, 1)), Role::Correct)
        .process(Box::new(SlowHalter::new(2, 1)), Role::Correct)
        .seed(0)
        .stop_when(StopWhen::Never)
        .step_limit(100);
    b.scheduler(Box::new(ScriptedScheduler::exact(script)));
    let r = b.build().run();
    // Each process: decides at 2nd delivery, halts at 3rd. The script
    // delivers 3 to each before running out (plus one skipped each after
    // halting); the run then quiesces.
    assert_eq!(r.status, RunStatus::Quiescent);
    assert!(r.all_correct_decided());
    assert_eq!(r.decisions, vec![Some(Value::One), Some(Value::One)]);
}
