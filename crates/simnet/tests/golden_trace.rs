//! Golden-trace regression: a fully deterministic configuration (fixed
//! seed, round-robin scheduler) must replay the exact same event sequence
//! forever. If this test breaks, either the engine's scheduling semantics
//! or a protocol's deterministic behaviour changed — both are
//! compatibility-relevant events that deserve a deliberate golden update.

use simnet::scheduler::RoundRobinScheduler;
use simnet::{Ctx, Envelope, Event, Process, ProcessId, Role, Sim, Value};

/// A tiny deterministic protocol: collect two values, decide their AND.
#[derive(Debug)]
struct TwoVoteAnd {
    input: Value,
    seen: Vec<Value>,
    decision: Option<Value>,
}

impl Process for TwoVoteAnd {
    type Msg = Value;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Value>) {
        ctx.broadcast(self.input);
    }

    fn on_receive(&mut self, env: Envelope<Value>, _ctx: &mut Ctx<'_, Value>) {
        if self.decision.is_some() {
            return;
        }
        self.seen.push(env.msg);
        if self.seen.len() == 2 {
            let both_one = self.seen.iter().all(|v| *v == Value::One);
            self.decision = Some(Value::from(both_one));
        }
    }

    fn decision(&self) -> Option<Value> {
        self.decision
    }

    fn phase(&self) -> u64 {
        self.seen.len() as u64
    }

    fn halted(&self) -> bool {
        self.decision.is_some()
    }
}

fn run() -> simnet::RunReport {
    let mut b = Sim::builder();
    b.process(
        Box::new(TwoVoteAnd {
            input: Value::One,
            seen: Vec::new(),
            decision: None,
        }),
        Role::Correct,
    );
    b.process(
        Box::new(TwoVoteAnd {
            input: Value::Zero,
            seen: Vec::new(),
            decision: None,
        }),
        Role::Correct,
    );
    b.scheduler(Box::new(RoundRobinScheduler::new()))
        .seed(0)
        .trace_capacity(64);
    b.build().run()
}

#[test]
fn golden_event_sequence() {
    let report = run();
    let p0 = ProcessId::new(0);
    let p1 = ProcessId::new(1);
    let expected = vec![
        // Initial steps: each broadcasts to both, in index order.
        Event::Start { pid: p0 },
        Event::Send {
            step: 0,
            from: p0,
            to: p0,
        },
        Event::Send {
            step: 0,
            from: p0,
            to: p1,
        },
        Event::Start { pid: p1 },
        Event::Send {
            step: 0,
            from: p1,
            to: p0,
        },
        Event::Send {
            step: 0,
            from: p1,
            to: p1,
        },
        // Round-robin, FIFO: p0 gets its own message first…
        Event::Deliver {
            step: 1,
            to: p0,
            from: p0,
            index: 0,
        },
        // …then p1 gets p0's.
        Event::Deliver {
            step: 2,
            to: p1,
            from: p0,
            index: 0,
        },
        // Second sweep: both receive p1's broadcast and decide AND = 0.
        Event::Deliver {
            step: 3,
            to: p0,
            from: p1,
            index: 0,
        },
        Event::Decide {
            step: 3,
            pid: p0,
            value: Value::Zero,
        },
        Event::Halt { step: 3, pid: p0 },
        Event::Deliver {
            step: 4,
            to: p1,
            from: p1,
            index: 0,
        },
        Event::Decide {
            step: 4,
            pid: p1,
            value: Value::Zero,
        },
        Event::Halt { step: 4, pid: p1 },
    ];
    let trace = report.trace.as_ref().expect("tracing enabled");
    assert_eq!(trace.events(), expected.as_slice());
    assert_eq!(report.decided_value(), Some(Value::Zero));
    assert_eq!(report.steps, 4);
}

#[test]
fn golden_is_stable_across_replays() {
    let a = run();
    let b = run();
    assert_eq!(
        a.trace.unwrap().events(),
        b.trace.unwrap().events(),
        "identical configurations replay identically"
    );
}
