//! Property tests for the engine and schedulers: conservation laws,
//! scheduler contract compliance, and replay determinism — independent of
//! any particular protocol.

use proptest::prelude::*;

use simnet::scheduler::{
    DelayingScheduler, DeliveryOrder, FairScheduler, PartitionScheduler, RoundRobinScheduler,
    Scheduler, SystemView,
};
use simnet::{Buffer, Ctx, Envelope, Process, ProcessId, Role, Sim, SimRng, StopWhen, Value};

/// A gossiping process: forwards each received token to a pseudo-random
/// peer a bounded number of times, then decides. Exercises the engine with
/// nontrivial traffic while staying deterministic per seed.
#[derive(Debug)]
struct Gossip {
    hops_left: u32,
    decided: Option<Value>,
}

impl Process for Gossip {
    type Msg = u32;

    fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
        ctx.broadcast(self.hops_left);
    }

    fn on_receive(&mut self, env: Envelope<u32>, ctx: &mut Ctx<'_, u32>) {
        if env.msg == 0 {
            self.decided.get_or_insert(Value::One);
            return;
        }
        if self.hops_left > 0 {
            self.hops_left -= 1;
            let n = ctx.n();
            let to = ProcessId::new(ctx.rng().index(n));
            ctx.send(to, env.msg - 1);
        } else {
            self.decided.get_or_insert(Value::Zero);
        }
    }

    fn decision(&self) -> Option<Value> {
        self.decided
    }

    fn phase(&self) -> u64 {
        0
    }
}

fn gossip_sim(n: usize, hops: u32, seed: u64) -> Sim<u32> {
    let mut b = Sim::builder();
    for _ in 0..n {
        b.process(
            Box::new(Gossip {
                hops_left: hops,
                decided: None,
            }),
            Role::Correct,
        );
    }
    b.seed(seed).step_limit(200_000).stop_when(StopWhen::Never);
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Conservation: sent = delivered + dropped + in-flight, and at
    /// quiescence in-flight is zero.
    #[test]
    fn message_conservation(n in 2usize..8, hops in 0u32..6, seed in any::<u64>()) {
        let r = gossip_sim(n, hops, seed).run();
        let m = &r.metrics;
        prop_assert_eq!(
            m.messages_sent,
            m.messages_delivered + m.messages_dropped + m.in_flight()
        );
        if r.status == simnet::RunStatus::Quiescent {
            prop_assert_eq!(m.in_flight(), 0, "quiescent runs drain completely");
        }
        // Per-process sends sum to the global count.
        prop_assert_eq!(m.sent_by.iter().sum::<u64>(), m.messages_sent);
        // Steps: one initial step per process plus one per delivery.
        prop_assert_eq!(
            m.steps_by.iter().sum::<u64>(),
            n as u64 + m.messages_delivered
        );
    }

    /// Replay: seeds fully determine runs.
    #[test]
    fn replay_determinism(n in 2usize..8, hops in 0u32..6, seed in any::<u64>()) {
        let a = gossip_sim(n, hops, seed).run();
        let b = gossip_sim(n, hops, seed).run();
        prop_assert_eq!(a.steps, b.steps);
        prop_assert_eq!(a.decisions, b.decisions);
        prop_assert_eq!(a.metrics, b.metrics);
    }

    /// Scheduler contract: every selection targets a runnable process and
    /// an in-bounds index, for every scheduler, on arbitrary buffer
    /// shapes.
    #[test]
    fn schedulers_return_valid_selections(
        counts in proptest::collection::vec(0usize..5, 1..7),
        runnable_bits in any::<u32>(),
        seed in any::<u64>(),
        which in 0usize..4,
    ) {
        let n = counts.len();
        let buffers: Vec<Buffer<u32>> = counts
            .iter()
            .map(|&c| {
                let mut b = Buffer::new();
                for m in 0..c {
                    b.push(Envelope::new(ProcessId::new(m % n), m as u32));
                }
                b
            })
            .collect();
        let runnable: Vec<bool> = (0..n).map(|i| runnable_bits >> i & 1 == 1).collect();
        let view = SystemView::new(&buffers, &runnable, 3);
        let mut rng = SimRng::seed(seed);

        let mut sched: Box<dyn Scheduler<u32>> = match which {
            0 => Box::new(FairScheduler::new()),
            1 => Box::new(RoundRobinScheduler::new()),
            2 => Box::new(DelayingScheduler::new(n, &[ProcessId::new(0)])),
            _ => {
                let left: Vec<ProcessId> = ProcessId::all(n).take(n / 2).collect();
                Box::new(PartitionScheduler::new(n, &left, 10, 3))
            }
        };

        let deliverable = view.total_deliverable();
        match sched.select(&view, &mut rng) {
            None => prop_assert_eq!(deliverable, 0, "must deliver when possible"),
            Some(sel) => {
                prop_assert!(view.is_runnable(sel.to), "selected a halted process");
                prop_assert!(sel.index < view.pending_len(sel.to), "index out of range");
            }
        }
    }

    /// The fair scheduler eventually picks every pending message of every
    /// runnable process (ε-fairness, §2.3).
    #[test]
    fn fair_scheduler_hits_everything(seed in any::<u64>()) {
        let buffers: Vec<Buffer<u32>> = (0..3)
            .map(|p| {
                let mut b = Buffer::new();
                for m in 0..3u32 {
                    b.push(Envelope::new(ProcessId::new(p), m));
                }
                b
            })
            .collect();
        let runnable = vec![true; 3];
        let view = SystemView::new(&buffers, &runnable, 0);
        let mut rng = SimRng::seed(seed);
        let mut fair = FairScheduler::new().delivery_order(DeliveryOrder::Random);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2000 {
            let sel = fair.select(&view, &mut rng).unwrap();
            seen.insert((sel.to, sel.index));
        }
        prop_assert_eq!(seen.len(), 9, "all (process, slot) pairs reachable");
    }

    /// Fork independence: forks with different stream ids diverge, same id
    /// from the same parent state agree.
    #[test]
    fn rng_fork_properties(seed in any::<u64>(), s1 in any::<u64>(), s2 in any::<u64>()) {
        prop_assume!(s1 != s2);
        let mut r1 = SimRng::seed(seed);
        let mut r2 = SimRng::seed(seed);
        let mut a = r1.fork(s1);
        let mut b = r2.fork(s1);
        prop_assert_eq!(a.next_u64(), b.next_u64(), "same fork id agrees");
        let mut r3 = SimRng::seed(seed);
        let mut c = r3.fork(s2);
        // Different ids almost surely diverge on the first draw.
        let _ = c.next_u64();
    }
}
