//! Scheduler-visible ordering: the slab-with-tombstones [`Buffer`] must
//! present *exactly* the logical view the old `Vec::remove` buffer did —
//! same deliverable set, same index semantics, same envelope at every
//! index — so a seeded run makes the same delivery sequence it always
//! made. The reference model here *is* the old representation: plain
//! `Vec`s, removal by shift.

use simnet::scheduler::{FairScheduler, Scheduler, SystemView};
use simnet::{Buffer, Envelope, ProcessId, SimRng};

const N: usize = 9;

/// One delivery selected against the reference model, mirroring
/// `FairScheduler`'s draw sequence: one uniform draw over deliverable
/// processes (ascending id order), one over that buffer's length.
fn model_select(
    model: &[Vec<Envelope<u32>>],
    runnable: &[bool],
    rng: &mut SimRng,
) -> Option<(usize, usize)> {
    let deliverable: Vec<usize> = (0..model.len())
        .filter(|&p| runnable[p] && !model[p].is_empty())
        .collect();
    if deliverable.is_empty() {
        return None;
    }
    let to = deliverable[rng.index(deliverable.len())];
    let index = rng.index(model[to].len());
    Some((to, index))
}

#[test]
fn seeded_delivery_sequence_matches_vec_remove_reference() {
    for seed in 0..25u64 {
        let mut rng = SimRng::seed(0xD311 ^ seed);
        let mut sched_rng = SimRng::seed(0x5EED ^ seed);
        let mut model_rng = SimRng::seed(0x5EED ^ seed);
        let mut sched = FairScheduler::new();

        let mut buffers: Vec<Buffer<u32>> = (0..N).map(|_| Buffer::new()).collect();
        let mut model: Vec<Vec<Envelope<u32>>> = vec![Vec::new(); N];
        let mut runnable = [true; N];
        let mut payload = 0u32;
        let mut deliveries: Vec<(usize, usize, u32)> = Vec::new();

        for step in 0..4_000u64 {
            // Mixed workload: bursts of sends, occasional halts, deliveries.
            match rng.index(10) {
                0..=4 => {
                    let to = rng.index(N);
                    let env = Envelope::new(ProcessId::new(rng.index(N)), payload);
                    buffers[to].push(env.clone());
                    model[to].push(env);
                    payload += 1;
                }
                5 if step > 2_000 => {
                    // Halt a process late in the run, like `observe` does.
                    let p = rng.index(N);
                    runnable[p] = false;
                    buffers[p].clear();
                    model[p].clear();
                }
                _ => {
                    let view = SystemView::new(&buffers, &runnable, step);
                    let sel = sched.select(&view, &mut sched_rng);
                    let expected = model_select(&model, &runnable, &mut model_rng);
                    assert_eq!(
                        sel.map(|s| (s.to.index(), s.index)),
                        expected,
                        "seed {seed} step {step}: selection diverged"
                    );
                    let Some(sel) = sel else { continue };
                    let env = buffers[sel.to.index()].take(sel.index);
                    let want = model[sel.to.index()].remove(sel.index);
                    assert_eq!(
                        (env.from, env.msg),
                        (want.from, want.msg),
                        "seed {seed} step {step}: delivered envelope diverged"
                    );
                    deliveries.push((sel.to.index(), sel.index, env.msg));
                }
            }
        }
        assert!(
            deliveries.len() > 500,
            "seed {seed}: workload too light to be meaningful ({} deliveries)",
            deliveries.len()
        );
        // Logical views agree at the end, too.
        for p in 0..N {
            assert_eq!(
                buffers[p].iter().map(|e| e.msg).collect::<Vec<_>>(),
                model[p].iter().map(|e| e.msg).collect::<Vec<_>>(),
                "seed {seed}: final buffer {p} diverged"
            );
        }
    }
}
