//! # prng — self-contained deterministic pseudo-randomness
//!
//! A small, dependency-free generator shared by every crate in the
//! workspace that needs reproducible random streams: the simulator's
//! [`SimRng`](https://docs.rs) wrapper, the Markov-chain sampler, and the
//! offline property-test / bench harnesses. The build environment has no
//! network access, so the workspace carries its own generator instead of
//! depending on the `rand` ecosystem.
//!
//! The algorithm is **xoshiro256++** (Blackman & Vigna), seeded through
//! **splitmix64** exactly as `rand`'s `SmallRng` does on 64-bit targets.
//! It is fast (a handful of ALU ops per draw), passes BigCrush, and is
//! trivially portable. It is *not* cryptographically secure — nothing in
//! this workspace needs that.
//!
//! # Examples
//!
//! ```
//! use prng::Prng;
//!
//! let mut a = Prng::seed_from_u64(7);
//! let mut b = Prng::seed_from_u64(7);
//! assert_eq!(a.next_u64(), b.next_u64());
//! assert!(a.index(10) < 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use core::fmt;

/// The splitmix64 step: advances `state` and returns the next output.
///
/// Used for seed expansion (one `u64` seed → the generator's 256-bit
/// state) and anywhere a single cheap mixing step is wanted.
#[must_use]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A xoshiro256++ pseudo-random number generator.
///
/// Identical seeds produce identical streams on every platform; the whole
/// workspace's reproducibility story rests on that.
#[derive(Clone, PartialEq, Eq)]
pub struct Prng {
    s: [u64; 4],
}

impl Prng {
    /// Creates a generator from a 64-bit seed via splitmix64 expansion
    /// (the same construction `rand`'s `seed_from_u64` uses).
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Prng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Draws the next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Draws a uniform value in `0..bound` by Lemire's multiply-shift with
    /// rejection (unbiased).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "cannot draw an index from an empty range");
        let bound = bound as u64;
        // Rejection zone below 2^64 mod bound keeps the draw unbiased.
        let zone = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let wide = u128::from(x) * u128::from(bound);
            let low = wide as u64;
            if low >= zone {
                return (wide >> 64) as usize;
            }
        }
    }

    /// Draws a uniform `u64` in `0..bound` (unbiased).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot draw from an empty range");
        let zone = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let wide = u128::from(x) * u128::from(bound);
            let low = wide as u64;
            if low >= zone {
                return (wide >> 64) as u64;
            }
        }
    }

    /// Draws a uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        if p >= 1.0 {
            return true;
        }
        self.f64() < p
    }

    /// Flips a fair coin.
    pub fn coin(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// The generator's full 256-bit state, for durable checkpoints. A
    /// generator rebuilt with [`Prng::from_state`] continues the stream
    /// exactly where this one stands.
    #[must_use]
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Reconstructs a generator from a state captured by [`Prng::state`].
    ///
    /// The all-zero state is a fixed point of xoshiro256++ (the stream
    /// would be constant zero), so it is replaced by the expansion of
    /// seed 0 — the same defense `seed_from_u64` provides.
    #[must_use]
    pub fn from_state(s: [u64; 4]) -> Self {
        if s == [0; 4] {
            return Prng::seed_from_u64(0);
        }
        Prng { s }
    }
}

impl fmt::Debug for Prng {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The raw state is noise to a human; identify the type only.
        f.debug_struct("Prng").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // First outputs for seed 0, from the public-domain C source.
        let mut state = 0u64;
        assert_eq!(splitmix64(&mut state), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut state), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn streams_are_deterministic() {
        let mut a = Prng::seed_from_u64(99);
        let mut b = Prng::seed_from_u64(99);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Prng::seed_from_u64(1);
        let mut b = Prng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn index_is_in_bounds_and_covers_range() {
        let mut rng = Prng::seed_from_u64(5);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let i = rng.index(7);
            assert!(i < 7);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn index_rejects_zero() {
        Prng::seed_from_u64(0).index(0);
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut rng = Prng::seed_from_u64(8);
        for _ in 0..1000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn state_round_trip_resumes_the_stream() {
        let mut a = Prng::seed_from_u64(31);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = Prng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn all_zero_state_is_rejected() {
        let mut z = Prng::from_state([0; 4]);
        let mut seeded = Prng::seed_from_u64(0);
        assert_eq!(z.next_u64(), seeded.next_u64());
    }

    #[test]
    fn chance_extremes_and_fairness() {
        let mut rng = Prng::seed_from_u64(4);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        let heads = (0..10_000).filter(|_| rng.coin()).count();
        assert!((4_500..=5_500).contains(&heads), "got {heads} heads");
    }
}
