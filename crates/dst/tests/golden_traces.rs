//! Golden-trace determinism gate.
//!
//! One pinned scenario per protocol, run through the simulator with a JSONL
//! sink attached; the resulting trace must match the committed fixture
//! **byte for byte**. The fixtures were captured before the large-n engine
//! rework (compact buffers, incremental scheduler views, flat tallies), so
//! this suite is the proof that the data-structure swap preserved the
//! engine's observable behaviour exactly: same seed, same schedule, same
//! deliveries, same decisions, same bytes.
//!
//! To regenerate after an *intentional* semantic change, run with
//! `BT_UPDATE_GOLDEN=1` and commit the diff — the diff itself is then the
//! reviewable record of what the change did to the schedule.

use std::fs;
use std::path::PathBuf;

use dst::{run_sim, FaultSpec, OrderSpec, ProtoKind, Scenario, SchedSpec};
use simnet::Value;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn check_golden(name: &str, scenario: &Scenario) {
    let outcome = run_sim(scenario);
    let path = fixture_path(name);
    if std::env::var_os("BT_UPDATE_GOLDEN").is_some() {
        fs::create_dir_all(path.parent().expect("fixture dir")).expect("mkdir fixtures");
        fs::write(&path, &outcome.trace).expect("write fixture");
        return;
    }
    let golden = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); run with BT_UPDATE_GOLDEN=1",
            name
        )
    });
    // Compare linewise first for a readable failure, then byte-exact.
    for (lineno, (got, want)) in outcome.trace.lines().zip(golden.lines()).enumerate() {
        assert_eq!(
            got,
            want,
            "{name}: trace diverges from fixture at line {}",
            lineno + 1
        );
    }
    assert_eq!(
        outcome.trace, golden,
        "{name}: trace length differs from fixture"
    );
}

fn inputs(n: usize) -> Vec<Value> {
    (0..n)
        .map(|i| if i % 2 == 0 { Value::One } else { Value::Zero })
        .collect()
}

#[test]
fn failstop_trace_matches_fixture() {
    let n = 5;
    let mut faults = vec![FaultSpec::Correct; n];
    faults[2] = FaultSpec::CrashAfterSends(7);
    check_golden(
        "failstop.jsonl",
        &Scenario {
            proto: ProtoKind::FailStop,
            n,
            k: 1,
            seed: 0xB7_0001,
            inputs: inputs(n),
            faults,
            sched: SchedSpec::Fair(OrderSpec::Random),
            step_limit: 100_000,
            inject: None,
        },
    );
}

#[test]
fn simple_trace_matches_fixture() {
    let n = 5;
    check_golden(
        "simple.jsonl",
        &Scenario {
            proto: ProtoKind::Simple,
            n,
            k: 1,
            seed: 0xB7_0002,
            inputs: inputs(n),
            faults: vec![FaultSpec::Correct; n],
            sched: SchedSpec::Fair(OrderSpec::Random),
            step_limit: 100_000,
            inject: None,
        },
    );
}

#[test]
fn malicious_trace_matches_fixture() {
    let n = 4;
    let mut faults = vec![FaultSpec::Correct; n];
    faults[3] = FaultSpec::TwoFaced;
    check_golden(
        "malicious.jsonl",
        &Scenario {
            proto: ProtoKind::Malicious,
            n,
            k: 1,
            seed: 0xB7_0003,
            inputs: inputs(n),
            faults,
            sched: SchedSpec::Fair(OrderSpec::Random),
            step_limit: 100_000,
            inject: None,
        },
    );
}

/// The adversarial schedulers read the pending-message view (sender
/// filtering), so pin one partition-scheduled run too: it exercises the
/// view-iteration path the fair scheduler never touches.
#[test]
fn partitioned_malicious_trace_matches_fixture() {
    let n = 4;
    check_golden(
        "malicious_partition.jsonl",
        &Scenario {
            proto: ProtoKind::Malicious,
            n,
            k: 1,
            seed: 0xB7_0004,
            inputs: inputs(n),
            faults: vec![FaultSpec::Correct; n],
            sched: SchedSpec::Partition {
                left: vec![0, 1],
                epoch_len: 16,
                heal_every: 3,
            },
            step_limit: 100_000,
            inject: None,
        },
    );
}
