//! Cross-runtime and statistical conformance.
//!
//! The simulator and the socket runtime execute the same protocol code;
//! these tests hold them to the same *decision* properties on shared-seed
//! scenarios, and hold the simulator's measured phase counts to the §4
//! analytic predictions of the `markov` crate.

use std::time::Duration;

use dst::{check, run_netstack, run_sim, FaultSpec, OrderSpec, ProtoKind, Scenario, SchedSpec};
use markov::collapsed;
use prng::Prng;
use simnet::{RunStatus, Value};

/// Shared-seed conformance: a clean, unanimous-input scenario must decide
/// the unanimous value on every correct process in *both* runtimes.
/// Unanimity pins the decision (validity), so "identical decisions" is a
/// real cross-runtime invariant rather than a schedule accident.
#[test]
fn shared_seed_scenarios_decide_identically_across_runtimes() {
    if !netstack::sockets_available() {
        eprintln!("skipping: sandbox forbids loopback sockets");
        return;
    }
    let mut rng = Prng::seed_from_u64(0xD57_C0DE);
    let mut compared = 0usize;
    while compared < 4 {
        let mut scenario = Scenario::generate(&mut rng);
        // Force unanimity so the decision value is pinned by validity.
        scenario.inputs = vec![Value::One; scenario.n];
        let unanimous = scenario.unanimous_input().expect("all-One is unanimous");

        let sim = run_sim(&scenario);
        let sim_trace = obs::parse_trace(&sim.trace).expect("trace parses");
        let sim_violations = check(&scenario, &sim.report, &sim_trace);
        assert!(
            sim_violations.is_empty(),
            "simulator violated on {}: {sim_violations:?}",
            scenario.describe()
        );

        let Some(net) = run_netstack(&scenario, Duration::from_secs(60)) else {
            eprintln!("skipping: sandbox forbids loopback sockets");
            return;
        };
        let net_violations = check(&scenario, &net, &[]);
        assert!(
            net_violations.is_empty(),
            "netstack violated on {}: {net_violations:?}",
            scenario.describe()
        );
        for i in 0..scenario.n {
            if scenario.faults[i].is_faulty() {
                continue;
            }
            assert_eq!(
                sim.report.decisions[i],
                net.decisions[i],
                "process {i} diverged across runtimes on {}",
                scenario.describe()
            );
            assert_eq!(sim.report.decisions[i], Some(unanimous));
        }
        compared += 1;
    }
}

/// Satellite: the simple-majority variant's measured expected phases under
/// balanced inputs stay below the paper's eq. (13) bound (< 7), and within
/// a shape tolerance of the collapsed chain's own prediction. The collapsed
/// chain is pessimistic by construction (stochastic dominance), so the
/// simulation must come in *under* it; "within tolerance" guards against
/// the simulation being suspiciously fast (a broken phase counter) or the
/// model being wildly off.
#[test]
fn simple_variant_phase_counts_respect_eq13_within_tolerance() {
    let n = 12;
    let k = 3; // the protocol's maximal decidable k = ⌊(n−1)/3⌋
    let trials = 80u64;

    let mut total_phases = 0.0f64;
    let mut decided_runs = 0u64;
    for trial in 0..trials {
        let scenario = Scenario {
            proto: ProtoKind::Simple,
            n,
            k,
            seed: 0x51D_BA5E ^ (trial * 0x9E37_79B9),
            inputs: (0..n).map(|i| Value::from(i % 2 == 0)).collect(),
            faults: vec![FaultSpec::Correct; n],
            sched: SchedSpec::Fair(OrderSpec::Random),
            step_limit: 8_000_000,
            inject: None,
        };
        let out = run_sim(&scenario);
        assert_eq!(
            out.report.status,
            RunStatus::Stopped,
            "trial {trial} failed to converge"
        );
        let phases: Vec<u64> = out
            .report
            .decision_phases
            .iter()
            .map(|p| p.expect("every process decided"))
            .collect();
        total_phases += phases.iter().sum::<u64>() as f64 / phases.len() as f64;
        decided_runs += 1;
    }
    let measured = total_phases / decided_runs as f64;

    // The headline claim: measured mean phases below eq. (13)'s < 7 bound.
    let bound = collapsed::headline_bound(n);
    assert!(bound < 7.0, "eq. (13) bound must itself be < 7: {bound}");
    assert!(
        measured < bound,
        "measured {measured} phases ≥ eq. (13) bound {bound}"
    );

    // Cross-check against the collapsed chain's numeric prediction: the
    // collapse only slows the chain, so the measurement sits below it — but
    // both must stay in the same small ballpark.
    let predicted = collapsed::expected_phases_collapsed(n, collapsed::paper_l());
    assert!(
        measured < predicted * 3.0 + 3.0,
        "measured {measured} far above collapsed prediction {predicted}"
    );
    assert!(
        predicted < measured * 8.0 + 8.0,
        "collapsed prediction {predicted} implausibly far above measured {measured}"
    );
}
