//! Self-contained repro artifacts.
//!
//! An artifact is one file: a header line describing the scenario and the
//! violation classes it exhibits, followed by the run's full JSONL trace.
//! Everything needed to re-execute the counterexample travels in the
//! header (protocol, n, k, seed, inputs, faults, scheduler, injection), so
//! `btfuzz --replay <file>` can re-run the simulation from scratch and
//! confirm both the violations *and* the byte-identical trace. The trace
//! half additionally feeds [`obs::schedule_of`], which turns the recorded
//! `deliver` lines into a [`ScriptedScheduler`](simnet::scheduler::ScriptedScheduler)
//! script — the same offline-replay path the observability layer uses.

use obs::json::Json;

use crate::exec::{netstack_fault_plan, run_sim};
use crate::invariants::{check, classes, Violation};
use crate::scenario::Scenario;

/// Artifact format version; bump on incompatible header changes.
const VERSION: u64 = 1;

/// A parsed repro artifact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Repro {
    /// The counterexample scenario.
    pub scenario: Scenario,
    /// Violation classes the scenario exhibited when recorded.
    pub classes: Vec<String>,
    /// The recorded JSONL trace (everything after the header line).
    pub trace: String,
}

/// Renders a repro artifact for a violating run.
#[must_use]
pub fn render(scenario: &Scenario, violations: &[Violation], trace: &str) -> String {
    let header = Json::Obj(vec![
        ("kind".into(), Json::str("btfuzz-repro")),
        ("version".into(), Json::num(VERSION)),
        ("scenario".into(), scenario.to_json()),
        (
            "violations".into(),
            Json::Arr(classes(violations).into_iter().map(Json::str).collect()),
        ),
        (
            "detail".into(),
            Json::Arr(
                violations
                    .iter()
                    .map(|v| Json::str(v.to_string()))
                    .collect(),
            ),
        ),
        // Informational: how the same scenario maps onto the socket
        // runtime (`netstack::FaultPlan` spec string, parseable via
        // `FaultPlan::from_str`).
        (
            "netstack_fault_plan".into(),
            Json::str(netstack_fault_plan(scenario).to_string()),
        ),
    ]);
    let mut out = header.render();
    out.push('\n');
    out.push_str(trace);
    if !out.ends_with('\n') {
        out.push('\n');
    }
    out
}

/// Parses an artifact produced by [`render`].
///
/// # Errors
///
/// Returns a message naming the first malformed header field.
pub fn parse(text: &str) -> Result<Repro, String> {
    let (first, rest) = text
        .split_once('\n')
        .ok_or("artifact needs a header line and a trace")?;
    let header = Json::parse(first).map_err(|e| format!("bad header: {}", e.message))?;
    match header.get("kind").and_then(Json::as_str) {
        Some("btfuzz-repro") => {}
        other => return Err(format!("not a btfuzz repro (kind {other:?})")),
    }
    match header.get("version").and_then(Json::as_u64) {
        Some(VERSION) => {}
        other => return Err(format!("unsupported artifact version {other:?}")),
    }
    let scenario = Scenario::from_json(header.get("scenario").ok_or("artifact needs a scenario")?)?;
    let class_list = match header.get("violations") {
        Some(Json::Arr(items)) => items
            .iter()
            .map(|i| {
                i.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| "violations must be strings".to_string())
            })
            .collect::<Result<Vec<_>, _>>()?,
        _ => return Err("artifact needs a violations array".into()),
    };
    Ok(Repro {
        scenario,
        classes: class_list,
        trace: rest.to_string(),
    })
}

/// Re-executes a parsed artifact and confirms it reproduces: the fresh run
/// must exhibit exactly the recorded violation classes *and* a
/// byte-identical JSONL trace.
///
/// # Errors
///
/// Returns a message describing the first divergence.
pub fn verify_replay(repro: &Repro) -> Result<(), String> {
    let out = run_sim(&repro.scenario);
    let trace = obs::parse_trace(&out.trace).map_err(|e| format!("fresh trace: {}", e.message))?;
    let violations = check(&repro.scenario, &out.report, &trace);
    let fresh: Vec<String> = classes(&violations)
        .into_iter()
        .map(str::to_string)
        .collect();
    if fresh != repro.classes {
        return Err(format!(
            "violation classes diverged: recorded {:?}, replayed {:?}",
            repro.classes, fresh
        ));
    }
    if out.trace != repro.trace {
        return Err("trace diverged from the recorded artifact".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use simnet::Value;

    use super::*;
    use crate::scenario::{FaultSpec, Injection, OrderSpec, ProtoKind, SchedSpec};

    /// Finds the first seed whose ablated run actually violates; the
    /// search is deterministic, so tests built on it are stable.
    fn violating_scenario() -> Scenario {
        let mut scenario = Scenario {
            proto: ProtoKind::FailStop,
            n: 4,
            k: 1,
            seed: 0,
            inputs: vec![Value::Zero, Value::One, Value::One, Value::One],
            faults: vec![FaultSpec::Correct; 4],
            sched: SchedSpec::Fair(OrderSpec::Random),
            step_limit: 200_000,
            inject: Some(Injection::WeakenFailStop {
                witness_slack: 100,
                decide_slack: 100,
            }),
        };
        for seed in 0..500 {
            scenario.seed = seed;
            let out = run_sim(&scenario);
            let trace = obs::parse_trace(&out.trace).expect("trace parses");
            if !check(&scenario, &out.report, &trace).is_empty() {
                return scenario;
            }
        }
        panic!("no seed below 500 violates — injection lost its teeth");
    }

    #[test]
    fn artifacts_round_trip_and_replay() {
        let scenario = violating_scenario();
        let out = run_sim(&scenario);
        let trace = obs::parse_trace(&out.trace).expect("trace parses");
        let violations = check(&scenario, &out.report, &trace);
        assert!(!violations.is_empty(), "injection must violate");

        let text = render(&scenario, &violations, &out.trace);
        let repro = parse(&text).expect("artifact parses");
        assert_eq!(repro.scenario, scenario);
        assert_eq!(
            repro.classes,
            classes(&violations)
                .into_iter()
                .map(str::to_string)
                .collect::<Vec<_>>()
        );
        verify_replay(&repro).expect("replay reproduces");
    }

    #[test]
    fn replay_detects_a_tampered_artifact() {
        let scenario = violating_scenario();
        let out = run_sim(&scenario);
        let trace = obs::parse_trace(&out.trace).expect("trace parses");
        let violations = check(&scenario, &out.report, &trace);
        let text = render(&scenario, &violations, &out.trace);
        let mut repro = parse(&text).expect("artifact parses");
        repro.scenario.seed ^= 1;
        assert!(verify_replay(&repro).is_err(), "seed tamper must be caught");
    }

    #[test]
    fn parse_rejects_foreign_headers() {
        assert!(parse("{\"kind\":\"something-else\"}\n").is_err());
        assert!(parse("not json\n{}").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn recorded_trace_feeds_the_scripted_replay_path() {
        let scenario = violating_scenario();
        let out = run_sim(&scenario);
        let trace = obs::parse_trace(&out.trace).expect("trace parses");
        let violations = check(&scenario, &out.report, &trace);
        let text = render(&scenario, &violations, &out.trace);
        let repro = parse(&text).expect("artifact parses");

        let lines = obs::parse_trace(&repro.trace).expect("recorded trace parses");
        let schedule = obs::schedule_of(&lines);
        assert!(!schedule.is_empty(), "trace carries a delivery schedule");
        let replayed = crate::exec::run_sim_scheduled(&repro.scenario, Some(schedule));
        assert_eq!(replayed.trace, repro.trace, "scripted replay is exact");
    }
}
