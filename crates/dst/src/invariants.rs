//! The invariant suite every fuzzed run is checked against.
//!
//! Each check is a property the paper proves for the configured resilience
//! bound, so any hit is a real counterexample, not flakiness:
//!
//! - **agreement** — no two correct processes decide different values
//!   (Theorems 1/2/3);
//! - **validity** — with unanimous correct inputs `v`, any correct decision
//!   is `v` (the paper's nontriviality clause);
//! - **convergence** — generated scenarios keep enough live senders for
//!   the quotas, so every correct process must eventually decide;
//! - **threshold conformance** — every `witness_reached` trace event
//!   carries Fig. 1's cardinality `> n/2`, and every `echo_accepted`
//!   event carries Fig. 2's `> (n+k)/2` echo count. This is how the
//!   fuzzer catches a protocol that "decides" by cutting corners, e.g. an
//!   echo threshold ablated down to `n/3`.

use std::fmt;

use obs::TraceLine;
use simnet::{Event, ProtocolEvent, RunReport, RunStatus, Value};

use crate::scenario::Scenario;

/// A concrete invariant breach found in one run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// Two correct processes decided different values.
    Disagreement {
        /// First process and its decision.
        a: (usize, Value),
        /// Second process and its conflicting decision.
        b: (usize, Value),
    },
    /// A correct process decided against a unanimous correct input.
    ValidityBroken {
        /// The offending process.
        pid: usize,
        /// What it decided.
        decided: Value,
        /// The unanimous input it should have decided.
        unanimous: Value,
    },
    /// The run ended without all correct processes deciding.
    NoConvergence {
        /// The terminal status (`Quiescent` or `StepLimitReached`).
        status: RunStatus,
    },
    /// A witness event fired at cardinality `≤ n/2` (Fig. 1 requires a
    /// strict majority).
    WitnessBelowMajority {
        /// The observing process.
        pid: usize,
        /// The phase of the bogus witness.
        phase: u64,
        /// The sub-majority cardinality it reported.
        cardinality: usize,
    },
    /// An echo acceptance fired at `≤ (n+k)/2` echoes (Fig. 2 requires a
    /// strict `(n+k)/2` quorum).
    EchoBelowQuorum {
        /// The accepting process.
        pid: usize,
        /// The phase of the bogus acceptance.
        phase: u64,
        /// The sub-quorum echo count it reported.
        echoes: usize,
    },
    /// A node observed a peer re-send different bytes under an
    /// already-used sequence number — a crash-restart that failed the
    /// log-before-send invariant and turned into equivocation.
    Equivocation {
        /// The observing process (the victim, not the equivocator).
        pid: usize,
        /// How many conflicting re-sends it saw.
        count: u64,
    },
    /// A storage fault was injected into a node's WAL but no boot ever
    /// reported the log as unsafely damaged — the corruption detector
    /// replayed poisoned state as if it were clean.
    CorruptionUndetected {
        /// The node whose WAL carried the injected fault.
        node: usize,
    },
    /// A node detected its WAL as unsafely damaged (so it booted
    /// amnesiac) but never completed a quorum state transfer — the run
    /// ended with the victim still outside the cluster.
    TransferIncomplete {
        /// The amnesiac node.
        node: usize,
    },
}

impl Violation {
    /// Stable short name for the violation's class; shrinking preserves
    /// the class set, not the exact instance.
    #[must_use]
    pub fn class(&self) -> &'static str {
        match self {
            Violation::Disagreement { .. } => "disagreement",
            Violation::ValidityBroken { .. } => "validity",
            Violation::NoConvergence { .. } => "no-convergence",
            Violation::WitnessBelowMajority { .. } => "witness-threshold",
            Violation::EchoBelowQuorum { .. } => "echo-threshold",
            Violation::Equivocation { .. } => "equivocation",
            Violation::CorruptionUndetected { .. } => "corruption-undetected",
            Violation::TransferIncomplete { .. } => "transfer-incomplete",
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Disagreement { a, b } => write!(
                f,
                "disagreement: p{} decided {} but p{} decided {}",
                a.0, a.1, b.0, b.1
            ),
            Violation::ValidityBroken {
                pid,
                decided,
                unanimous,
            } => write!(
                f,
                "validity: p{pid} decided {decided} against unanimous input {unanimous}"
            ),
            Violation::NoConvergence { status } => {
                write!(f, "no convergence: run ended {status:?} before all correct decided")
            }
            Violation::WitnessBelowMajority {
                pid,
                phase,
                cardinality,
            } => write!(
                f,
                "witness threshold: p{pid} saw a witness at cardinality {cardinality} in phase {phase} (needs > n/2)"
            ),
            Violation::EchoBelowQuorum { pid, phase, echoes } => write!(
                f,
                "echo threshold: p{pid} accepted at {echoes} echoes in phase {phase} (needs > (n+k)/2)"
            ),
            Violation::Equivocation { pid, count } => write!(
                f,
                "equivocation: p{pid} observed {count} conflicting re-send(s) — a restarted \
                 node broke the log-before-send invariant"
            ),
            Violation::CorruptionUndetected { node } => write!(
                f,
                "corruption undetected: p{node}'s WAL carried an injected storage fault but \
                 no boot flagged the log as unsafely damaged"
            ),
            Violation::TransferIncomplete { node } => write!(
                f,
                "transfer incomplete: p{node} booted amnesiac but never completed a quorum \
                 state transfer"
            ),
        }
    }
}

/// Turns per-node equivocation counters (as reported by a netstack
/// cluster) into violations — one per observing node with a nonzero
/// count. Simulated runs cannot equivocate by construction, so this
/// check only has teeth on the socket runtime under crash-restarts.
#[must_use]
pub fn check_equivocations(observed: &[u64]) -> Vec<Violation> {
    observed
        .iter()
        .enumerate()
        .filter(|(_, &count)| count > 0)
        .map(|(pid, &count)| Violation::Equivocation { pid, count })
        .collect()
}

/// Checks a storage-fault run's recovery observables: the injected WAL
/// fault must have been *detected* (at least one boot counted an unsafely
/// damaged log) and *healed* (at least one quorum state transfer
/// completed). Both counters are cluster-lifetime sums across node
/// incarnations, so a clean first boot followed by a corrupt reopen still
/// registers.
#[must_use]
pub fn check_storage(corruptions: u64, transfers: u64, victim: usize) -> Vec<Violation> {
    let mut out = Vec::new();
    if corruptions == 0 {
        out.push(Violation::CorruptionUndetected { node: victim });
    }
    if transfers == 0 {
        out.push(Violation::TransferIncomplete { node: victim });
    }
    out
}

/// Sorted, deduplicated class names — the shrinker's equivalence key.
#[must_use]
pub fn classes(violations: &[Violation]) -> Vec<&'static str> {
    let mut names: Vec<&'static str> = violations.iter().map(Violation::class).collect();
    names.sort_unstable();
    names.dedup();
    names
}

/// Checks every invariant against one run's report and (optionally) its
/// parsed trace. Returns all breaches found; empty means the run conformed.
#[must_use]
pub fn check(scenario: &Scenario, report: &RunReport, trace: &[TraceLine]) -> Vec<Violation> {
    let mut out = Vec::new();
    let correct: Vec<usize> = (0..scenario.n)
        .filter(|&i| !scenario.faults[i].is_faulty())
        .collect();

    // Agreement: first decided correct process vs every later one.
    let mut first: Option<(usize, Value)> = None;
    for &i in &correct {
        if let Some(v) = report.decisions[i] {
            match first {
                None => first = Some((i, v)),
                Some((j, w)) if w != v => {
                    out.push(Violation::Disagreement {
                        a: (j, w),
                        b: (i, v),
                    });
                }
                Some(_) => {}
            }
        }
    }

    // Validity under unanimous correct inputs.
    if let Some(unanimous) = scenario.unanimous_input() {
        for &i in &correct {
            if let Some(decided) = report.decisions[i] {
                if decided != unanimous {
                    out.push(Violation::ValidityBroken {
                        pid: i,
                        decided,
                        unanimous,
                    });
                }
            }
        }
    }

    // Convergence: the generator keeps scenarios live, so a non-`Stopped`
    // end (correct processes left undecided) is a liveness counterexample.
    if report.status != RunStatus::Stopped {
        out.push(Violation::NoConvergence {
            status: report.status,
        });
    }

    // Threshold conformance from the trace. Only correct processes are
    // held to the thresholds — an adversary may log anything.
    for line in trace {
        if let TraceLine::Event(Event::Protocol { pid, event, .. }) = line {
            let pid = pid.index();
            if scenario.faults.get(pid).is_some_and(|f| f.is_faulty()) {
                continue;
            }
            match *event {
                ProtocolEvent::WitnessReached {
                    phase, cardinality, ..
                } if 2 * cardinality <= scenario.n => {
                    out.push(Violation::WitnessBelowMajority {
                        pid,
                        phase,
                        cardinality,
                    });
                }
                ProtocolEvent::EchoAccepted { phase, echoes, .. }
                    if 2 * echoes <= scenario.n + scenario.k =>
                {
                    out.push(Violation::EchoBelowQuorum { pid, phase, echoes });
                }
                _ => {}
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use prng::Prng;

    use super::*;
    use crate::exec::run_sim;
    use crate::scenario::Scenario;

    #[test]
    fn clean_generated_runs_have_no_violations() {
        let mut rng = Prng::seed_from_u64(0xC1EA);
        for _ in 0..25 {
            let s = Scenario::generate(&mut rng);
            let out = run_sim(&s);
            let trace = obs::parse_trace(&out.trace).expect("trace parses");
            let violations = check(&s, &out.report, &trace);
            assert!(
                violations.is_empty(),
                "unexpected violations {violations:?} in {}",
                s.describe()
            );
        }
    }

    #[test]
    fn classes_sort_and_dedup() {
        let vs = vec![
            Violation::NoConvergence {
                status: RunStatus::Quiescent,
            },
            Violation::Disagreement {
                a: (0, Value::Zero),
                b: (1, Value::One),
            },
            Violation::Disagreement {
                a: (0, Value::Zero),
                b: (2, Value::One),
            },
        ];
        assert_eq!(classes(&vs), vec!["disagreement", "no-convergence"]);
    }
}
