//! The fuzz loop: draw scenarios, run them, check invariants, shrink and
//! package the first counterexample.
//!
//! Two modes share the loop:
//!
//! - **clean** (default): scenarios are drawn as generated; any violation
//!   is a bug in the tree. Every `netstack_every`-th clean, injection-free,
//!   unanimous-input scenario is additionally run over loopback TCP and
//!   held to the same decision properties — a divergence between runtimes
//!   is reported like any other finding.
//! - **inject**: every scenario is rewritten to run the deliberately
//!   ablated fail-stop protocol with split inputs. The harness must find a
//!   violation quickly, shrink it, and produce a replayable artifact —
//!   this is the fuzzer's own end-to-end self test.

use std::time::{Duration, Instant};

use prng::Prng;
use simnet::Value;

use crate::artifact;
use crate::exec::{run_netstack, run_netstack_recovering, run_sim};
use crate::invariants::{check, check_equivocations, classes, Violation};
use crate::scenario::{Injection, ProtoKind, Scenario};
use crate::shrink::{shrink, Shrunk, DEFAULT_SHRINK_RUNS};

/// What kind of counterexample the fuzzer found.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FindingKind {
    /// A simulated run broke the invariant suite.
    SimViolation,
    /// The socket runtime diverged from the decision properties on a
    /// scenario the simulator ran clean.
    NetstackDivergence,
}

/// The first counterexample found, fully packaged.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Which runtime misbehaved.
    pub kind: FindingKind,
    /// Zero-based fuzz case number (useful with the master seed).
    pub case: u64,
    /// The scenario as originally drawn.
    pub scenario: Scenario,
    /// Violations of the original scenario.
    pub violations: Vec<Violation>,
    /// The shrunk counterexample (simulated findings only — netstack
    /// divergence is wall-clock dependent and not shrunk).
    pub shrunk: Option<Shrunk>,
    /// Self-contained repro artifact (header + JSONL trace) for the
    /// minimal scenario.
    pub artifact: String,
}

/// Fuzz loop configuration.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Master seed: determines every scenario drawn.
    pub seed: u64,
    /// Wall-clock budget; the loop stops at the first case past it.
    pub budget: Option<Duration>,
    /// Hard cap on cases (applies alongside the budget).
    pub max_cases: u64,
    /// Whether to cross-check scenarios on the socket runtime.
    pub netstack: bool,
    /// Run netstack on every this-many-th eligible case.
    pub netstack_every: u64,
    /// Per-cluster verdict deadline for netstack runs.
    pub netstack_timeout: Duration,
    /// Deliberate defect to inject into every scenario (self-test mode).
    pub inject: Option<Injection>,
    /// Probe budget for the shrinker.
    pub shrink_runs: usize,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 0xB70F_2261,
            budget: None,
            max_cases: 500,
            netstack: true,
            netstack_every: 16,
            netstack_timeout: Duration::from_secs(30),
            inject: None,
            shrink_runs: DEFAULT_SHRINK_RUNS,
        }
    }
}

/// Outcome of a fuzz session.
#[derive(Clone, Debug)]
pub struct FuzzOutcome {
    /// Simulated cases executed.
    pub cases: u64,
    /// Loopback-cluster cross-checks executed.
    pub netstack_runs: u64,
    /// The first counterexample, if any.
    pub finding: Option<Finding>,
}

/// Rewrites a drawn scenario for injection mode: the ablated fail-stop
/// protocol with a lone dissenting input, so the planted bug surfaces
/// within a handful of cases instead of thousands.
///
/// The input shape matters: the ablated decision loop scans values in a
/// fixed order, so with *balanced* split inputs every quota window
/// contains the preferred value and the broken protocol accidentally
/// agrees. One `Zero` among `One`s gives each process a real chance of a
/// window with and without the dissent — a disagreement.
fn apply_injection(mut scenario: Scenario, inject: Injection) -> Scenario {
    scenario.proto = ProtoKind::FailStop;
    scenario.inject = Some(inject);
    scenario.inputs = vec![Value::One; scenario.n];
    let dissenter = (0..scenario.n)
        .find(|&i| !scenario.faults[i].is_faulty())
        .expect("generator leaves a correct majority");
    scenario.inputs[dissenter] = Value::Zero;
    scenario
}

/// Packages a violating scenario: shrink it, re-run the minimum for its
/// trace, and render the artifact.
fn package(
    case: u64,
    scenario: Scenario,
    violations: Vec<Violation>,
    shrink_runs: usize,
) -> Finding {
    let target = classes(&violations);
    let shrunk = shrink(&scenario, &target, shrink_runs);
    let minimal_out = run_sim(&shrunk.scenario);
    let artifact = artifact::render(&shrunk.scenario, &shrunk.violations, &minimal_out.trace);
    Finding {
        kind: FindingKind::SimViolation,
        case,
        scenario,
        violations,
        shrunk: Some(shrunk),
        artifact,
    }
}

/// Runs the fuzz loop until a finding, the case cap, or the wall-clock
/// budget — whichever comes first. `progress` receives occasional
/// human-readable status lines.
pub fn fuzz(config: &FuzzConfig, mut progress: impl FnMut(&str)) -> FuzzOutcome {
    let started = Instant::now();
    let mut rng = Prng::seed_from_u64(config.seed);
    let mut netstack_runs = 0u64;
    let mut eligible = 0u64;

    for case in 0..config.max_cases {
        if let Some(budget) = config.budget {
            if started.elapsed() >= budget {
                progress(&format!("budget exhausted after {case} cases"));
                return FuzzOutcome {
                    cases: case,
                    netstack_runs,
                    finding: None,
                };
            }
        }

        let mut scenario = Scenario::generate(&mut rng);
        if let Some(inject) = config.inject {
            scenario = apply_injection(scenario, inject);
        }

        let out = run_sim(&scenario);
        let trace = match obs::parse_trace(&out.trace) {
            Ok(lines) => lines,
            Err(e) => {
                // A trace the sink wrote but the parser rejects is itself a
                // harness bug; surface it loudly rather than skipping.
                panic!("case {case}: unparseable trace: {}", e.message);
            }
        };
        let violations = check(&scenario, &out.report, &trace);
        if !violations.is_empty() {
            progress(&format!(
                "case {case}: {} violation(s) [{}] in {}",
                violations.len(),
                classes(&violations).join(", "),
                scenario.describe()
            ));
            let finding = package(case, scenario, violations, config.shrink_runs);
            return FuzzOutcome {
                cases: case + 1,
                netstack_runs,
                finding: Some(finding),
            };
        }

        // Cross-runtime conformance: unanimous clean scenarios must decide
        // the unanimous value on the socket runtime too. Alternating
        // cross-checks add a seed-derived crash-restart schedule: a
        // correct node is SIGKILL-equivalent killed mid-run and restarted
        // from its WAL, and the run must *still* satisfy the decision
        // properties — plus observe zero equivocations.
        if config.netstack && scenario.inject.is_none() && scenario.unanimous_input().is_some() {
            eligible += 1;
            if eligible % config.netstack_every == 1 {
                let with_crash = (eligible / config.netstack_every) % 2 == 1;
                let outcome = if with_crash {
                    let wal_dir = std::env::temp_dir()
                        .join(format!("btfuzz-wal-{}-{case}", std::process::id()));
                    let _ = std::fs::remove_dir_all(&wal_dir);
                    let out = run_netstack_recovering(&scenario, config.netstack_timeout, &wal_dir);
                    let _ = std::fs::remove_dir_all(&wal_dir);
                    out.map(|o| {
                        let mut violations = check(&scenario, &o.report, &[]);
                        violations.extend(check_equivocations(&o.equivocations));
                        (o.report, violations)
                    })
                } else {
                    run_netstack(&scenario, config.netstack_timeout)
                        .map(|report| (report.clone(), check(&scenario, &report, &[])))
                };
                if let Some((_report, net_violations)) = outcome {
                    netstack_runs += 1;
                    if !net_violations.is_empty() {
                        progress(&format!(
                            "case {case}: netstack diverged [{}] in {}",
                            classes(&net_violations).join(", "),
                            scenario.describe()
                        ));
                        let artifact = artifact::render(&scenario, &net_violations, &out.trace);
                        return FuzzOutcome {
                            cases: case + 1,
                            netstack_runs,
                            finding: Some(Finding {
                                kind: FindingKind::NetstackDivergence,
                                case,
                                scenario,
                                violations: net_violations,
                                shrunk: None,
                                artifact,
                            }),
                        };
                    }
                }
            }
        }

        if (case + 1) % 100 == 0 {
            progress(&format!(
                "{} cases clean ({netstack_runs} netstack cross-checks)",
                case + 1
            ));
        }
    }

    FuzzOutcome {
        cases: config.max_cases,
        netstack_runs,
        finding: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The unmodified tree must survive a decent clean sweep: this is the
    /// fuzzer's steady-state contract (and the reason a CI hit is a bug).
    #[test]
    fn clean_tree_survives_a_fuzz_sweep() {
        let config = FuzzConfig {
            max_cases: 60,
            netstack: false, // covered by the conformance integration test
            ..FuzzConfig::default()
        };
        let outcome = fuzz(&config, |_| {});
        assert_eq!(outcome.cases, 60);
        assert!(
            outcome.finding.is_none(),
            "clean tree violated: {:?}",
            outcome.finding
        );
    }

    /// The end-to-end self test the issue demands: plant a broken quorum
    /// rule, and the fuzzer must find it, shrink it, and emit an artifact
    /// that replays deterministically.
    #[test]
    fn injected_defect_is_found_shrunk_and_replayable() {
        let config = FuzzConfig {
            max_cases: 50,
            netstack: false,
            inject: Some(Injection::WeakenFailStop {
                witness_slack: 100,
                decide_slack: 100,
            }),
            ..FuzzConfig::default()
        };
        let outcome = fuzz(&config, |_| {});
        let finding = outcome.finding.expect("injected defect must be found");
        assert_eq!(finding.kind, FindingKind::SimViolation);
        let shrunk = finding.shrunk.as_ref().expect("sim findings shrink");
        assert!(shrunk.scenario.n <= finding.scenario.n);
        assert!(
            shrunk.scenario.faults.iter().all(|f| !f.is_faulty()),
            "minimal repro should not need faults: {:?}",
            shrunk.scenario.faults
        );

        let repro = artifact::parse(&finding.artifact).expect("artifact parses");
        artifact::verify_replay(&repro).expect("artifact replays deterministically");
    }

    /// Same master seed ⇒ same finding, bit for bit — the property that
    /// makes a CI failure reproducible on a laptop.
    #[test]
    fn findings_are_deterministic_in_the_master_seed() {
        let config = FuzzConfig {
            max_cases: 50,
            netstack: false,
            inject: Some(Injection::WeakenFailStop {
                witness_slack: 100,
                decide_slack: 100,
            }),
            ..FuzzConfig::default()
        };
        let a = fuzz(&config, |_| {});
        let b = fuzz(&config, |_| {});
        let (fa, fb) = (a.finding.expect("found"), b.finding.expect("found"));
        assert_eq!(fa.case, fb.case);
        assert_eq!(fa.scenario, fb.scenario);
        assert_eq!(fa.artifact, fb.artifact);
    }
}
