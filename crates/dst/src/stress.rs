//! The netstack stress leg: large loopback clusters under crash-restart
//! and partition faults — scale testing for the event-driven runtime.
//!
//! The per-case fuzz loop ([`crate::fuzz`]) cross-checks small scenarios
//! (`n ≤ 8`) against the socket runtime; this leg instead climbs a
//! cluster-size ladder up to `n = 50`, where the single poll-loop thread
//! per node is what makes a run affordable at all (the old
//! thread-per-connection stack needed ~`2 + 2(n−1)` threads per node —
//! about 5000 OS threads for one 50-node case). Every case is a *short
//! schedule*: fail-stop with `k = 1` and unanimous inputs, so the
//! protocol math stays trivial and the stress lands where it should — on
//! the runtime's `O(n²)` connections, its readiness plumbing, and its
//! recovery path:
//!
//! - a seeded healing **partition** cuts a random minority of the cluster
//!   mid-run (exercising reconnect/backoff and backlog replay at scale);
//! - the seed-derived **crash-restart** schedule from
//!   [`crate::exec::netstack_crash_plan`] kills one correct node and
//!   restarts it from its WAL (exercising listener handoff between event
//!   loops and byte-identical re-sends).
//!
//! Outcomes are held to the same decision properties as every other
//! netstack cross-check, plus zero observed equivocations. A violating
//! scenario is reported with its full JSON so `n`, seed, partition, and
//! crash schedule can be replayed by hand.

use std::time::{Duration, Instant};

use netstack::sockets_available;
use prng::Prng;
use simnet::Value;

use crate::exec::run_netstack_recovering;
use crate::invariants::{check, check_equivocations, classes, Violation};
use crate::scenario::{FaultSpec, ProtoKind, Scenario, SchedSpec};

/// The cluster-size ladder a sweep climbs, one rung per case, wrapping
/// around for long sweeps. Early rungs catch gross breakage cheaply;
/// the top rung is the issue's 50-node target.
pub const STRESS_LADDER: &[usize] = &[8, 16, 25, 34, 50];

/// Stress-leg configuration.
#[derive(Clone, Debug)]
pub struct StressConfig {
    /// Master seed: determines every scenario drawn.
    pub seed: u64,
    /// Wall-clock budget; the sweep stops at the first case past it.
    pub budget: Option<Duration>,
    /// Hard cap on cases (applies alongside the budget).
    pub max_cases: u64,
    /// Per-cluster verdict deadline.
    pub timeout: Duration,
    /// Clamp on the ladder (tests use a low clamp to stay cheap).
    pub max_n: usize,
}

impl Default for StressConfig {
    fn default() -> Self {
        StressConfig {
            seed: 0x57E5_5001,
            budget: None,
            max_cases: STRESS_LADDER.len() as u64,
            timeout: Duration::from_secs(30),
            max_n: 50,
        }
    }
}

/// Outcome of a stress sweep.
#[derive(Clone, Debug)]
pub struct StressOutcome {
    /// Cases executed to completion.
    pub cases: u64,
    /// Largest cluster booted.
    pub largest_n: usize,
    /// Supervisor restarts observed across the sweep (the crash schedule
    /// only fires when the run outlives its kill time, so this can be
    /// below `cases` on a fast machine — but a sweep where it is *zero*
    /// never exercised recovery at all).
    pub restarts: u64,
    /// The first violating scenario, with its violations.
    pub finding: Option<(Scenario, Vec<Violation>)>,
}

/// Draws one stress case of size `n`: fail-stop, `k = 1`, unanimous
/// inputs, all processes correct at the protocol level (the runtime-level
/// crash-restart comes from the seed-derived crash plan), and a healing
/// partition that cuts a random minority.
pub fn stress_scenario(rng: &mut Prng, n: usize) -> Scenario {
    let value = Value::from(rng.coin());
    let size = 1 + rng.index(n / 2);
    let mut left: Vec<usize> = (0..n).collect();
    for i in 0..size {
        let j = i + rng.index(n - i);
        left.swap(i, j);
    }
    left.truncate(size);
    left.sort_unstable();
    Scenario {
        proto: ProtoKind::FailStop,
        n,
        k: 1,
        seed: rng.next_u64(),
        inputs: vec![value; n],
        faults: vec![FaultSpec::Correct; n],
        sched: SchedSpec::Partition {
            left,
            epoch_len: 8 + rng.below_u64(17),
            heal_every: 2,
        },
        step_limit: 200_000,
        inject: None,
    }
}

/// Runs the stress sweep until a finding, the case cap, or the wall-clock
/// budget. Returns `None` when the sandbox forbids loopback sockets (the
/// leg has nothing to test without them). `progress` receives one status
/// line per case.
pub fn fuzz_netstack_stress(
    config: &StressConfig,
    mut progress: impl FnMut(&str),
) -> Option<StressOutcome> {
    if !sockets_available() {
        return None;
    }
    let started = Instant::now();
    let mut rng = Prng::seed_from_u64(config.seed);
    let mut cases = 0u64;
    let mut largest_n = 0;
    let mut restarts = 0u64;

    while cases < config.max_cases {
        if let Some(budget) = config.budget {
            if started.elapsed() >= budget {
                progress(&format!("stress budget exhausted after {cases} cases"));
                break;
            }
        }
        let n = STRESS_LADDER[(cases as usize) % STRESS_LADDER.len()].min(config.max_n);
        let scenario = stress_scenario(&mut rng, n);
        let wal_dir =
            std::env::temp_dir().join(format!("btfuzz-stress-{}-{cases}", std::process::id()));
        let _ = std::fs::remove_dir_all(&wal_dir);
        let case_started = Instant::now();
        let out = run_netstack_recovering(&scenario, config.timeout, &wal_dir)?;
        let _ = std::fs::remove_dir_all(&wal_dir);
        cases += 1;
        largest_n = largest_n.max(n);
        let case_restarts = u64::from(out.restarts.iter().sum::<u32>());
        restarts += case_restarts;

        let mut violations = check(&scenario, &out.report, &[]);
        violations.extend(check_equivocations(&out.equivocations));
        if violations.is_empty() {
            progress(&format!(
                "stress case {cases}: n={n} clean in {:.2?} ({case_restarts} restart(s))",
                case_started.elapsed()
            ));
        } else {
            progress(&format!(
                "stress case {cases}: n={n} violated [{}] in {}",
                classes(&violations).join(", "),
                scenario.describe()
            ));
            return Some(StressOutcome {
                cases,
                largest_n,
                restarts,
                finding: Some((scenario, violations)),
            });
        }
    }

    Some(StressOutcome {
        cases,
        largest_n,
        restarts,
        finding: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The generator's contract: every drawn case is a legal, unanimous,
    /// all-correct fail-stop scenario whose partition cuts a strict
    /// minority — so any violation it reports indicts the runtime.
    #[test]
    fn stress_scenarios_are_unanimous_minority_cut_failstop() {
        let mut rng = Prng::seed_from_u64(42);
        for case in 0..100 {
            let n = STRESS_LADDER[case % STRESS_LADDER.len()];
            let s = stress_scenario(&mut rng, n);
            assert_eq!(s.proto, ProtoKind::FailStop);
            assert_eq!(s.k, 1);
            assert_eq!(s.faulty_count(), 0);
            assert!(s.unanimous_input().is_some(), "{}", s.describe());
            let SchedSpec::Partition { left, .. } = &s.sched else {
                panic!("stress cases partition: {}", s.describe());
            };
            assert!(
                !left.is_empty() && left.len() <= n / 2,
                "cut a nonempty strict minority: {}",
                s.describe()
            );
            assert!(left.windows(2).all(|w| w[0] < w[1]), "sorted, distinct");
        }
    }

    /// Same master seed ⇒ same scenarios, so a stress finding in CI
    /// replays on a laptop from the printed seed.
    #[test]
    fn stress_scenarios_are_deterministic_per_seed() {
        let mut a = Prng::seed_from_u64(7);
        let mut b = Prng::seed_from_u64(7);
        for _ in 0..20 {
            assert_eq!(stress_scenario(&mut a, 16), stress_scenario(&mut b, 16));
        }
    }

    /// One small rung end to end: a real loopback cluster under the
    /// partition + crash-restart schedule must satisfy the decision
    /// properties. (The full ladder is exercised by the budgeted
    /// `btfuzz --netstack-stress` leg in `scripts/check.sh`.)
    #[test]
    fn small_stress_case_runs_clean() {
        let config = StressConfig {
            seed: 0xBEEF,
            max_cases: 1,
            max_n: 8,
            ..StressConfig::default()
        };
        let Some(outcome) = fuzz_netstack_stress(&config, |_| {}) else {
            eprintln!("skipping: loopback sockets unavailable in this sandbox");
            return;
        };
        assert_eq!(outcome.cases, 1);
        assert_eq!(outcome.largest_n, 8);
        assert!(
            outcome.finding.is_none(),
            "clean tree violated under stress: {:?}",
            outcome.finding
        );
    }
}
