//! The fuzzer's unit of work: one fully-specified run.
//!
//! A [`Scenario`] pins down everything a consensus run depends on —
//! protocol, system size, resilience parameter, per-process inputs and
//! faults, scheduler (the §2.1 *schedule* adversary), RNG seed, and an
//! optional deliberate protocol injection — so that executing it twice
//! yields byte-identical traces. Scenarios are drawn from a seeded
//! [`Prng`] under the paper's resilience constraints (so every generated
//! scenario *should* satisfy the invariant suite), serialize to a single
//! JSON object for repro artifacts, and compare by value so shrinking and
//! determinism tests can assert exact equality.

use obs::json::Json;
use prng::Prng;
use simnet::Value;

/// Which protocol a scenario runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtoKind {
    /// Figure 1 fail-stop protocol (`k ≤ ⌊(n−1)/2⌋`).
    FailStop,
    /// §4.1 simple-majority variant (needs `n > 3k` to stay live).
    Simple,
    /// Figure 2 malicious protocol (`k ≤ ⌊(n−1)/3⌋`).
    Malicious,
}

impl ProtoKind {
    /// The resilience bound the *generator* respects for this protocol.
    ///
    /// For the simple variant this is deliberately tighter than the
    /// protocol's own `⌊(n−1)/2⌋` config bound: deciding needs more than
    /// `(n+k)/2` same-value messages, which only `n − k` live senders can
    /// supply when `n > 3k`.
    #[must_use]
    pub fn k_bound(self, n: usize) -> usize {
        match self {
            ProtoKind::FailStop => (n - 1) / 2,
            ProtoKind::Simple | ProtoKind::Malicious => (n - 1) / 3,
        }
    }

    /// Short stable name used in artifacts.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ProtoKind::FailStop => "failstop",
            ProtoKind::Simple => "simple",
            ProtoKind::Malicious => "malicious",
        }
    }

    fn from_name(name: &str) -> Option<Self> {
        match name {
            "failstop" => Some(ProtoKind::FailStop),
            "simple" => Some(ProtoKind::Simple),
            "malicious" => Some(ProtoKind::Malicious),
            _ => None,
        }
    }
}

/// Per-process fault assignment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultSpec {
    /// Follows the protocol.
    Correct,
    /// Dies after the given number of sends (splitting a broadcast).
    CrashAfterSends(u64),
    /// Dies on entering the given phase.
    CrashAtPhase(u64),
    /// Never sends anything (initially dead).
    Silent,
    /// Byzantine two-faced sender (malicious protocol only; the generator
    /// never assigns it elsewhere).
    TwoFaced,
}

impl FaultSpec {
    /// Whether this process ever stops (or never starts) sending — the
    /// count that the liveness constraints below are about.
    #[must_use]
    pub fn is_faulty(self) -> bool {
        !matches!(self, FaultSpec::Correct)
    }

    /// Whether this process's input can honestly enter the system: it
    /// follows the protocol for at least one send before (ever) failing.
    /// A crash-faulty process is not a liar — the messages it does send
    /// carry its real input, so fail-stop validity must account for it.
    /// Silent and zero-send crashes contribute nothing; a two-faced
    /// process's announcements are arbitrary, and the Figure 2 quorums
    /// defend validity against them without counting its input.
    #[must_use]
    pub fn bears_input(self) -> bool {
        match self {
            FaultSpec::Correct | FaultSpec::CrashAtPhase(_) => true,
            FaultSpec::CrashAfterSends(sends) => sends > 0,
            FaultSpec::Silent | FaultSpec::TwoFaced => false,
        }
    }

    fn to_json(self) -> Json {
        match self {
            FaultSpec::Correct => Json::str("correct"),
            FaultSpec::CrashAfterSends(s) => Json::str(format!("crash-after-sends:{s}")),
            FaultSpec::CrashAtPhase(p) => Json::str(format!("crash-at-phase:{p}")),
            FaultSpec::Silent => Json::str("silent"),
            FaultSpec::TwoFaced => Json::str("two-faced"),
        }
    }

    fn from_json(j: &Json) -> Result<Self, String> {
        let s = j.as_str().ok_or("fault must be a string")?;
        if let Some(rest) = s.strip_prefix("crash-after-sends:") {
            let v = rest.parse().map_err(|_| format!("bad sends in {s:?}"))?;
            return Ok(FaultSpec::CrashAfterSends(v));
        }
        if let Some(rest) = s.strip_prefix("crash-at-phase:") {
            let v = rest.parse().map_err(|_| format!("bad phase in {s:?}"))?;
            return Ok(FaultSpec::CrashAtPhase(v));
        }
        match s {
            "correct" => Ok(FaultSpec::Correct),
            "silent" => Ok(FaultSpec::Silent),
            "two-faced" => Ok(FaultSpec::TwoFaced),
            other => Err(format!("unknown fault {other:?}")),
        }
    }
}

/// Which delivery-order flavour a fair scheduler uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OrderSpec {
    /// Uniform random slot (the paper's §2.3 probabilistic assumption).
    Random,
    /// Oldest message first.
    Fifo,
    /// Newest message first.
    Lifo,
}

/// The schedule adversary: which scheduler drives the simulated run.
///
/// Every variant is *reliable* — each keeps delivering (delaying and
/// partitioning only defer), so a generated scenario must always converge
/// and non-convergence is a reportable violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SchedSpec {
    /// Fair scheduling with the given slot order.
    Fair(OrderSpec),
    /// Starves the given victims' deliveries as long as possible.
    Delaying(Vec<usize>),
    /// Alternates a two-sided partition with healing epochs.
    Partition {
        /// Members of the left side.
        left: Vec<usize>,
        /// Steps per partition epoch.
        epoch_len: u64,
        /// Healed epoch frequency (every `heal_every`-th epoch).
        heal_every: u64,
    },
}

impl SchedSpec {
    pub(crate) fn to_json(&self) -> Json {
        match self {
            SchedSpec::Fair(order) => Json::Obj(vec![
                ("kind".into(), Json::str("fair")),
                (
                    "order".into(),
                    Json::str(match order {
                        OrderSpec::Random => "random",
                        OrderSpec::Fifo => "fifo",
                        OrderSpec::Lifo => "lifo",
                    }),
                ),
            ]),
            SchedSpec::Delaying(victims) => Json::Obj(vec![
                ("kind".into(), Json::str("delaying")),
                (
                    "victims".into(),
                    Json::Arr(victims.iter().map(|&v| Json::num(v as u64)).collect()),
                ),
            ]),
            SchedSpec::Partition {
                left,
                epoch_len,
                heal_every,
            } => Json::Obj(vec![
                ("kind".into(), Json::str("partition")),
                (
                    "left".into(),
                    Json::Arr(left.iter().map(|&v| Json::num(v as u64)).collect()),
                ),
                ("epoch_len".into(), Json::num(*epoch_len)),
                ("heal_every".into(), Json::num(*heal_every)),
            ]),
        }
    }

    fn from_json(j: &Json) -> Result<Self, String> {
        let kind = j
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("sched needs a kind")?;
        let indices = |key: &str| -> Result<Vec<usize>, String> {
            match j.get(key) {
                Some(Json::Arr(items)) => items
                    .iter()
                    .map(|i| i.as_usize().ok_or_else(|| format!("bad index in {key}")))
                    .collect(),
                _ => Err(format!("sched needs array {key}")),
            }
        };
        match kind {
            "fair" => {
                let order = match j.get("order").and_then(Json::as_str) {
                    Some("random") => OrderSpec::Random,
                    Some("fifo") => OrderSpec::Fifo,
                    Some("lifo") => OrderSpec::Lifo,
                    other => return Err(format!("bad fair order {other:?}")),
                };
                Ok(SchedSpec::Fair(order))
            }
            "delaying" => Ok(SchedSpec::Delaying(indices("victims")?)),
            "partition" => Ok(SchedSpec::Partition {
                left: indices("left")?,
                epoch_len: j
                    .get("epoch_len")
                    .and_then(Json::as_u64)
                    .ok_or("partition needs epoch_len")?,
                heal_every: j
                    .get("heal_every")
                    .and_then(Json::as_u64)
                    .ok_or("partition needs heal_every")?,
            }),
            other => Err(format!("unknown sched kind {other:?}")),
        }
    }
}

/// A deliberate protocol defect, injected to prove the harness catches it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Injection {
    /// Runs the fail-stop protocol through
    /// [`bt_core::ablation::AblatedFailStop`] with both thresholds lowered
    /// by the given slacks (floored at 1). Large slacks reduce "witness"
    /// to "any message" and "decide" to "one witness" — the classic
    /// broken-quorum bug the fuzzer must find.
    WeakenFailStop {
        /// Subtracted from the paper's `⌊n/2⌋ + 1` witness bar.
        witness_slack: usize,
        /// Subtracted from the paper's `k + 1` decision bar.
        decide_slack: usize,
    },
}

impl Injection {
    fn to_json(self) -> Json {
        match self {
            Injection::WeakenFailStop {
                witness_slack,
                decide_slack,
            } => Json::Obj(vec![
                ("kind".into(), Json::str("weaken-fail-stop")),
                ("witness_slack".into(), Json::num(witness_slack as u64)),
                ("decide_slack".into(), Json::num(decide_slack as u64)),
            ]),
        }
    }

    fn from_json(j: &Json) -> Result<Self, String> {
        match j.get("kind").and_then(Json::as_str) {
            Some("weaken-fail-stop") => Ok(Injection::WeakenFailStop {
                witness_slack: j
                    .get("witness_slack")
                    .and_then(Json::as_usize)
                    .ok_or("injection needs witness_slack")?,
                decide_slack: j
                    .get("decide_slack")
                    .and_then(Json::as_usize)
                    .ok_or("injection needs decide_slack")?,
            }),
            other => Err(format!("unknown injection {other:?}")),
        }
    }
}

/// One fully-specified fuzz case.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Scenario {
    /// Protocol under test.
    pub proto: ProtoKind,
    /// System size.
    pub n: usize,
    /// Resilience parameter.
    pub k: usize,
    /// Seed for the run itself (scheduler randomness, netstack faults).
    pub seed: u64,
    /// Initial value per process.
    pub inputs: Vec<Value>,
    /// Fault per process.
    pub faults: Vec<FaultSpec>,
    /// The schedule adversary.
    pub sched: SchedSpec,
    /// Step budget; hitting it counts as non-convergence.
    pub step_limit: u64,
    /// Deliberate defect, if the harness is self-testing.
    pub inject: Option<Injection>,
}

impl Scenario {
    /// Number of processes that ever stop (or never start) sending.
    #[must_use]
    pub fn faulty_count(&self) -> usize {
        self.faults.iter().filter(|f| f.is_faulty()).count()
    }

    /// The value every input-bearing process starts with, if they are
    /// unanimous — the premise of the paper's validity property.
    ///
    /// Crash-faulty processes that send at least once are counted: they
    /// follow the protocol up to the crash, so their inputs reach the
    /// system honestly, and a decision for such an input is legal even
    /// when all *surviving* processes started with the other value.
    #[must_use]
    pub fn unanimous_input(&self) -> Option<Value> {
        let mut bearing = (0..self.n).filter(|&i| self.faults[i].bears_input());
        let first = self.inputs[bearing.next()?];
        bearing.all(|i| self.inputs[i] == first).then_some(first)
    }

    /// Draws a random scenario under the paper's resilience constraints.
    ///
    /// The generated scenario always has enough live, correct senders for
    /// the chosen protocol to terminate (see [`ProtoKind::k_bound`] and
    /// the per-protocol liveness floor), so a violation reported against
    /// it indicts the implementation, not the scenario.
    pub fn generate(rng: &mut Prng) -> Scenario {
        let proto = match rng.index(3) {
            0 => ProtoKind::FailStop,
            1 => ProtoKind::Simple,
            _ => ProtoKind::Malicious,
        };
        let n = 4 + rng.index(5); // 4..=8
        let k_bound = proto.k_bound(n).max(1);
        let k = 1 + rng.index(k_bound);

        // Liveness floor: how many processes may go quiet. Fail-stop
        // tolerates any k deaths; the quorum protocols additionally need
        // more than (n+k)/2 live senders.
        let max_faulty = match proto {
            ProtoKind::FailStop => k,
            ProtoKind::Simple | ProtoKind::Malicious => k.min(n.saturating_sub(1 + (n + k) / 2)),
        };
        let mut faults = vec![FaultSpec::Correct; n];
        let budget = rng.index(max_faulty + 1);
        let mut assigned = 0;
        while assigned < budget {
            let victim = rng.index(n);
            if faults[victim].is_faulty() {
                continue;
            }
            faults[victim] = match (proto, rng.index(4)) {
                (ProtoKind::Malicious, 3) => FaultSpec::TwoFaced,
                (_, 0) => FaultSpec::CrashAfterSends(rng.below_u64(2 * n as u64 + 1)),
                (_, 1) => FaultSpec::CrashAtPhase(rng.below_u64(3)),
                _ => FaultSpec::Silent,
            };
            assigned += 1;
        }

        let inputs = if rng.coin() {
            vec![Value::from(rng.coin()); n]
        } else {
            (0..n).map(|_| Value::from(rng.coin())).collect()
        };

        let sched = match rng.index(10) {
            0..=3 => SchedSpec::Fair(OrderSpec::Random),
            4 => SchedSpec::Fair(OrderSpec::Fifo),
            5 => SchedSpec::Fair(OrderSpec::Lifo),
            6 | 7 => {
                let count = 1 + rng.index(2.min(n - 1));
                let mut victims: Vec<usize> = Vec::new();
                while victims.len() < count {
                    let v = rng.index(n);
                    if !victims.contains(&v) {
                        victims.push(v);
                    }
                }
                victims.sort_unstable();
                SchedSpec::Delaying(victims)
            }
            _ => {
                let size = 1 + rng.index(n - 1);
                let mut left: Vec<usize> = (0..n).collect();
                // Partial Fisher-Yates: the first `size` entries become a
                // uniform random subset.
                for i in 0..size {
                    let j = i + rng.index(n - i);
                    left.swap(i, j);
                }
                left.truncate(size);
                left.sort_unstable();
                SchedSpec::Partition {
                    left,
                    epoch_len: 8 + rng.below_u64(57),
                    heal_every: 2 + rng.below_u64(4),
                }
            }
        };

        Scenario {
            proto,
            n,
            k,
            seed: rng.next_u64(),
            inputs,
            faults,
            sched,
            step_limit: 200_000,
            inject: None,
        }
    }

    /// Serializes to the artifact JSON object.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("proto".into(), Json::str(self.proto.name())),
            ("n".into(), Json::num(self.n as u64)),
            ("k".into(), Json::num(self.k as u64)),
            ("seed".into(), Json::num(self.seed)),
            (
                "inputs".into(),
                Json::Arr(
                    self.inputs
                        .iter()
                        .map(|v| Json::num(v.index() as u64))
                        .collect(),
                ),
            ),
            (
                "faults".into(),
                Json::Arr(self.faults.iter().map(|f| f.to_json()).collect()),
            ),
            ("sched".into(), self.sched.to_json()),
            ("step_limit".into(), Json::num(self.step_limit)),
            (
                "inject".into(),
                self.inject.map_or(Json::Null, Injection::to_json),
            ),
        ])
    }

    /// Deserializes from the artifact JSON object.
    pub fn from_json(j: &Json) -> Result<Scenario, String> {
        let proto = j
            .get("proto")
            .and_then(Json::as_str)
            .and_then(ProtoKind::from_name)
            .ok_or("scenario needs a proto")?;
        let n = j
            .get("n")
            .and_then(Json::as_usize)
            .ok_or("scenario needs n")?;
        let k = j
            .get("k")
            .and_then(Json::as_usize)
            .ok_or("scenario needs k")?;
        let seed = j
            .get("seed")
            .and_then(Json::as_u64)
            .ok_or("scenario needs seed")?;
        let inputs = match j.get("inputs") {
            Some(Json::Arr(items)) => items
                .iter()
                .map(|i| {
                    i.as_u64()
                        .and_then(|v| match v {
                            0 => Some(Value::Zero),
                            1 => Some(Value::One),
                            _ => None,
                        })
                        .ok_or_else(|| "inputs must be 0/1".to_string())
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("scenario needs inputs".into()),
        };
        let faults = match j.get("faults") {
            Some(Json::Arr(items)) => items
                .iter()
                .map(FaultSpec::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("scenario needs faults".into()),
        };
        let sched = SchedSpec::from_json(j.get("sched").ok_or("scenario needs sched")?)?;
        let step_limit = j
            .get("step_limit")
            .and_then(Json::as_u64)
            .ok_or("scenario needs step_limit")?;
        let inject = match j.get("inject") {
            None | Some(Json::Null) => None,
            Some(inj) => Some(Injection::from_json(inj)?),
        };
        if inputs.len() != n || faults.len() != n {
            return Err(format!("inputs/faults must have length n={n}"));
        }
        Ok(Scenario {
            proto,
            n,
            k,
            seed,
            inputs,
            faults,
            sched,
            step_limit,
            inject,
        })
    }

    /// A compact one-line human description.
    #[must_use]
    pub fn describe(&self) -> String {
        format!(
            "{} n={} k={} seed={:#018x} inputs={:?} faults={:?} sched={:?} inject={:?}",
            self.proto.name(),
            self.n,
            self.k,
            self.seed,
            self.inputs.iter().map(|v| v.index()).collect::<Vec<_>>(),
            self.faults,
            self.sched,
            self.inject,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_respects_resilience_and_liveness_bounds() {
        let mut rng = Prng::seed_from_u64(11);
        for _ in 0..500 {
            let s = Scenario::generate(&mut rng);
            assert!(s.k >= 1 && s.k <= s.proto.k_bound(s.n), "{}", s.describe());
            assert!(s.faulty_count() <= s.k, "{}", s.describe());
            assert_eq!(s.inputs.len(), s.n);
            assert_eq!(s.faults.len(), s.n);
            if matches!(s.proto, ProtoKind::Simple | ProtoKind::Malicious) {
                let live = s.n - s.faulty_count();
                assert!(2 * live > s.n + s.k, "liveness floor: {}", s.describe());
            }
            if s.proto != ProtoKind::Malicious {
                assert!(
                    !s.faults.contains(&FaultSpec::TwoFaced),
                    "two-faced outside malicious: {}",
                    s.describe()
                );
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mut a = Prng::seed_from_u64(77);
        let mut b = Prng::seed_from_u64(77);
        for _ in 0..50 {
            assert_eq!(Scenario::generate(&mut a), Scenario::generate(&mut b));
        }
    }

    #[test]
    fn json_round_trips_generated_scenarios() {
        let mut rng = Prng::seed_from_u64(23);
        for _ in 0..200 {
            let mut s = Scenario::generate(&mut rng);
            if rng.coin() {
                s.inject = Some(Injection::WeakenFailStop {
                    witness_slack: rng.index(9),
                    decide_slack: rng.index(4),
                });
            }
            let j = s.to_json();
            let text = j.render();
            let parsed = Json::parse(&text).expect("renders valid JSON");
            assert_eq!(Scenario::from_json(&parsed).expect("parses"), s);
        }
    }

    #[test]
    fn unanimity_counts_exactly_the_input_bearing_processes() {
        let mut s = Scenario {
            proto: ProtoKind::FailStop,
            n: 3,
            k: 1,
            seed: 0,
            inputs: vec![Value::One, Value::Zero, Value::One],
            faults: vec![FaultSpec::Correct, FaultSpec::Silent, FaultSpec::Correct],
            sched: SchedSpec::Fair(OrderSpec::Random),
            step_limit: 1000,
            inject: None,
        };
        // A silent dissenter's input never enters the system.
        assert_eq!(s.unanimous_input(), Some(Value::One));
        // Nor does a zero-send crasher's.
        s.faults[1] = FaultSpec::CrashAfterSends(0);
        assert_eq!(s.unanimous_input(), Some(Value::One));
        // A crasher that sends even once injects its real input, so the
        // premise of validity no longer holds (found by btfuzz: two crash
        // processes carried the only 1s and the survivors decided 1 —
        // legal fail-stop behaviour, not a violation).
        s.faults[1] = FaultSpec::CrashAfterSends(1);
        assert_eq!(s.unanimous_input(), None);
        s.faults[1] = FaultSpec::CrashAtPhase(2);
        assert_eq!(s.unanimous_input(), None);
        s.faults[1] = FaultSpec::Correct;
        assert_eq!(s.unanimous_input(), None);
    }
}
