//! Scenario execution: one [`Scenario`], two runtimes.
//!
//! [`run_sim`] executes a scenario in the deterministic `simnet` simulator
//! with a JSONL trace attached — same scenario, same bytes, every time.
//! [`run_netstack`] executes the *same* scenario over loopback TCP via
//! `netstack::Cluster`, translating the schedule adversary into the
//! nearest wall-clock link-fault plan. The socket runtime is only
//! reproducible in fault *pattern* (the OS interleaves arrivals), so
//! cross-runtime conformance is judged on decision properties, not traces.

use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use adversary::{Crashing, Silent, TwoFacedMalicious};
use bt_core::ablation::{AblatedFailStop, ThresholdRule};
use bt_core::{Config, FailStop, Malicious, Simple, Termination};
use netstack::{
    sockets_available, Cluster, ClusterOptions, CrashPlan, DiskFault, FaultPlan, NodeFault, Proto,
    RecoveryOptions,
};
use obs::JsonlSink;
use simnet::scheduler::{
    DelayingScheduler, DeliveryOrder, FairScheduler, PartitionScheduler, ScriptedScheduler,
};
use simnet::{Process, ProcessId, Role, RunReport, Scheduler, Selection, SharedSubscriber, Sim};

use crate::scenario::{FaultSpec, Injection, OrderSpec, ProtoKind, Scenario, SchedSpec};

/// A simulated run's results: the report plus its JSONL trace.
#[derive(Debug)]
pub struct SimOutcome {
    /// The engine's run report.
    pub report: RunReport,
    /// The full JSONL trace (`run_start` line, events, `run_end` line).
    pub trace: String,
}

fn pids(indices: &[usize]) -> Vec<ProcessId> {
    indices.iter().map(|&i| ProcessId::new(i)).collect()
}

/// Builds a schedule adversary for an `n`-process simulator run (shared
/// with the multi-slot pipeline, whose scenarios carry the same
/// [`SchedSpec`]).
pub(crate) fn build_scheduler<M: 'static>(n: usize, sched: &SchedSpec) -> Box<dyn Scheduler<M>> {
    match sched {
        SchedSpec::Fair(order) => Box::new(FairScheduler::new().delivery_order(match order {
            OrderSpec::Random => DeliveryOrder::Random,
            OrderSpec::Fifo => DeliveryOrder::Fifo,
            OrderSpec::Lifo => DeliveryOrder::Lifo,
        })),
        SchedSpec::Delaying(victims) => Box::new(DelayingScheduler::new(n, &pids(victims))),
        SchedSpec::Partition {
            left,
            epoch_len,
            heal_every,
        } => Box::new(PartitionScheduler::new(
            n,
            &pids(left),
            *epoch_len,
            *heal_every,
        )),
    }
}

fn run_generic<M: 'static>(
    scenario: &Scenario,
    processes: Vec<Box<dyn Process<Msg = M>>>,
    schedule: Option<Vec<Selection>>,
) -> SimOutcome {
    let sink = Arc::new(Mutex::new(JsonlSink::new()));
    let mut b = Sim::builder();
    for (i, process) in processes.into_iter().enumerate() {
        let role = if scenario.faults[i].is_faulty() {
            Role::Faulty
        } else {
            Role::Correct
        };
        b.process(process, role);
    }
    match schedule {
        // Replays pin the exact recorded interleaving; the fallback lets a
        // schedule recorded under a *shorter* run still finish delivering.
        Some(script) => b.scheduler(Box::new(ScriptedScheduler::with_fallback(script))),
        None => b.scheduler(build_scheduler::<M>(scenario.n, &scenario.sched)),
    };
    b.seed(scenario.seed)
        .step_limit(scenario.step_limit)
        .subscriber(sink.clone() as SharedSubscriber);
    let report = b.build().run();
    let trace = sink.lock().expect("sink lock").contents();
    SimOutcome { report, trace }
}

/// Wraps a correct process according to its fault spec.
fn apply_fault<P>(process: P, fault: FaultSpec) -> Box<dyn Process<Msg = P::Msg>>
where
    P: Process + 'static,
    P::Msg: 'static,
{
    match fault {
        FaultSpec::Correct => Box::new(process),
        FaultSpec::CrashAfterSends(s) => Box::new(Crashing::new(process, CrashPlan::AfterSends(s))),
        FaultSpec::CrashAtPhase(p) => Box::new(Crashing::new(process, CrashPlan::AtPhase(p))),
        // A two-faced process only exists for the malicious message type;
        // the malicious builder intercepts it before reaching here.
        FaultSpec::Silent | FaultSpec::TwoFaced => Box::new(Silent::new()),
    }
}

/// Runs the scenario in the simulator; `schedule`, if given, replays an
/// exact recorded interleaving instead of the scenario's scheduler.
///
/// # Panics
///
/// Panics if the scenario's `(n, k)` violate the protocol's config bound —
/// generated and shrunk scenarios never do.
#[must_use]
pub fn run_sim_scheduled(scenario: &Scenario, schedule: Option<Vec<Selection>>) -> SimOutcome {
    match scenario.proto {
        ProtoKind::FailStop => {
            let config = Config::fail_stop(scenario.n, scenario.k).expect("generator bound");
            let rule = scenario.inject.map(
                |Injection::WeakenFailStop {
                     witness_slack,
                     decide_slack,
                 }| {
                    ThresholdRule::weakened(config, witness_slack, decide_slack)
                },
            );
            let processes = (0..scenario.n)
                .map(|i| match rule {
                    Some(rule) => apply_fault(
                        AblatedFailStop::new(config, rule, scenario.inputs[i]),
                        scenario.faults[i],
                    ),
                    None => apply_fault(
                        FailStop::new(config, scenario.inputs[i]),
                        scenario.faults[i],
                    ),
                })
                .collect();
            run_generic(scenario, processes, schedule)
        }
        ProtoKind::Simple => {
            let config = Config::fail_stop(scenario.n, scenario.k).expect("generator bound");
            let processes = (0..scenario.n)
                .map(|i| apply_fault(Simple::new(config, scenario.inputs[i]), scenario.faults[i]))
                .collect();
            run_generic(scenario, processes, schedule)
        }
        ProtoKind::Malicious => {
            let config = Config::malicious(scenario.n, scenario.k).expect("generator bound");
            let processes = (0..scenario.n)
                .map(|i| -> Box<dyn Process<Msg = bt_core::MaliciousMsg>> {
                    if scenario.faults[i] == FaultSpec::TwoFaced {
                        Box::new(TwoFacedMalicious::new(config))
                    } else {
                        // The §3.3 exit procedure, not the as-written
                        // infinite loop: under a partition schedule a
                        // laggard's inbox otherwise grows without bound
                        // while deciders churn phases forever, and the
                        // random-delivery catch-up time explodes past any
                        // step limit (found by the fuzzer). Wildcard exit
                        // bounds the backlog so convergence is checkable.
                        apply_fault(
                            Malicious::with_termination(
                                config,
                                scenario.inputs[i],
                                Termination::WildcardExit,
                            ),
                            scenario.faults[i],
                        )
                    }
                })
                .collect();
            run_generic(scenario, processes, schedule)
        }
    }
}

/// Runs the scenario in the simulator with its own scheduler.
#[must_use]
pub fn run_sim(scenario: &Scenario) -> SimOutcome {
    run_sim_scheduled(scenario, None)
}

/// The wall-clock fault plan standing in for the scenario's scheduler:
/// fair ⇒ small reorder jitter, delaying ⇒ larger per-message delay,
/// partition ⇒ a real cut that heals. All are delay-only, so the §2.1
/// reliable-channel assumption — and hence termination — is preserved.
#[must_use]
pub fn netstack_fault_plan(scenario: &Scenario) -> FaultPlan {
    match &scenario.sched {
        SchedSpec::Fair(_) => {
            FaultPlan::reliable().with_delay(Duration::ZERO, Duration::from_millis(2))
        }
        SchedSpec::Delaying(_) => {
            FaultPlan::reliable().with_delay(Duration::ZERO, Duration::from_millis(15))
        }
        SchedSpec::Partition { left, .. } => FaultPlan::reliable()
            .with_delay(Duration::ZERO, Duration::from_millis(2))
            .with_partition(scenario.n, left, Duration::from_millis(60)),
    }
}

fn node_fault(fault: FaultSpec) -> NodeFault {
    match fault {
        FaultSpec::Correct => NodeFault::Correct,
        FaultSpec::CrashAfterSends(s) => NodeFault::Crash(CrashPlan::AfterSends(s)),
        FaultSpec::CrashAtPhase(p) => NodeFault::Crash(CrashPlan::AtPhase(p)),
        FaultSpec::Silent => NodeFault::Silent,
        FaultSpec::TwoFaced => NodeFault::TwoFaced,
    }
}

/// Runs the scenario over loopback TCP, or `None` when the sandbox forbids
/// sockets or the scenario carries an injection (the ablated protocol only
/// exists in the simulator).
#[must_use]
pub fn run_netstack(scenario: &Scenario, timeout: Duration) -> Option<RunReport> {
    if !sockets_available() || scenario.inject.is_some() {
        return None;
    }
    let proto = match scenario.proto {
        ProtoKind::FailStop => Proto::FailStop,
        ProtoKind::Simple => Proto::Simple,
        ProtoKind::Malicious => Proto::Malicious,
    };
    let options = ClusterOptions {
        seed: scenario.seed,
        inputs: scenario.inputs.clone(),
        faults: scenario.faults.iter().map(|&f| node_fault(f)).collect(),
        link_fault: netstack_fault_plan(scenario),
        recovery: None,
        admin: false,
    };
    let mut cluster = Cluster::spawn(scenario.n, scenario.k, proto, options, None).ok()?;
    let report = cluster.await_verdict(timeout);
    cluster.shutdown();
    Some(report)
}

/// A netstack run's results when crash-recovery is in play: the report
/// plus the recovery-specific observables the invariant suite checks.
#[derive(Debug)]
pub struct NetOutcome {
    /// The cluster's synthesized run report.
    pub report: RunReport,
    /// Per-node equivocation counters: conflicting re-sends each node
    /// *observed* (must be all-zero on a correct tree).
    pub equivocations: Vec<u64>,
    /// Supervisor restarts performed per node.
    pub restarts: Vec<u32>,
}

/// The deterministic crash-restart schedule for a scenario: one correct
/// node, chosen by seed, killed mid-run and restarted from its WAL. All
/// timing comes from the seed so a CI finding replays on a laptop.
#[must_use]
pub fn netstack_crash_plan(scenario: &Scenario) -> FaultPlan {
    let victim = pick_crash_victim(scenario);
    let kill = Duration::from_millis(20 + (scenario.seed >> 8) % 20);
    let restart = kill + Duration::from_millis(40 + (scenario.seed >> 16) % 40);
    netstack_fault_plan(scenario).with_crash(victim, kill, restart)
}

/// Runs the scenario over loopback TCP with WALs in `wal_dir` and the
/// seed-derived crash-restart schedule: a correct node is killed
/// mid-consensus and restarted from its log by the cluster supervisor.
/// `None` under the same conditions as [`run_netstack`]. The caller owns
/// `wal_dir` (creation and cleanup).
#[must_use]
pub fn run_netstack_recovering(
    scenario: &Scenario,
    timeout: Duration,
    wal_dir: &Path,
) -> Option<NetOutcome> {
    if !sockets_available() || scenario.inject.is_some() {
        return None;
    }
    let proto = match scenario.proto {
        ProtoKind::FailStop => Proto::FailStop,
        ProtoKind::Simple => Proto::Simple,
        ProtoKind::Malicious => Proto::Malicious,
    };
    let options = ClusterOptions {
        seed: scenario.seed,
        inputs: scenario.inputs.clone(),
        faults: scenario.faults.iter().map(|&f| node_fault(f)).collect(),
        link_fault: netstack_crash_plan(scenario),
        recovery: Some(RecoveryOptions {
            wal_dir: wal_dir.to_path_buf(),
            // Exercise both recovery paths across seeds: genesis replay
            // and snapshot-resume.
            snapshot_every: if scenario.seed.is_multiple_of(2) {
                0
            } else {
                8
            },
            max_restarts: 4,
            backoff: Duration::from_millis(5),
        }),
        admin: false,
    };
    let mut cluster = Cluster::spawn(scenario.n, scenario.k, proto, options, None).ok()?;
    let report = cluster.await_verdict(timeout);
    let equivocations = cluster
        .nodes()
        .iter()
        .map(|node| node.equivocations())
        .collect();
    let restarts = cluster.restarts().to_vec();
    cluster.shutdown();
    Some(NetOutcome {
        report,
        equivocations,
        restarts,
    })
}

/// A netstack run's results under an injected storage fault: the usual
/// crash-recovery observables plus the amnesia path's counters and the
/// seed-chosen victim they are judged against.
#[derive(Debug)]
pub struct StorageRun {
    /// The cluster's synthesized run report.
    pub report: RunReport,
    /// Per-node equivocation counters (must be all-zero: an amnesiac
    /// node is muzzled precisely so it cannot contradict its own
    /// forgotten sends).
    pub equivocations: Vec<u64>,
    /// Supervisor restarts performed per node.
    pub restarts: Vec<u32>,
    /// Cluster-lifetime `bt_wal_corruptions_total`: boots that found the
    /// WAL unsafely damaged.
    pub corruptions: u64,
    /// Cluster-lifetime `bt_state_transfers_total`: quorum state
    /// transfers completed by an amnesiac node.
    pub transfers: u64,
    /// The node whose WAL carried the injected fault.
    pub victim: usize,
}

/// The deterministic storage-fault schedule for a scenario: the same
/// seed-chosen correct node and kill/restart timing as
/// [`netstack_crash_plan`], plus a byte flip at offset 8 armed in that
/// node's WAL storage. Offset 8 is the first body byte of the WAL's first
/// record, so the flip lands mid-log — unsafely damaged, never a torn
/// tail — and, because flips apply at open, the fresh boot writes a clean
/// log and only the post-kill reopen sees the damage. Returns the plan
/// and the victim index.
#[must_use]
pub fn netstack_storage_plan(scenario: &Scenario) -> (FaultPlan, usize) {
    let victim = pick_crash_victim(scenario);
    let plan = netstack_crash_plan(scenario).with_disk(victim, DiskFault::Flip { offset: 8 });
    (plan, victim)
}

fn pick_crash_victim(scenario: &Scenario) -> usize {
    let correct: Vec<usize> = (0..scenario.n)
        .filter(|&i| !scenario.faults[i].is_faulty())
        .collect();
    correct[(scenario.seed as usize) % correct.len()]
}

/// Runs the scenario over loopback TCP with the seed-derived
/// crash-restart schedule *and* a storage fault armed in the victim's
/// WAL: the restarted node reopens a corrupted log, must detect it, boot
/// amnesiac, and recover real state by quorum transfer. `None` under the
/// same conditions as [`run_netstack`]. The caller owns `wal_dir`.
#[must_use]
pub fn run_netstack_storage(
    scenario: &Scenario,
    timeout: Duration,
    wal_dir: &Path,
) -> Option<StorageRun> {
    if !sockets_available() || scenario.inject.is_some() {
        return None;
    }
    let proto = match scenario.proto {
        ProtoKind::FailStop => Proto::FailStop,
        ProtoKind::Simple => Proto::Simple,
        ProtoKind::Malicious => Proto::Malicious,
    };
    let (link_fault, victim) = netstack_storage_plan(scenario);
    let options = ClusterOptions {
        seed: scenario.seed,
        inputs: scenario.inputs.clone(),
        faults: scenario.faults.iter().map(|&f| node_fault(f)).collect(),
        link_fault,
        recovery: Some(RecoveryOptions {
            wal_dir: wal_dir.to_path_buf(),
            // No snapshots: the flip must hit protocol records, and the
            // victim's post-transfer WAL should read as a plain adopted
            // boot when inspected by hand.
            snapshot_every: 0,
            max_restarts: 4,
            backoff: Duration::from_millis(5),
        }),
        admin: false,
    };
    let mut cluster = Cluster::spawn(scenario.n, scenario.k, proto, options, None).ok()?;
    let report = cluster.await_verdict(timeout);
    let equivocations = cluster
        .nodes()
        .iter()
        .map(|node| node.equivocations())
        .collect();
    let restarts = cluster.restarts().to_vec();
    let corruptions = cluster.wal_corruptions();
    let transfers = cluster.state_transfers();
    cluster.shutdown();
    Some(StorageRun {
        report,
        equivocations,
        restarts,
        corruptions,
        transfers,
        victim,
    })
}

#[cfg(test)]
mod tests {
    use prng::Prng;
    use simnet::RunStatus;

    use super::*;
    use crate::scenario::Scenario;

    #[test]
    fn generated_scenarios_replay_byte_identically() {
        let mut rng = Prng::seed_from_u64(5);
        for _ in 0..10 {
            let s = Scenario::generate(&mut rng);
            let a = run_sim(&s);
            let b = run_sim(&s);
            assert_eq!(a.trace, b.trace, "nondeterministic trace: {}", s.describe());
            assert_eq!(a.report.decisions, b.report.decisions);
        }
    }

    #[test]
    fn recorded_schedule_replays_to_the_same_decisions() {
        let mut rng = Prng::seed_from_u64(9);
        let s = Scenario::generate(&mut rng);
        let original = run_sim(&s);
        let lines = obs::parse_trace(&original.trace).expect("trace parses");
        let schedule = obs::schedule_of(&lines);
        let replayed = run_sim_scheduled(&s, Some(schedule));
        assert_eq!(original.report.decisions, replayed.report.decisions);
        assert_eq!(original.report.status, replayed.report.status);
    }

    #[test]
    fn crash_restart_cross_check_holds_decision_properties() {
        if !sockets_available() {
            eprintln!("skipping: loopback sockets unavailable in this sandbox");
            return;
        }
        let s = Scenario {
            proto: ProtoKind::FailStop,
            n: 4,
            k: 1,
            seed: 0xD15C,
            inputs: vec![simnet::Value::One; 4],
            faults: vec![FaultSpec::Correct; 4],
            sched: crate::scenario::SchedSpec::Fair(crate::scenario::OrderSpec::Random),
            step_limit: 100_000,
            inject: None,
        };
        let wal_dir = std::env::temp_dir().join(format!("btdst-exec-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&wal_dir);
        let out = run_netstack_recovering(&s, Duration::from_secs(30), &wal_dir)
            .expect("sockets probed available");
        let _ = std::fs::remove_dir_all(&wal_dir);
        assert_eq!(out.report.status, RunStatus::Stopped, "all decided");
        assert!(
            crate::invariants::check(&s, &out.report, &[]).is_empty(),
            "decision properties hold across the crash-restart"
        );
        assert!(
            crate::invariants::check_equivocations(&out.equivocations).is_empty(),
            "no equivocation observed: {:?}",
            out.equivocations
        );
        assert!(
            out.restarts.iter().sum::<u32>() >= 1,
            "the schedule actually restarted someone: {:?}",
            out.restarts
        );
    }

    #[test]
    fn storage_fault_cross_check_detects_and_transfers() {
        if !sockets_available() {
            eprintln!("skipping: loopback sockets unavailable in this sandbox");
            return;
        }
        let s = Scenario {
            proto: ProtoKind::FailStop,
            n: 4,
            k: 1,
            seed: 0x0570_4A6E,
            inputs: vec![simnet::Value::One; 4],
            faults: vec![FaultSpec::Correct; 4],
            sched: crate::scenario::SchedSpec::Fair(crate::scenario::OrderSpec::Random),
            step_limit: 100_000,
            inject: None,
        };
        let wal_dir = std::env::temp_dir().join(format!("btdst-storage-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&wal_dir);
        let out = run_netstack_storage(&s, Duration::from_secs(30), &wal_dir)
            .expect("sockets probed available");
        let _ = std::fs::remove_dir_all(&wal_dir);
        assert_eq!(out.report.status, RunStatus::Stopped, "all decided");
        assert!(
            crate::invariants::check(&s, &out.report, &[]).is_empty(),
            "decision properties hold across the corrupt-WAL restart"
        );
        assert!(
            crate::invariants::check_equivocations(&out.equivocations).is_empty(),
            "no equivocation observed: {:?}",
            out.equivocations
        );
        assert!(
            crate::invariants::check_storage(out.corruptions, out.transfers, out.victim).is_empty(),
            "flip detected ({} corruption(s)) and healed ({} transfer(s))",
            out.corruptions,
            out.transfers
        );
        assert!(
            out.restarts.iter().sum::<u32>() >= 1,
            "the schedule actually restarted the victim: {:?}",
            out.restarts
        );
    }

    #[test]
    fn injected_scenario_runs_the_ablated_protocol() {
        let s = Scenario {
            proto: ProtoKind::FailStop,
            n: 4,
            k: 1,
            seed: 3,
            inputs: vec![
                simnet::Value::One,
                simnet::Value::Zero,
                simnet::Value::One,
                simnet::Value::Zero,
            ],
            faults: vec![FaultSpec::Correct; 4],
            sched: crate::scenario::SchedSpec::Fair(crate::scenario::OrderSpec::Random),
            step_limit: 100_000,
            inject: Some(Injection::WeakenFailStop {
                witness_slack: 100,
                decide_slack: 100,
            }),
        };
        let out = run_sim(&s);
        // The fully weakened protocol decides instantly — the run must at
        // least complete; whether it *agrees* is the fuzzer's business.
        assert_eq!(out.report.status, RunStatus::Stopped);
    }
}
