//! Deterministic simulation testing for the Bracha–Toueg protocols.
//!
//! This crate closes the loop between the two runtimes the workspace
//! already has — the deterministic `simnet` simulator and the threaded
//! `netstack` socket runtime — with a seeded fuzzer that hunts for
//! protocol-level counterexamples and reduces them to minimal, replayable
//! artifacts:
//!
//! - [`scenario`] — the fuzz case: protocol, `(n, k)`, inputs, faults,
//!   schedule adversary, seed, optional planted defect; generated under
//!   the paper's resilience bounds so violations indict the code;
//! - [`exec`] — runs one scenario through the simulator (byte-identical
//!   traces) or over loopback TCP (same fault pattern, wall-clock time);
//! - [`invariants`] — the property suite: agreement, validity,
//!   convergence, and the Fig. 1/Fig. 2 decision thresholds read back out
//!   of the trace;
//! - [`multislot`] — the replicated-log leg: seeded multi-decree (`rsm`)
//!   scenarios under the same schedule adversaries, held to per-slot
//!   agreement, gap-freedom, batch provenance, and exactly-once
//!   invariants;
//! - [`stress`] — the scale leg: 50-node loopback clusters under healing
//!   partitions and crash-restarts, affordable only because the
//!   event-driven netstack runs each node on a single thread;
//! - [`storage`] — the amnesia leg: seeded byte flips armed in a crashed
//!   node's WAL, held to corruption detection, quorum state transfer,
//!   zero equivocations, and the decision properties;
//! - [`shrink`] — greedy delta-debugging to a minimal scenario preserving
//!   the violation classes;
//! - [`artifact`] — one-file repro: scenario header plus JSONL trace,
//!   re-runnable and byte-verified by `btfuzz --replay`;
//! - [`fuzz`] — the loop tying it together, including the every-Nth
//!   cross-runtime conformance check.
//!
//! The companion binary `btfuzz` drives the loop from the command line
//! (`btfuzz --budget 30` is wired into `scripts/check.sh`); its
//! `--inject` mode plants a broken quorum rule via
//! [`bt_core::ablation::AblatedFailStop`] and demands the harness catch
//! it — the fuzzer testing itself.

pub mod artifact;
pub mod exec;
pub mod fuzz;
pub mod invariants;
pub mod multislot;
pub mod scenario;
pub mod shrink;
pub mod storage;
pub mod stress;

pub use artifact::{parse as parse_artifact, render as render_artifact, verify_replay, Repro};
pub use exec::{
    netstack_crash_plan, netstack_fault_plan, netstack_storage_plan, run_netstack,
    run_netstack_recovering, run_netstack_storage, run_sim, run_sim_scheduled, NetOutcome,
    SimOutcome, StorageRun,
};
pub use fuzz::{fuzz, Finding, FindingKind, FuzzConfig, FuzzOutcome};
pub use invariants::{check, check_equivocations, check_storage, classes, Violation};
pub use multislot::{
    check_multislot, fuzz_multislot, run_multislot, MultiSlotOutcome, MultiSlotScenario,
    MultiSlotSweep, MultiSlotViolation,
};
pub use scenario::{FaultSpec, Injection, OrderSpec, ProtoKind, Scenario, SchedSpec};
pub use shrink::{shrink, Shrunk, DEFAULT_SHRINK_RUNS};
pub use storage::{
    fuzz_netstack_storage, storage_scenario, StorageConfig, StorageOutcome, STORAGE_SIZES,
};
pub use stress::{
    fuzz_netstack_stress, stress_scenario, StressConfig, StressOutcome, STRESS_LADDER,
};
