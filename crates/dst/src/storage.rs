//! The storage-fault leg: corrupt-WAL detection and quorum state
//! transfer under seeded byte flips.
//!
//! Every case is a small fail-stop cluster with unanimous inputs and the
//! seed-derived crash-restart schedule from
//! [`crate::exec::netstack_crash_plan`], plus a byte flip armed in the
//! victim's WAL storage (see [`crate::exec::netstack_storage_plan`]).
//! The restarted victim reopens a corrupted log; the run is held to the
//! full amnesia contract:
//!
//! - the usual decision properties (agreement, validity, convergence) —
//!   a node that silently replayed poisoned state would break these;
//! - zero observed equivocations — the amnesiac muzzle means a node that
//!   lost its log can never contradict its forgotten sends;
//! - the corruption was **detected** (`bt_wal_corruptions_total ≥ 1`)
//!   and **healed** (`bt_state_transfers_total ≥ 1`) — the
//!   storage-specific checks from [`crate::invariants::check_storage`].
//!
//! A violating scenario is reported with its full JSON so the seed (and
//! with it the victim, kill/restart timing, and flip) replays by hand.

use std::time::{Duration, Instant};

use netstack::sockets_available;
use prng::Prng;
use simnet::Value;

use crate::exec::run_netstack_storage;
use crate::invariants::{check, check_equivocations, check_storage, classes, Violation};
use crate::scenario::{FaultSpec, OrderSpec, ProtoKind, Scenario, SchedSpec};

/// The cluster sizes a sweep cycles through. Small on purpose: the leg
/// stresses the recovery path, not the runtime's scale, and `n = 4` is
/// already the minimum where `k + 1 = 2` matching peers exist after the
/// victim drops out.
pub const STORAGE_SIZES: &[usize] = &[4, 5, 7];

/// Storage-leg configuration.
#[derive(Clone, Debug)]
pub struct StorageConfig {
    /// Master seed: determines every scenario drawn.
    pub seed: u64,
    /// Wall-clock budget; the sweep stops at the first case past it.
    pub budget: Option<Duration>,
    /// Hard cap on cases (applies alongside the budget).
    pub max_cases: u64,
    /// Per-cluster verdict deadline.
    pub timeout: Duration,
}

impl Default for StorageConfig {
    fn default() -> Self {
        StorageConfig {
            seed: 0x5707_A6E1,
            budget: None,
            max_cases: 2 * STORAGE_SIZES.len() as u64,
            timeout: Duration::from_secs(30),
        }
    }
}

/// Outcome of a storage sweep.
#[derive(Clone, Debug)]
pub struct StorageOutcome {
    /// Cases executed to completion.
    pub cases: u64,
    /// WAL corruptions detected across the sweep (every case injects
    /// one, so on a correct tree this equals `cases`).
    pub corruptions: u64,
    /// Quorum state transfers completed across the sweep.
    pub transfers: u64,
    /// The first violating scenario, with its violations.
    pub finding: Option<(Scenario, Vec<Violation>)>,
}

/// Draws one storage case of size `n`: fail-stop, `k = 1`, unanimous
/// inputs, all processes correct at the protocol level, fair delivery.
/// The runtime-level crash, restart, and byte flip all derive from the
/// scenario seed inside [`run_netstack_storage`].
pub fn storage_scenario(rng: &mut Prng, n: usize) -> Scenario {
    let value = Value::from(rng.coin());
    Scenario {
        proto: ProtoKind::FailStop,
        n,
        k: 1,
        seed: rng.next_u64(),
        inputs: vec![value; n],
        faults: vec![FaultSpec::Correct; n],
        sched: SchedSpec::Fair(OrderSpec::Random),
        step_limit: 100_000,
        inject: None,
    }
}

/// Runs the storage sweep until a finding, the case cap, or the
/// wall-clock budget. Returns `None` when the sandbox forbids loopback
/// sockets. `progress` receives one status line per case.
pub fn fuzz_netstack_storage(
    config: &StorageConfig,
    mut progress: impl FnMut(&str),
) -> Option<StorageOutcome> {
    if !sockets_available() {
        return None;
    }
    let started = Instant::now();
    let mut rng = Prng::seed_from_u64(config.seed);
    let mut cases = 0u64;
    let mut corruptions = 0u64;
    let mut transfers = 0u64;

    while cases < config.max_cases {
        if let Some(budget) = config.budget {
            if started.elapsed() >= budget {
                progress(&format!("storage budget exhausted after {cases} cases"));
                break;
            }
        }
        let n = STORAGE_SIZES[(cases as usize) % STORAGE_SIZES.len()];
        let scenario = storage_scenario(&mut rng, n);
        let wal_dir =
            std::env::temp_dir().join(format!("btfuzz-storage-{}-{cases}", std::process::id()));
        let _ = std::fs::remove_dir_all(&wal_dir);
        let case_started = Instant::now();
        let out = run_netstack_storage(&scenario, config.timeout, &wal_dir)?;
        let _ = std::fs::remove_dir_all(&wal_dir);
        cases += 1;
        corruptions += out.corruptions;
        transfers += out.transfers;

        let mut violations = check(&scenario, &out.report, &[]);
        violations.extend(check_equivocations(&out.equivocations));
        violations.extend(check_storage(out.corruptions, out.transfers, out.victim));
        if violations.is_empty() {
            progress(&format!(
                "storage case {cases}: n={n} p{} flipped, detected, transferred in {:.2?}",
                out.victim,
                case_started.elapsed()
            ));
        } else {
            progress(&format!(
                "storage case {cases}: n={n} violated [{}] in {}",
                classes(&violations).join(", "),
                scenario.describe()
            ));
            return Some(StorageOutcome {
                cases,
                corruptions,
                transfers,
                finding: Some((scenario, violations)),
            });
        }
    }

    Some(StorageOutcome {
        cases,
        corruptions,
        transfers,
        finding: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The generator's contract: every drawn case is a legal, unanimous,
    /// all-correct fail-stop scenario — so any violation it reports
    /// indicts the recovery path, not the setup.
    #[test]
    fn storage_scenarios_are_unanimous_all_correct_failstop() {
        let mut rng = Prng::seed_from_u64(42);
        for case in 0..60 {
            let n = STORAGE_SIZES[case % STORAGE_SIZES.len()];
            let s = storage_scenario(&mut rng, n);
            assert_eq!(s.proto, ProtoKind::FailStop);
            assert_eq!(s.k, 1);
            assert_eq!(s.faulty_count(), 0);
            assert!(s.unanimous_input().is_some(), "{}", s.describe());
            assert!(s.inject.is_none());
        }
    }

    /// Same master seed ⇒ same scenarios, so a storage finding in CI
    /// replays on a laptop from the printed seed.
    #[test]
    fn storage_scenarios_are_deterministic_per_seed() {
        let mut a = Prng::seed_from_u64(7);
        let mut b = Prng::seed_from_u64(7);
        for _ in 0..20 {
            assert_eq!(storage_scenario(&mut a, 4), storage_scenario(&mut b, 4));
        }
    }

    /// One case end to end: a real loopback cluster whose victim reopens
    /// a flipped WAL must detect the corruption, transfer state, and
    /// still satisfy every decision property. (The budgeted sweep runs
    /// via `btfuzz --storage` in `scripts/check.sh`.)
    #[test]
    fn small_storage_case_runs_clean() {
        let config = StorageConfig {
            seed: 0xFEED,
            max_cases: 1,
            ..StorageConfig::default()
        };
        let Some(outcome) = fuzz_netstack_storage(&config, |_| {}) else {
            eprintln!("skipping: loopback sockets unavailable in this sandbox");
            return;
        };
        assert_eq!(outcome.cases, 1);
        assert!(outcome.corruptions >= 1, "the flip was detected");
        assert!(outcome.transfers >= 1, "the amnesiac recovered by quorum");
        assert!(
            outcome.finding.is_none(),
            "clean tree violated under storage faults: {:?}",
            outcome.finding
        );
    }
}
