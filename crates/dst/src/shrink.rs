//! Greedy delta-debugging: reduce a violating scenario to a minimal one
//! that still exhibits the same violation classes.
//!
//! The reducer walks a fixed ladder of simplifications — drop faults, then
//! tame the scheduler, then flatten inputs, then remove processes — and
//! re-runs the simulator after each candidate edit, keeping the edit only
//! when the *class set* of violations (see [`classes`]) is preserved. It
//! iterates to a fixpoint or until the run budget is spent. Because every
//! probe is a deterministic simulation, the result is reproducible from
//! the shrunk scenario alone.

use crate::exec::run_sim;
use crate::invariants::{check, classes, Violation};
use crate::scenario::{FaultSpec, OrderSpec, ProtoKind, Scenario, SchedSpec};

/// Default probe budget: plenty for the ladder to reach a fixpoint on the
/// small configurations the generator emits (n ≤ 8 ⇒ a full pass is a few
/// dozen runs).
pub const DEFAULT_SHRINK_RUNS: usize = 300;

/// The result of a shrink: the minimal scenario found and its violations.
#[derive(Clone, Debug)]
pub struct Shrunk {
    /// The smallest scenario still violating the original classes.
    pub scenario: Scenario,
    /// The violations that scenario produces.
    pub violations: Vec<Violation>,
    /// Accepted simplification steps.
    pub steps: usize,
    /// Simulator runs spent probing candidates.
    pub runs: usize,
}

/// Runs a candidate and returns its violations when they cover every
/// target class; `None` means the candidate lost the bug.
fn probe(candidate: &Scenario, target: &[&'static str]) -> Option<Vec<Violation>> {
    let out = run_sim(candidate);
    let trace = obs::parse_trace(&out.trace).ok()?;
    let violations = check(candidate, &out.report, &trace);
    let found = classes(&violations);
    target
        .iter()
        .all(|class| found.contains(class))
        .then_some(violations)
}

/// Candidate scheduler simplifications, strictly tamer than `current`.
fn tamer_schedulers(current: &SchedSpec) -> Vec<SchedSpec> {
    let ladder = [
        SchedSpec::Fair(OrderSpec::Fifo),
        SchedSpec::Fair(OrderSpec::Random),
    ];
    match current {
        SchedSpec::Partition { left, .. } => {
            let mut out = vec![SchedSpec::Delaying(left.clone())];
            out.extend(ladder);
            out
        }
        SchedSpec::Delaying(_) => ladder.to_vec(),
        SchedSpec::Fair(OrderSpec::Lifo | OrderSpec::Random) => {
            vec![SchedSpec::Fair(OrderSpec::Fifo)]
        }
        SchedSpec::Fair(OrderSpec::Fifo) => Vec::new(),
    }
}

/// Drops the last process, clamping `k` and every index-bearing field to
/// the smaller ring. Returns `None` when the result would violate the
/// protocol's resilience precondition.
fn drop_last_process(s: &Scenario) -> Option<Scenario> {
    let n = s.n - 1;
    if n < 2 {
        return None;
    }
    let k = s.k.min(ProtoKind::k_bound(s.proto, n));
    if k == 0 {
        return None;
    }
    let mut out = s.clone();
    out.n = n;
    out.k = k;
    out.inputs.truncate(n);
    out.faults.truncate(n);
    out.sched = match &s.sched {
        SchedSpec::Fair(order) => SchedSpec::Fair(*order),
        SchedSpec::Delaying(victims) => {
            SchedSpec::Delaying(victims.iter().copied().filter(|&v| v < n).collect())
        }
        SchedSpec::Partition {
            left,
            epoch_len,
            heal_every,
        } => SchedSpec::Partition {
            left: left.iter().copied().filter(|&v| v < n).collect(),
            epoch_len: *epoch_len,
            heal_every: *heal_every,
        },
    };
    Some(out)
}

/// Shrinks `initial` (which must already violate) to a minimal scenario
/// preserving `target` violation classes, within `max_runs` probes.
#[must_use]
pub fn shrink(initial: &Scenario, target: &[&'static str], max_runs: usize) -> Shrunk {
    let mut best = initial.clone();
    let mut best_violations = probe(&best, target).unwrap_or_default();
    let mut steps = 0usize;
    let mut runs = 1usize;

    let try_adopt = |best: &mut Scenario,
                     best_violations: &mut Vec<Violation>,
                     steps: &mut usize,
                     runs: &mut usize,
                     candidate: Scenario|
     -> bool {
        if *runs >= max_runs || candidate == *best {
            return false;
        }
        *runs += 1;
        if let Some(violations) = probe(&candidate, target) {
            *best = candidate;
            *best_violations = violations;
            *steps += 1;
            true
        } else {
            false
        }
    };

    loop {
        let mut improved = false;

        // 1. Faults: try erasing each fault entirely, then weakening the
        //    exotic ones to plain silence.
        for i in 0..best.n {
            if best.faults[i] == FaultSpec::Correct {
                continue;
            }
            let mut candidate = best.clone();
            candidate.faults[i] = FaultSpec::Correct;
            if try_adopt(
                &mut best,
                &mut best_violations,
                &mut steps,
                &mut runs,
                candidate,
            ) {
                improved = true;
                continue;
            }
            if best.faults[i] != FaultSpec::Silent {
                let mut candidate = best.clone();
                candidate.faults[i] = FaultSpec::Silent;
                improved |= try_adopt(
                    &mut best,
                    &mut best_violations,
                    &mut steps,
                    &mut runs,
                    candidate,
                );
            }
        }

        // 2. Scheduler: step down the ladder toward plain FIFO fairness.
        for sched in tamer_schedulers(&best.sched) {
            let mut candidate = best.clone();
            candidate.sched = sched;
            if try_adopt(
                &mut best,
                &mut best_violations,
                &mut steps,
                &mut runs,
                candidate,
            ) {
                improved = true;
                break;
            }
        }

        // 3. Inputs: flatten toward all-zero, one process at a time.
        for i in 0..best.n {
            if best.inputs[i] == simnet::Value::Zero {
                continue;
            }
            let mut candidate = best.clone();
            candidate.inputs[i] = simnet::Value::Zero;
            improved |= try_adopt(
                &mut best,
                &mut best_violations,
                &mut steps,
                &mut runs,
                candidate,
            );
        }

        // 4. Ring size: drop trailing processes while the bounds allow.
        while let Some(candidate) = drop_last_process(&best) {
            if !try_adopt(
                &mut best,
                &mut best_violations,
                &mut steps,
                &mut runs,
                candidate,
            ) {
                break;
            }
            improved = true;
        }

        if !improved || runs >= max_runs {
            break;
        }
    }

    Shrunk {
        scenario: best,
        violations: best_violations,
        steps,
        runs,
    }
}

#[cfg(test)]
mod tests {
    use simnet::Value;

    use super::*;
    use crate::scenario::Injection;

    /// A deliberately broken fail-stop config (thresholds ablated to 1)
    /// with one dissenting input under an adversarial scheduler: a process
    /// whose quota window misses the dissent decides differently from one
    /// that catches it. The shrinker must strip the decorations and keep
    /// the disagreement. Seed search is deterministic, so the returned
    /// scenario is stable.
    fn broken_scenario() -> Scenario {
        let mut scenario = Scenario {
            proto: ProtoKind::FailStop,
            n: 6,
            k: 2,
            seed: 0,
            inputs: vec![
                Value::Zero,
                Value::One,
                Value::One,
                Value::One,
                Value::One,
                Value::One,
            ],
            faults: vec![
                FaultSpec::Correct,
                FaultSpec::Correct,
                FaultSpec::Correct,
                FaultSpec::Correct,
                FaultSpec::Correct,
                FaultSpec::Silent,
            ],
            sched: SchedSpec::Partition {
                left: vec![0, 1, 2],
                epoch_len: 8,
                heal_every: 3,
            },
            step_limit: 200_000,
            inject: Some(Injection::WeakenFailStop {
                witness_slack: 100,
                decide_slack: 100,
            }),
        };
        for seed in 0..500 {
            scenario.seed = seed;
            let out = run_sim(&scenario);
            let trace = obs::parse_trace(&out.trace).expect("trace parses");
            if !check(&scenario, &out.report, &trace).is_empty() {
                return scenario;
            }
        }
        panic!("no seed below 500 violates — injection lost its teeth");
    }

    #[test]
    fn shrinking_a_broken_run_keeps_the_violation_and_simplifies() {
        let initial = broken_scenario();
        let out = run_sim(&initial);
        let trace = obs::parse_trace(&out.trace).expect("trace parses");
        let violations = check(&initial, &out.report, &trace);
        assert!(
            !violations.is_empty(),
            "the fully weakened protocol must misbehave"
        );
        let target = classes(&violations);

        let shrunk = shrink(&initial, &target, DEFAULT_SHRINK_RUNS);
        assert!(!shrunk.violations.is_empty());
        for class in &target {
            assert!(
                classes(&shrunk.violations).contains(class),
                "shrink lost class {class}"
            );
        }
        assert!(shrunk.steps > 0, "nothing simplified at all");
        // Structural minimality: no faults left, mild scheduler, small ring.
        assert!(shrunk.scenario.n <= initial.n);
        assert!(
            shrunk.scenario.faults.iter().all(|f| !f.is_faulty()),
            "faults should shrink away: {:?}",
            shrunk.scenario.faults
        );
        // The ladder must at least trade the partition away; whether it
        // reaches plain fairness depends on where the disagreement
        // survives, so don't over-constrain.
        assert!(
            !matches!(shrunk.scenario.sched, SchedSpec::Partition { .. }),
            "scheduler should step down the ladder: {:?}",
            shrunk.scenario.sched
        );
        // And the shrunk scenario reproduces deterministically.
        let replay = run_sim(&shrunk.scenario);
        let replay_trace = obs::parse_trace(&replay.trace).expect("trace parses");
        assert_eq!(
            check(&shrunk.scenario, &replay.report, &replay_trace),
            shrunk.violations
        );
    }

    #[test]
    fn shrink_on_an_already_small_scenario_stays_within_bounds() {
        // Near-minimal to begin with: n=4, k=1, no faults, fair random
        // scheduling, a lone dissenting input. Seed-search for a violating
        // instance, then check the shrinker never grows anything.
        let mut s = broken_scenario();
        s.n = 4;
        s.k = 1;
        s.inputs = vec![Value::Zero, Value::One, Value::One, Value::One];
        s.faults = vec![FaultSpec::Correct; 4];
        s.sched = SchedSpec::Fair(OrderSpec::Random);
        let violations = loop {
            let out = run_sim(&s);
            let trace = obs::parse_trace(&out.trace).expect("trace parses");
            let violations = check(&s, &out.report, &trace);
            if !violations.is_empty() {
                break violations;
            }
            s.seed += 1;
            assert!(s.seed < 500, "no violating seed found");
        };
        let target = classes(&violations);
        let shrunk = shrink(&s, &target, DEFAULT_SHRINK_RUNS);
        assert!(shrunk.scenario.n <= s.n);
        assert!(shrunk.scenario.faults.iter().all(|f| !f.is_faulty()));
        assert!(shrunk.runs <= DEFAULT_SHRINK_RUNS);
        assert!(!shrunk.violations.is_empty());
    }
}
