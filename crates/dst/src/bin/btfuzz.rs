//! `btfuzz` — seeded schedule/fault fuzzer for the consensus protocols.
//!
//! ```text
//! btfuzz [--budget SECS] [--cases N] [--seed SEED] [--inject]
//!        [--no-netstack] [--multislot N] [--out PATH]
//! btfuzz --netstack-stress [--budget SECS] [--cases N] [--seed SEED] [--out PATH]
//! btfuzz --storage [--budget SECS] [--cases N] [--seed SEED] [--out PATH]
//! btfuzz --replay PATH
//! ```
//!
//! Default mode fuzzes the unmodified tree: exit 0 when every case runs
//! clean, exit 1 with a repro artifact written to `--out` (default
//! `btfuzz-repro.jsonl`) when an invariant breaks. A clean one-shot sweep
//! is followed by `--multislot N` (default 25, 0 disables) replicated-log
//! scenarios — seeded per-replica command preloads driven through the
//! `rsm` multi-decree pipeline under the same schedule adversaries, held
//! to per-slot agreement, gap-freedom, batch provenance, and exactly-once
//! invariants; a violating multi-slot scenario is written to `--out` as
//! its scenario JSON. `--inject` is the harness self-test: it plants a
//! broken fail-stop quorum rule and exits 0 only if the fuzzer finds it,
//! shrinks it, and the artifact replays. `--replay` re-executes a
//! previously written artifact and byte-verifies the trace.
//! `--netstack-stress` runs the scale leg instead of the fuzz loop:
//! loopback clusters up a size ladder to n=50, each under a healing
//! partition and a seeded crash-restart, held to the decision properties
//! and zero equivocations; a violating scenario is written to `--out` as
//! its scenario JSON. `--storage` runs the amnesia leg: small clusters
//! whose seeded crash victim reopens a byte-flipped WAL, held to
//! corruption detection, quorum state transfer, zero equivocations, and
//! the decision properties; findings are reported the same way. Seeds
//! accept decimal or `0x`-prefixed hex.

use std::process::ExitCode;
use std::time::Duration;

use dst::{fuzz, FindingKind, FuzzConfig, Injection};

struct Args {
    budget: Option<Duration>,
    cases: Option<u64>,
    seed: Option<u64>,
    inject: bool,
    netstack: bool,
    stress: bool,
    storage: bool,
    multislot: u64,
    out: String,
    replay: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: btfuzz [--budget SECS] [--cases N] [--seed SEED] [--inject] \
         [--no-netstack] [--netstack-stress] [--storage] [--multislot N] [--out PATH] \
         | btfuzz --replay PATH"
    );
    std::process::exit(2);
}

fn parse_seed(raw: &str) -> Option<u64> {
    if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        raw.parse().ok()
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        budget: None,
        cases: None,
        seed: None,
        inject: false,
        netstack: true,
        stress: false,
        storage: false,
        multislot: 25,
        out: "btfuzz-repro.jsonl".to_string(),
        replay: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |what: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a {what}");
                usage()
            })
        };
        match flag.as_str() {
            "--budget" => {
                let raw = value("seconds value");
                match raw.parse::<u64>() {
                    Ok(s) => args.budget = Some(Duration::from_secs(s)),
                    Err(_) => {
                        eprintln!("bad --budget {raw:?}");
                        usage()
                    }
                }
            }
            "--cases" => {
                let raw = value("count");
                match raw.parse() {
                    Ok(n) => args.cases = Some(n),
                    Err(_) => {
                        eprintln!("bad --cases {raw:?}");
                        usage()
                    }
                }
            }
            "--seed" => {
                let raw = value("seed");
                match parse_seed(&raw) {
                    Some(s) => args.seed = Some(s),
                    None => {
                        eprintln!("bad --seed {raw:?}");
                        usage()
                    }
                }
            }
            "--inject" => args.inject = true,
            "--no-netstack" => args.netstack = false,
            "--netstack-stress" => args.stress = true,
            "--storage" => args.storage = true,
            "--multislot" => {
                let raw = value("count");
                match raw.parse() {
                    Ok(n) => args.multislot = n,
                    Err(_) => {
                        eprintln!("bad --multislot {raw:?}");
                        usage()
                    }
                }
            }
            "--out" => args.out = value("path"),
            "--replay" => args.replay = Some(value("path")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
    }
    args
}

fn replay(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("btfuzz: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let repro = match dst::parse_artifact(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("btfuzz: bad artifact {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("replaying {}", repro.scenario.describe());
    match dst::verify_replay(&repro) {
        Ok(()) => {
            println!(
                "replay ok: classes [{}] and trace reproduced byte-identically",
                repro.classes.join(", ")
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("replay FAILED: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The replicated-log leg of a clean run: generated multi-slot scenarios
/// through the `rsm` pipeline, log-level invariants, scenario-JSON repro
/// on a hit. Derives its seed from the master seed so one `--seed`
/// reproduces the whole session.
fn multislot_sweep(args: &Args, master_seed: u64) -> ExitCode {
    if args.multislot == 0 {
        return ExitCode::SUCCESS;
    }
    let seed = master_seed ^ 0x6d75_6c74_695f_736c; // "multi_sl", one stream per leg
    println!(
        "btfuzz: multislot sweep, seed {seed:#018x}, {} cases max",
        args.multislot
    );
    let sweep = dst::fuzz_multislot(seed, args.multislot, args.budget, |line| {
        println!("btfuzz: {line}");
    });
    println!("btfuzz: {} multislot cases", sweep.cases);
    let Some((scenario, violations)) = sweep.finding else {
        println!("btfuzz: no multislot violations");
        return ExitCode::SUCCESS;
    };
    println!("btfuzz: multislot violated: {}", scenario.describe());
    for v in &violations {
        println!("btfuzz:   {v}");
    }
    let artifact = scenario.to_json().render() + "\n";
    if let Err(e) = std::fs::write(&args.out, artifact) {
        eprintln!("btfuzz: cannot write artifact {}: {e}", args.out);
    } else {
        println!("btfuzz: multislot scenario written to {}", args.out);
    }
    ExitCode::FAILURE
}

/// The scale leg: loopback clusters up the size ladder to n=50, each
/// under a healing partition and a seeded crash-restart. Exit 0 on a
/// clean sweep (or a sandbox skip), exit 1 with the scenario JSON in
/// `--out` on a violation.
fn netstack_stress(args: &Args) -> ExitCode {
    let mut config = dst::StressConfig::default();
    if let Some(seed) = args.seed {
        config.seed = seed;
    }
    config.budget = args.budget;
    if let Some(cases) = args.cases {
        config.max_cases = cases;
    } else if args.budget.is_some() {
        config.max_cases = u64::MAX;
    }
    println!(
        "btfuzz: netstack stress, seed {:#018x}, ladder {:?} (clamp n={}), budget {:?}",
        config.seed,
        dst::STRESS_LADDER,
        config.max_n,
        config.budget
    );
    let Some(outcome) = dst::fuzz_netstack_stress(&config, |line| println!("btfuzz: {line}"))
    else {
        println!("btfuzz: skipping netstack stress: loopback sockets unavailable in this sandbox");
        return ExitCode::SUCCESS;
    };
    println!(
        "btfuzz: {} stress cases, largest n={}, {} supervisor restart(s)",
        outcome.cases, outcome.largest_n, outcome.restarts
    );
    let Some((scenario, violations)) = outcome.finding else {
        println!("btfuzz: no stress violations");
        return ExitCode::SUCCESS;
    };
    println!("btfuzz: stress violated: {}", scenario.describe());
    for v in &violations {
        println!("btfuzz:   {v}");
    }
    let artifact = scenario.to_json().render() + "\n";
    if let Err(e) = std::fs::write(&args.out, artifact) {
        eprintln!("btfuzz: cannot write artifact {}: {e}", args.out);
    } else {
        println!("btfuzz: stress scenario written to {}", args.out);
    }
    ExitCode::FAILURE
}

/// The amnesia leg: small clusters whose seeded crash victim reopens a
/// byte-flipped WAL, held to corruption detection, quorum state
/// transfer, zero equivocations, and the decision properties. Exit 0 on
/// a clean sweep (or a sandbox skip), exit 1 with the scenario JSON in
/// `--out` on a violation.
fn storage(args: &Args) -> ExitCode {
    let mut config = dst::StorageConfig::default();
    if let Some(seed) = args.seed {
        config.seed = seed;
    }
    config.budget = args.budget;
    if let Some(cases) = args.cases {
        config.max_cases = cases;
    } else if args.budget.is_some() {
        config.max_cases = u64::MAX;
    }
    println!(
        "btfuzz: storage faults, seed {:#018x}, sizes {:?}, budget {:?}",
        config.seed,
        dst::STORAGE_SIZES,
        config.budget
    );
    let Some(outcome) = dst::fuzz_netstack_storage(&config, |line| println!("btfuzz: {line}"))
    else {
        println!("btfuzz: skipping storage faults: loopback sockets unavailable in this sandbox");
        return ExitCode::SUCCESS;
    };
    println!(
        "btfuzz: {} storage cases, {} corruption(s) detected, {} state transfer(s)",
        outcome.cases, outcome.corruptions, outcome.transfers
    );
    let Some((scenario, violations)) = outcome.finding else {
        println!("btfuzz: no storage violations");
        return ExitCode::SUCCESS;
    };
    println!("btfuzz: storage violated: {}", scenario.describe());
    for v in &violations {
        println!("btfuzz:   {v}");
    }
    let artifact = scenario.to_json().render() + "\n";
    if let Err(e) = std::fs::write(&args.out, artifact) {
        eprintln!("btfuzz: cannot write artifact {}: {e}", args.out);
    } else {
        println!("btfuzz: storage scenario written to {}", args.out);
    }
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args = parse_args();
    if let Some(path) = &args.replay {
        return replay(path);
    }
    if args.stress {
        return netstack_stress(&args);
    }
    if args.storage {
        return storage(&args);
    }

    let mut config = FuzzConfig {
        netstack: args.netstack,
        ..FuzzConfig::default()
    };
    if let Some(seed) = args.seed {
        config.seed = seed;
    }
    config.budget = args.budget;
    if let Some(cases) = args.cases {
        config.max_cases = cases;
    } else if args.budget.is_some() {
        // Budgeted runs: the clock is the limit, not the case count.
        config.max_cases = u64::MAX;
    }
    if args.inject {
        config.inject = Some(Injection::WeakenFailStop {
            witness_slack: 100,
            decide_slack: 100,
        });
        // The ablated protocol only exists in the simulator.
        config.netstack = false;
    }

    println!(
        "btfuzz: seed {:#018x}, {} cases max, budget {:?}, netstack {}",
        config.seed,
        config.max_cases,
        config.budget,
        if config.netstack { "on" } else { "off" }
    );
    let outcome = fuzz(&config, |line| println!("btfuzz: {line}"));
    println!(
        "btfuzz: {} cases, {} netstack cross-checks",
        outcome.cases, outcome.netstack_runs
    );

    let Some(finding) = outcome.finding else {
        if args.inject {
            eprintln!("btfuzz: --inject planted a defect but nothing was found");
            return ExitCode::FAILURE;
        }
        println!("btfuzz: no violations");
        return multislot_sweep(&args, config.seed);
    };

    println!(
        "btfuzz: case {} violated: {}",
        finding.case,
        finding.scenario.describe()
    );
    for v in &finding.violations {
        println!("btfuzz:   {v}");
    }
    if let Some(shrunk) = &finding.shrunk {
        println!(
            "btfuzz: shrunk in {} step(s) / {} run(s) to: {}",
            shrunk.steps,
            shrunk.runs,
            shrunk.scenario.describe()
        );
    }
    if finding.kind == FindingKind::NetstackDivergence {
        println!(
            "btfuzz: divergence is against the netstack runtime (artifact holds the sim trace)"
        );
    }

    if let Err(e) = std::fs::write(&args.out, &finding.artifact) {
        eprintln!("btfuzz: cannot write artifact {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!(
        "btfuzz: artifact written to {} (replay: btfuzz --replay {})",
        args.out, args.out
    );

    if args.inject {
        // Self-test: found, shrunk — now the artifact must replay.
        let repro = match dst::parse_artifact(&finding.artifact) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("btfuzz: self-test artifact does not parse: {e}");
                return ExitCode::FAILURE;
            }
        };
        match dst::verify_replay(&repro) {
            Ok(()) => {
                println!("btfuzz: self-test passed — injected defect found, shrunk, replayed");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("btfuzz: self-test replay failed: {e}");
                ExitCode::FAILURE
            }
        }
    } else {
        ExitCode::FAILURE
    }
}
