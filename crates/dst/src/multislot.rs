//! Multi-slot fuzzing: seeded replicated-log scenarios under the
//! simulator, checked against log-level invariants.
//!
//! The one-shot [`Scenario`](crate::scenario::Scenario) pipeline fuzzes a
//! *single* consensus instance; the `rsm` crate composes instances into a
//! replicated log, which has its own properties to break — per-slot
//! agreement, gap-freedom, batch provenance, and exactly-once command
//! application. A [`MultiSlotScenario`] pins everything such a run depends
//! on (system size, pipelining/batching knobs, per-replica preloaded
//! command streams including deliberate cross-replica duplicates, schedule
//! adversary, seed) and [`run_multislot`] executes it deterministically in
//! `simnet`, so any violation replays bit-for-bit from the scenario JSON.
//!
//! The class is deliberately minimal: all replicas are correct (the log's
//! availability follows its leaders — a silent leader legitimately stalls
//! the apply loop, so fault injection here would fuzz an intended
//! property). What varies is load shape and delivery order, which is where
//! the pipelining/gap-fill/dedup machinery can actually get it wrong.

use obs::json::Json;
use prng::Prng;
use rsm::{leader, AppliedState, Command, LogView, Op, Replica, RsmOptions};
use simnet::{ProcessId, Role, Sim, StopWhen};

use crate::scenario::{OrderSpec, SchedSpec};

/// One fully-specified multi-slot fuzz case.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MultiSlotScenario {
    /// System size.
    pub n: usize,
    /// Resilience parameter of the underlying Figure 2 instances.
    pub k: usize,
    /// Seed for the simulator run.
    pub seed: u64,
    /// Pipeline window (replica option).
    pub window: u64,
    /// Batch cap (replica option).
    pub max_batch: usize,
    /// Commands preloaded into each replica's pending queue.
    pub loads: Vec<Vec<Command>>,
    /// The schedule adversary.
    pub sched: SchedSpec,
    /// Step budget; hitting it counts as non-convergence.
    pub step_limit: u64,
}

/// A log-level invariant breach found in one multi-slot run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MultiSlotViolation {
    /// The run hit its step limit before going quiescent.
    NoConvergence {
        /// Steps executed when the budget ran out.
        steps: u64,
    },
    /// Two replicas' applied logs differ (in length or in some entry) —
    /// per-slot agreement is broken.
    LogMismatch {
        /// First replica.
        a: usize,
        /// Second replica.
        b: usize,
        /// First differing slot (or the shorter log's length).
        slot: u64,
    },
    /// A replica's log skips or reorders a slot index.
    LogGap {
        /// The replica.
        pid: usize,
        /// Position in the log where the slot index is wrong.
        index: usize,
    },
    /// A slot's batch contains a command its leader was never given —
    /// validity at the log level (commands cannot be fabricated).
    ForeignCommand {
        /// The replica whose log holds the entry.
        pid: usize,
        /// The offending slot.
        slot: u64,
    },
    /// A preloaded `(client, request)` was applied zero or multiple times.
    ExactlyOnceBroken {
        /// The client id.
        client: u64,
        /// The request id.
        request: u64,
        /// How many times it appears across applied (non-deduped) slots.
        times: u64,
    },
    /// Replicas disagree on the chained log digest despite equal logs —
    /// the digest itself is broken.
    DigestMismatch {
        /// First replica.
        a: usize,
        /// Second replica.
        b: usize,
    },
}

impl MultiSlotViolation {
    /// Stable short name for the violation's class.
    #[must_use]
    pub fn class(&self) -> &'static str {
        match self {
            MultiSlotViolation::NoConvergence { .. } => "no-convergence",
            MultiSlotViolation::LogMismatch { .. } => "log-mismatch",
            MultiSlotViolation::LogGap { .. } => "log-gap",
            MultiSlotViolation::ForeignCommand { .. } => "foreign-command",
            MultiSlotViolation::ExactlyOnceBroken { .. } => "exactly-once",
            MultiSlotViolation::DigestMismatch { .. } => "digest-mismatch",
        }
    }
}

impl std::fmt::Display for MultiSlotViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MultiSlotViolation::NoConvergence { steps } => {
                write!(f, "no convergence within {steps} steps")
            }
            MultiSlotViolation::LogMismatch { a, b, slot } => {
                write!(f, "replicas p{a} and p{b} disagree at slot {slot}")
            }
            MultiSlotViolation::LogGap { pid, index } => {
                write!(f, "replica p{pid} has a gap/reorder at log index {index}")
            }
            MultiSlotViolation::ForeignCommand { pid, slot } => {
                write!(
                    f,
                    "replica p{pid} slot {slot} carries a command its leader never received"
                )
            }
            MultiSlotViolation::ExactlyOnceBroken {
                client,
                request,
                times,
            } => write!(
                f,
                "command ({client}, {request}) applied {times} time(s), expected exactly one"
            ),
            MultiSlotViolation::DigestMismatch { a, b } => {
                write!(f, "replicas p{a} and p{b} computed different log digests")
            }
        }
    }
}

impl MultiSlotScenario {
    /// Draws a random multi-slot scenario: 4–7 all-correct replicas, a
    /// window of 1–8 slots, batches of 1–8 commands, and per-replica
    /// command streams where one client's stream is sometimes duplicated
    /// onto a second replica (the resubmitted-elsewhere client the dedup
    /// watermark exists for).
    pub fn generate(rng: &mut Prng) -> MultiSlotScenario {
        let n = 4 + rng.index(4); // 4..=7
        let k = (n - 1) / 3;
        let window = 1 + rng.below_u64(8);
        let max_batch = 1 + rng.index(8);

        // Small key alphabet so streams overwrite each other; values carry
        // the writer so "last writer wins identically everywhere" is
        // checkable through the kv map (via the digest).
        let mut loads: Vec<Vec<Command>> = (0..n)
            .map(|i| {
                let count = rng.index(13) as u64; // 0..=12
                (1..=count)
                    .map(|request| {
                        let client = i as u64 + 1;
                        let op = match rng.index(5) {
                            0 => Op::Del {
                                key: vec![b'a' + rng.index(4) as u8],
                            },
                            1 => Op::Noop,
                            _ => Op::Put {
                                key: vec![b'a' + rng.index(4) as u8],
                                value: format!("c{client}r{request}").into_bytes(),
                            },
                        };
                        Command {
                            client,
                            request,
                            op,
                        }
                    })
                    .collect()
            })
            .collect();
        // Duplicate one replica's stream onto another about half the time.
        if rng.coin() {
            let from = rng.index(n);
            let to = (from + 1 + rng.index(n - 1)) % n;
            let dup = loads[from].clone();
            loads[to].extend(dup);
        }

        let sched = match rng.index(6) {
            0 | 1 => SchedSpec::Fair(OrderSpec::Random),
            2 => SchedSpec::Fair(OrderSpec::Fifo),
            3 => SchedSpec::Fair(OrderSpec::Lifo),
            _ => {
                let count = 1 + rng.index(2.min(n - 1));
                let mut victims: Vec<usize> = Vec::new();
                while victims.len() < count {
                    let v = rng.index(n);
                    if !victims.contains(&v) {
                        victims.push(v);
                    }
                }
                victims.sort_unstable();
                SchedSpec::Delaying(victims)
            }
        };

        MultiSlotScenario {
            n,
            k,
            seed: rng.next_u64(),
            window,
            max_batch,
            loads,
            sched,
            step_limit: 2_000_000,
        }
    }

    /// Serializes to a repro-artifact JSON object.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let load_json = |cmds: &[Command]| {
            Json::Arr(
                cmds.iter()
                    .map(|c| {
                        let (kind, key, value) = match &c.op {
                            Op::Put { key, value } => ("put", key.clone(), value.clone()),
                            Op::Del { key } => ("del", key.clone(), Vec::new()),
                            Op::Noop => ("noop", Vec::new(), Vec::new()),
                        };
                        Json::Obj(vec![
                            ("client".into(), Json::num(c.client)),
                            ("request".into(), Json::num(c.request)),
                            ("op".into(), Json::str(kind)),
                            (
                                "key".into(),
                                Json::str(String::from_utf8_lossy(&key).into_owned()),
                            ),
                            (
                                "value".into(),
                                Json::str(String::from_utf8_lossy(&value).into_owned()),
                            ),
                        ])
                    })
                    .collect(),
            )
        };
        Json::Obj(vec![
            ("kind".into(), Json::str("multislot")),
            ("n".into(), Json::num(self.n as u64)),
            ("k".into(), Json::num(self.k as u64)),
            ("seed".into(), Json::num(self.seed)),
            ("window".into(), Json::num(self.window)),
            ("max_batch".into(), Json::num(self.max_batch as u64)),
            (
                "loads".into(),
                Json::Arr(self.loads.iter().map(|l| load_json(l)).collect()),
            ),
            ("sched".into(), self.sched.to_json()),
            ("step_limit".into(), Json::num(self.step_limit)),
        ])
    }

    /// A compact one-line human description.
    #[must_use]
    pub fn describe(&self) -> String {
        format!(
            "multislot n={} k={} seed={:#018x} window={} max_batch={} loads={:?} sched={:?}",
            self.n,
            self.k,
            self.seed,
            self.window,
            self.max_batch,
            self.loads.iter().map(Vec::len).collect::<Vec<_>>(),
            self.sched,
        )
    }
}

/// The observables of one multi-slot run: steps consumed and every
/// replica's applied state.
#[derive(Debug)]
pub struct MultiSlotOutcome {
    /// Steps the simulator executed (== `step_limit` means it never went
    /// quiescent).
    pub steps: u64,
    /// Per-replica applied state at the end of the run.
    pub states: Vec<AppliedState>,
}

/// Runs the scenario to quiescence (or the step limit) in the simulator.
///
/// # Panics
///
/// Panics if the scenario's `(n, k)` violate the Figure 2 bound —
/// generated scenarios never do.
#[must_use]
pub fn run_multislot(scenario: &MultiSlotScenario) -> MultiSlotOutcome {
    let config = bt_core::Config::malicious(scenario.n, scenario.k).expect("generator bound");
    let opts = RsmOptions {
        window: scenario.window,
        max_batch: scenario.max_batch,
    };
    let views: Vec<LogView> = (0..scenario.n).map(|_| LogView::new()).collect();
    let mut builder = Sim::builder();
    for (i, cmds) in scenario.loads.iter().enumerate() {
        let replica = Replica::new(config, ProcessId::new(i), opts)
            .with_view(views[i].clone())
            .with_preload(cmds.clone());
        builder.process(Box::new(replica), Role::Correct);
    }
    builder.scheduler(crate::exec::build_scheduler::<rsm::RsmMsg>(
        scenario.n,
        &scenario.sched,
    ));
    let report = builder
        .seed(scenario.seed)
        .stop_when(StopWhen::Never)
        .step_limit(scenario.step_limit)
        .build()
        .run();
    MultiSlotOutcome {
        steps: report.steps,
        states: views.iter().map(LogView::snapshot).collect(),
    }
}

/// Checks the log-level invariant suite against one run's outcome.
#[must_use]
pub fn check_multislot(
    scenario: &MultiSlotScenario,
    outcome: &MultiSlotOutcome,
) -> Vec<MultiSlotViolation> {
    let mut violations = Vec::new();
    if outcome.steps >= scenario.step_limit {
        violations.push(MultiSlotViolation::NoConvergence {
            steps: outcome.steps,
        });
        // A stalled run's logs are legitimately short; the remaining
        // checks would only echo the stall.
        return violations;
    }

    // Gap-freedom, per replica.
    for (pid, s) in outcome.states.iter().enumerate() {
        for (index, e) in s.log.iter().enumerate() {
            if e.slot != index as u64 {
                violations.push(MultiSlotViolation::LogGap { pid, index });
                break;
            }
        }
    }

    // Per-slot agreement: all logs identical, then digests identical.
    for b in 1..outcome.states.len() {
        let (la, lb) = (&outcome.states[0].log, &outcome.states[b].log);
        if la != lb {
            let slot = la
                .iter()
                .zip(lb.iter())
                .position(|(x, y)| x != y)
                .unwrap_or(la.len().min(lb.len())) as u64;
            violations.push(MultiSlotViolation::LogMismatch { a: 0, b, slot });
        } else if outcome.states[0].digest() != outcome.states[b].digest() {
            violations.push(MultiSlotViolation::DigestMismatch { a: 0, b });
        }
    }

    // Batch provenance: every command in slot s was preloaded into the
    // queue of s's leader.
    for (pid, s) in outcome.states.iter().enumerate() {
        for e in &s.log {
            let lead = leader(e.slot, scenario.n).index();
            if e.commands.iter().any(|c| !scenario.loads[lead].contains(c)) {
                violations.push(MultiSlotViolation::ForeignCommand { pid, slot: e.slot });
            }
        }
    }

    // Exactly-once: each distinct preloaded (client, request) appears
    // exactly once in the applied log (watermark semantics: only the
    // highest-request duplicate's *first* appearance applies; appearing
    // in a later slot's batch again is fine as long as apply skipped it —
    // so count via applied_commands-style accounting: the log stores full
    // batches, dedup happens at apply time. We therefore check the KV
    // effect instead: applied_commands equals the distinct count, on
    // every replica.)
    let mut distinct: std::collections::BTreeSet<(u64, u64)> = std::collections::BTreeSet::new();
    for load in &scenario.loads {
        for c in load {
            distinct.insert((c.client, c.request));
        }
    }
    for s in &outcome.states {
        if s.applied_commands != distinct.len() as u64 {
            // Find a concrete witness for the report: a pair applied not
            // exactly once, judged by the per-client watermark the state
            // machine keeps.
            let witness = distinct
                .iter()
                .find(|&&(client, request)| !s.is_complete(client, request))
                .copied();
            let (client, request) = witness.unwrap_or((0, 0));
            violations.push(MultiSlotViolation::ExactlyOnceBroken {
                client,
                request,
                times: if witness.is_some() { 0 } else { 2 },
            });
            break;
        }
    }

    violations
}

/// Sweep outcome: cases run and the first violating case, if any.
#[derive(Debug)]
pub struct MultiSlotSweep {
    /// Cases executed.
    pub cases: u64,
    /// The first violating scenario with its violations, if any.
    pub finding: Option<(MultiSlotScenario, Vec<MultiSlotViolation>)>,
}

/// Runs `max_cases` generated multi-slot scenarios (stopping early on a
/// wall-clock `budget` if given), reporting the first violation.
pub fn fuzz_multislot(
    seed: u64,
    max_cases: u64,
    budget: Option<std::time::Duration>,
    mut progress: impl FnMut(&str),
) -> MultiSlotSweep {
    let started = std::time::Instant::now();
    let mut rng = Prng::seed_from_u64(seed);
    for case in 0..max_cases {
        if let Some(budget) = budget {
            if started.elapsed() >= budget {
                progress(&format!("multislot budget exhausted after {case} cases"));
                return MultiSlotSweep {
                    cases: case,
                    finding: None,
                };
            }
        }
        let scenario = MultiSlotScenario::generate(&mut rng);
        let outcome = run_multislot(&scenario);
        let violations = check_multislot(&scenario, &outcome);
        if !violations.is_empty() {
            progress(&format!(
                "multislot case {case}: {} violation(s) [{}] in {}",
                violations.len(),
                violations
                    .iter()
                    .map(MultiSlotViolation::class)
                    .collect::<Vec<_>>()
                    .join(", "),
                scenario.describe()
            ));
            return MultiSlotSweep {
                cases: case + 1,
                finding: Some((scenario, violations)),
            };
        }
    }
    MultiSlotSweep {
        cases: max_cases,
        finding: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_in_bounds() {
        let mut a = Prng::seed_from_u64(41);
        let mut b = Prng::seed_from_u64(41);
        for _ in 0..50 {
            let s = MultiSlotScenario::generate(&mut a);
            assert_eq!(s, MultiSlotScenario::generate(&mut b));
            assert!(s.n >= 4 && s.n <= 7);
            assert!(s.k <= (s.n - 1) / 3);
            assert!(s.window >= 1 && s.window <= 8);
            assert!(s.max_batch >= 1 && s.max_batch <= 8);
            assert_eq!(s.loads.len(), s.n);
        }
    }

    #[test]
    fn clean_tree_survives_a_multislot_sweep() {
        let sweep = fuzz_multislot(0xD0_5107, 25, None, |_| {});
        assert_eq!(sweep.cases, 25);
        assert!(
            sweep.finding.is_none(),
            "clean tree violated: {:?}",
            sweep.finding
        );
    }

    #[test]
    fn runs_replay_identically_per_scenario() {
        let mut rng = Prng::seed_from_u64(6);
        let s = MultiSlotScenario::generate(&mut rng);
        let a = run_multislot(&s);
        let b = run_multislot(&s);
        assert_eq!(a.steps, b.steps);
        assert_eq!(
            a.states
                .iter()
                .map(AppliedState::digest)
                .collect::<Vec<_>>(),
            b.states
                .iter()
                .map(AppliedState::digest)
                .collect::<Vec<_>>(),
        );
    }

    #[test]
    fn tampered_outcome_is_caught() {
        // The checker must actually bite: strip a slot from one replica's
        // log and every agreement-side invariant lights up.
        let mut rng = Prng::seed_from_u64(17);
        let s = loop {
            let s = MultiSlotScenario::generate(&mut rng);
            if s.loads.iter().map(Vec::len).sum::<usize>() > 0 {
                break s;
            }
        };
        let mut out = run_multislot(&s);
        assert!(check_multislot(&s, &out).is_empty());
        let tampered = out.states[0].log.pop();
        assert!(tampered.is_some(), "non-empty load produced slots");
        let violations = check_multislot(&s, &out);
        assert!(
            violations.iter().any(|v| v.class() == "log-mismatch"),
            "truncation not caught: {violations:?}"
        );
    }
}
