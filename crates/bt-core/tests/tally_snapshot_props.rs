//! Properties of the compact tally state: snapshots are canonical under
//! round-trip, and a process restored mid-phase is behaviourally
//! indistinguishable from the original — same broadcasts, same decision,
//! same bytes — under randomized adversarial message workloads.
//!
//! These guard the flat bitset/sorted-vec representations that replaced
//! the hash tables in `malicious`, `broadcast`, and `simple`: the wire
//! format is the old canonical sorted layout, so any divergence in
//! serialization order or restore semantics shows up here as a byte diff.

use bt_core::broadcast::{EchoOutcome, EchoTracker};
use bt_core::{
    Config, Malicious, MaliciousKind, MaliciousMsg, Phase, Simple, SimpleMsg, Termination,
};
use simnet::{Ctx, Envelope, Process, ProcessId, SimRng, Value};

const N: usize = 7;
const K: usize = 2;

/// A random malicious-protocol envelope biased toward the current phase,
/// with occasional wildcards, equivocations, and future/past stamps.
fn random_malicious_env(rng: &mut SimRng, phase: u64) -> Envelope<MaliciousMsg> {
    let sender = ProcessId::new(rng.index(N));
    let value = Value::from(rng.index(2) == 1);
    let subject = ProcessId::new(rng.index(N));
    let stamp = match rng.index(8) {
        0 => Phase::Any,
        1 => Phase::At(phase + 1 + rng.index(3) as u64),
        2 if phase > 0 => Phase::At(phase - 1),
        _ => Phase::At(phase),
    };
    let kind = if rng.index(4) == 0 {
        MaliciousKind::Initial
    } else {
        MaliciousKind::Echo
    };
    let msg = match kind {
        // Honest initials must come from their subject to pass the §3.1
        // authenticity check; send a forged one occasionally too.
        MaliciousKind::Initial if rng.index(5) > 0 => MaliciousMsg {
            kind,
            subject: sender,
            value,
            phase: stamp,
        },
        _ => MaliciousMsg {
            kind,
            subject,
            value,
            phase: stamp,
        },
    };
    Envelope::new(sender, msg)
}

fn deliver<P: Process>(
    p: &mut P,
    env: Envelope<P::Msg>,
    rng: &mut SimRng,
) -> Vec<(ProcessId, P::Msg)> {
    let mut outbox = Vec::new();
    let mut ctx = Ctx::new(ProcessId::new(0), N, 0, &mut outbox, rng);
    p.on_receive(env, &mut ctx);
    outbox
}

#[test]
fn malicious_snapshot_round_trips_canonically_under_random_traffic() {
    let config = Config::malicious(N, K).unwrap();
    for seed in 0..30u64 {
        let mut rng = SimRng::seed(0xC0FFEE ^ seed);
        let mut p = Malicious::with_termination(config, Value::Zero, Termination::WildcardExit);
        {
            let mut outbox = Vec::new();
            let mut ctx = Ctx::new(ProcessId::new(0), N, 0, &mut outbox, &mut rng);
            p.on_start(&mut ctx);
        }
        for step in 0..200 {
            let env = random_malicious_env(&mut rng, p.phase());
            let _ = deliver(&mut p, env, &mut rng);
            if step % 23 != 0 {
                continue;
            }
            let snap = p.snapshot().unwrap();
            let mut q = Malicious::new(config, Value::One);
            assert!(q.restore(&snap), "seed {seed} step {step}: restore failed");
            assert_eq!(
                q.snapshot().unwrap(),
                snap,
                "seed {seed} step {step}: snapshot not canonical after restore"
            );
        }
    }
}

#[test]
fn malicious_restored_mid_phase_behaves_identically() {
    let config = Config::malicious(N, K).unwrap();
    for seed in 0..30u64 {
        let mut rng = SimRng::seed(0xBEEF ^ seed);
        let mut p = Malicious::new(config, Value::Zero);
        {
            let mut outbox = Vec::new();
            let mut ctx = Ctx::new(ProcessId::new(0), N, 0, &mut outbox, &mut rng);
            p.on_start(&mut ctx);
        }
        // First act: drive the original partway into a phase.
        for _ in 0..80 {
            let env = random_malicious_env(&mut rng, p.phase());
            let _ = deliver(&mut p, env, &mut rng);
        }
        // Clone via the wire, then play the identical second act to both.
        let snap = p.snapshot().unwrap();
        let mut q = Malicious::new(config, Value::One);
        assert!(q.restore(&snap), "seed {seed}: restore failed");
        let mut rng_q = SimRng::seed(1);
        for step in 0..120 {
            let env = random_malicious_env(&mut rng, p.phase());
            let sent_p = deliver(&mut p, env.clone(), &mut rng);
            let sent_q = deliver(&mut q, env, &mut rng_q);
            assert_eq!(
                sent_p, sent_q,
                "seed {seed} step {step}: broadcasts diverged"
            );
        }
        assert_eq!(
            p.decision(),
            q.decision(),
            "seed {seed}: decisions diverged"
        );
        assert_eq!(p.phase(), q.phase(), "seed {seed}: phases diverged");
        assert_eq!(p.halted(), q.halted(), "seed {seed}");
        assert_eq!(
            p.snapshot(),
            q.snapshot(),
            "seed {seed}: end states diverged"
        );
    }
}

#[test]
fn simple_restored_mid_phase_behaves_identically() {
    let config = Config::malicious(N, K).unwrap();
    for seed in 0..30u64 {
        let mut rng = SimRng::seed(0x51AB ^ seed);
        let mut p = Simple::new(config, Value::Zero);
        {
            let mut outbox = Vec::new();
            let mut ctx = Ctx::new(ProcessId::new(0), N, 0, &mut outbox, &mut rng);
            p.on_start(&mut ctx);
        }
        let mk = |rng: &mut SimRng, phase: u64| {
            let from = ProcessId::new(rng.index(N));
            let t = match rng.index(6) {
                0 => phase + 1 + rng.index(3) as u64,
                1 if phase > 0 => phase - 1,
                _ => phase,
            };
            Envelope::new(
                from,
                SimpleMsg {
                    phase: t,
                    value: Value::from(rng.index(2) == 1),
                },
            )
        };
        for _ in 0..40 {
            let env = mk(&mut rng, p.phase());
            let _ = deliver(&mut p, env, &mut rng);
        }
        let snap = p.snapshot().unwrap();
        let mut q = Simple::new(config, Value::One);
        assert!(q.restore(&snap), "seed {seed}: restore failed");
        assert_eq!(q.snapshot().unwrap(), snap, "seed {seed}: not canonical");
        let mut rng_q = SimRng::seed(2);
        for step in 0..80 {
            let env = mk(&mut rng, p.phase());
            let sent_p = deliver(&mut p, env.clone(), &mut rng);
            let sent_q = deliver(&mut q, env, &mut rng_q);
            assert_eq!(
                sent_p, sent_q,
                "seed {seed} step {step}: broadcasts diverged"
            );
        }
        assert_eq!(p.decision(), q.decision(), "seed {seed}");
        assert_eq!(
            p.snapshot(),
            q.snapshot(),
            "seed {seed}: end states diverged"
        );
    }
}

/// Cross-checks the bitset-backed [`EchoTracker`] against a naive
/// hash-table model under a random echo workload (duplicates,
/// equivocations, repeated post-acceptance echoes).
#[test]
fn echo_tracker_matches_hash_model() {
    use std::collections::{HashMap, HashSet};

    let config = Config::malicious(N, K).unwrap();
    for seed in 0..20u64 {
        let mut rng = SimRng::seed(0xEC40 ^ seed);
        let mut t = EchoTracker::new(config);
        let mut seen: HashSet<(usize, usize)> = HashSet::new();
        let mut counts: HashMap<(usize, usize), usize> = HashMap::new();
        let mut accepted: HashMap<usize, Value> = HashMap::new();
        for _ in 0..300 {
            let (s, q) = (rng.index(N), rng.index(N));
            let v = Value::from(rng.index(2) == 1);
            let got = t.record_echo(ProcessId::new(s), ProcessId::new(q), v);
            let expect = if accepted.contains_key(&q) || !seen.insert((s, q)) {
                EchoOutcome::Ignored
            } else {
                let c = counts.entry((q, v.index())).or_insert(0);
                *c += 1;
                if config.accepts(*c) {
                    accepted.insert(q, v);
                    EchoOutcome::Accepted(v)
                } else {
                    EchoOutcome::Counted
                }
            };
            assert_eq!(got, expect, "seed {seed}");
            for subject in 0..N {
                assert_eq!(
                    t.accepted(ProcessId::new(subject)),
                    accepted.get(&subject).copied(),
                    "seed {seed}"
                );
                for value in Value::BOTH {
                    assert_eq!(
                        t.echo_count(ProcessId::new(subject), value),
                        counts.get(&(subject, value.index())).copied().unwrap_or(0),
                        "seed {seed}"
                    );
                }
            }
            assert_eq!(t.accepted_count(), accepted.len(), "seed {seed}");
        }
    }
}
