//! Fuzzing the protocol state machines: arbitrary (including nonsensical
//! and adversarial) message sequences must never panic a correct process,
//! never bypass sender authentication, and never flip a decision.
//!
//! This is the defensive counterpart of the malicious model: whatever
//! arrives in the buffer, a correct process's externally visible guarantees
//! (`d_p` irrevocable, phase monotone) hold.

use proptest::prelude::*;

use bt_core::DeadMsg;
use bt_core::{
    Config, FailStop, FailStopMsg, InitiallyDead, Malicious, MaliciousKind, MaliciousMsg, Phase,
    Simple, SimpleMsg, Termination,
};
use simnet::{Ctx, Envelope, Process, ProcessId, SimRng, Value};

fn value_strategy() -> impl Strategy<Value = Value> {
    any::<bool>().prop_map(Value::from)
}

fn failstop_msg() -> impl Strategy<Value = FailStopMsg> {
    (0u64..6, value_strategy(), 0usize..12).prop_map(|(phase, value, cardinality)| FailStopMsg {
        phase,
        value,
        cardinality,
    })
}

fn malicious_msg(n: usize) -> impl Strategy<Value = MaliciousMsg> {
    (
        any::<bool>(),
        0..n,
        value_strategy(),
        prop_oneof![(0u64..6).prop_map(Phase::At), Just(Phase::Any)],
    )
        .prop_map(|(is_echo, subject, value, phase)| MaliciousMsg {
            kind: if is_echo {
                MaliciousKind::Echo
            } else {
                MaliciousKind::Initial
            },
            subject: ProcessId::new(subject),
            value,
            phase,
        })
}

fn simple_msg() -> impl Strategy<Value = SimpleMsg> {
    (0u64..6, value_strategy()).prop_map(|(phase, value)| SimpleMsg { phase, value })
}

fn dead_msg(n: usize) -> impl Strategy<Value = DeadMsg> {
    prop_oneof![
        value_strategy().prop_map(|value| DeadMsg::Stage1 { value }),
        (value_strategy(), proptest::collection::vec(0..n, 0..=n)).prop_map(|(value, anc)| {
            DeadMsg::Stage2 {
                value,
                ancestors: anc.into_iter().map(ProcessId::new).collect(),
            }
        }),
    ]
}

/// Drives a process through an arbitrary delivery sequence, checking the
/// universal invariants after every step.
fn drive<P: Process>(
    mut p: P,
    n: usize,
    deliveries: Vec<(usize, P::Msg)>,
) -> Result<(), TestCaseError>
where
    P::Msg: Clone,
{
    let me = ProcessId::new(0);
    let mut outbox = Vec::new();
    let mut rng = SimRng::seed(1);
    {
        let mut ctx = Ctx::new(me, n, 0, &mut outbox, &mut rng);
        p.on_start(&mut ctx);
    }
    let mut decided: Option<Value> = None;
    let mut last_phase = p.phase();
    for (step, (sender, msg)) in deliveries.into_iter().enumerate() {
        outbox.clear();
        let mut ctx = Ctx::new(me, n, step as u64 + 1, &mut outbox, &mut rng);
        p.on_receive(Envelope::new(ProcessId::new(sender % n), msg), &mut ctx);
        // d_p is irrevocable.
        if let Some(v) = decided {
            prop_assert_eq!(p.decision(), Some(v), "decision changed!");
        } else {
            decided = p.decision();
        }
        // phaseno never decreases.
        prop_assert!(p.phase() >= last_phase, "phase went backwards");
        last_phase = p.phase();
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn failstop_survives_arbitrary_messages(
        input in value_strategy(),
        deliveries in proptest::collection::vec((0usize..5, failstop_msg()), 0..120),
    ) {
        let config = Config::fail_stop(5, 2).unwrap();
        drive(FailStop::new(config, input), 5, deliveries)?;
    }

    #[test]
    fn malicious_survives_arbitrary_messages(
        input in value_strategy(),
        wildcard_exit in any::<bool>(),
        deliveries in proptest::collection::vec((0usize..7, malicious_msg(7)), 0..150),
    ) {
        let config = Config::malicious(7, 2).unwrap();
        let termination = if wildcard_exit {
            Termination::WildcardExit
        } else {
            Termination::Continue
        };
        drive(
            Malicious::with_termination(config, input, termination),
            7,
            deliveries,
        )?;
    }

    #[test]
    fn simple_survives_arbitrary_messages(
        input in value_strategy(),
        deliveries in proptest::collection::vec((0usize..7, simple_msg()), 0..150),
    ) {
        let config = Config::malicious(7, 2).unwrap();
        drive(Simple::new(config, input), 7, deliveries)?;
    }

    #[test]
    fn initially_dead_survives_arbitrary_messages(
        input in value_strategy(),
        deliveries in proptest::collection::vec((0usize..5, dead_msg(5)), 0..120),
    ) {
        drive(InitiallyDead::new(5, input), 5, deliveries)?;
    }

    /// Forged initials (claimed subject ≠ envelope sender) must produce NO
    /// echo, whatever else is going on.
    #[test]
    fn forged_initials_never_echoed(
        input in value_strategy(),
        forged_subject in 1usize..7,
        sender in 2usize..7,
        t in 0u64..4,
        v in value_strategy(),
    ) {
        prop_assume!(forged_subject != sender);
        let config = Config::malicious(7, 2).unwrap();
        let mut p = Malicious::new(config, input);
        let mut outbox: Vec<(ProcessId, MaliciousMsg)> = Vec::new();
        let mut rng = SimRng::seed(0);
        {
            let mut ctx = Ctx::new(ProcessId::new(0), 7, 0, &mut outbox, &mut rng);
            p.on_start(&mut ctx);
        }
        outbox.clear();
        let forged = MaliciousMsg::initial(ProcessId::new(forged_subject), v, t);
        let mut ctx = Ctx::new(ProcessId::new(0), 7, 1, &mut outbox, &mut rng);
        p.on_receive(Envelope::new(ProcessId::new(sender), forged), &mut ctx);
        prop_assert!(outbox.is_empty(), "forged initial was echoed: {outbox:?}");
    }
}
