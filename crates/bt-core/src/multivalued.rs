//! Extension: multi-valued consensus by bitwise reduction to the binary
//! Figure 2 protocol.
//!
//! The paper treats binary consensus (`i_p ∈ {0, 1}`); agreeing on richer
//! values is the natural follow-on. The classical reduction runs one binary
//! instance per bit, all in parallel over tagged messages:
//!
//! * **Agreement** is inherited bit by bit: all correct processes assemble
//!   the same bit vector.
//! * **Unanimity validity** is inherited: if every correct process starts
//!   with the same `w`-bit value, every bit instance is unanimous and the
//!   decision is exactly that value.
//! * With *divergent* inputs, the decided value may mix bits from
//!   different inputs (and so may equal nobody's input) — the standard
//!   caveat of the bitwise reduction, left as-is because the paper's
//!   validity notion (bivalence) does not require more.
//!
//! Resilience is the Figure 2 bound, `k ≤ ⌊(n−1)/3⌋`, since each bit runs
//! that protocol verbatim.

use std::sync::{Arc, Mutex};

use simnet::{Ctx, Envelope, Process, Value, Wire, WireReader};

use crate::{Config, Malicious, MaliciousMsg, Termination};

/// A bit-tagged Figure 2 message: `(bit index, inner message)`.
pub type MultiMsg = (u8, MaliciousMsg);

/// Shared slot for observing multi-valued decisions from outside the
/// engine (the engine's [`RunReport`](simnet::RunReport) only carries the
/// binary facade).
pub type WordObserver = Arc<Mutex<Vec<Option<u64>>>>;

/// Creates an observer with one slot per process.
#[must_use]
pub fn word_observer(n: usize) -> WordObserver {
    Arc::new(Mutex::new(vec![None; n]))
}

/// Multi-valued Byzantine consensus on `width`-bit unsigned values, by
/// parallel bitwise reduction to [`Malicious`].
///
/// # Examples
///
/// ```
/// use bt_core::{Config, MultiValued};
/// use simnet::{Role, Sim};
///
/// let config = Config::malicious(4, 1)?;
/// let mut b = Sim::builder();
/// for _ in 0..4 {
///     // Everyone proposes 0xCAFE: unanimity must decide exactly 0xCAFE.
///     b.process(Box::new(MultiValued::new(config, 16, 0xCAFE)), Role::Correct);
/// }
/// let report = b.seed(7).step_limit(16_000_000).build().run();
/// assert!(report.agreement());
/// let winner = report.decisions[0].expect("decided");
/// # let _ = winner;
/// # Ok::<(), bt_core::ConfigError>(())
/// ```
#[derive(Debug)]
pub struct MultiValued {
    bits: Vec<Malicious>,
    decided_word: Option<u64>,
    decided_phase: Option<u64>,
    observer: Option<(WordObserver, usize)>,
}

impl MultiValued {
    /// Creates a process proposing the low `width` bits of `input`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds 64.
    #[must_use]
    pub fn new(config: Config, width: u8, input: u64) -> Self {
        MultiValued::with_termination(config, width, input, Termination::default())
    }

    /// Creates a process with an explicit post-decision behaviour for the
    /// underlying bit instances. Long-lived hosts that retire decided
    /// instances (the `rsm` replicated log) use
    /// [`Termination::WildcardExit`] so laggards can still finish a slot
    /// from the retransmitted message history alone.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds 64.
    #[must_use]
    pub fn with_termination(
        config: Config,
        width: u8,
        input: u64,
        termination: Termination,
    ) -> Self {
        assert!((1..=64).contains(&width), "width must be 1..=64");
        let bits = (0..width)
            .map(|b| {
                Malicious::with_termination(config, Value::from(input >> b & 1 == 1), termination)
            })
            .collect();
        MultiValued {
            bits,
            decided_word: None,
            decided_phase: None,
            observer: None,
        }
    }

    /// Whether every bit instance has left the protocol (possible only
    /// under a halting [`Termination`] policy).
    #[must_use]
    pub fn all_halted(&self) -> bool {
        self.bits.iter().all(Process::halted)
    }

    /// Attaches a [`WordObserver`]; on decision, slot `slot` receives the
    /// decided word (how tests and applications read the multi-valued
    /// result out of a finished run).
    #[must_use]
    pub fn with_observer(mut self, observer: WordObserver, slot: usize) -> Self {
        self.observer = Some((observer, slot));
        self
    }

    /// The number of parallel bit instances.
    #[must_use]
    pub fn width(&self) -> u8 {
        self.bits.len() as u8
    }

    /// The decided multi-valued result, once every bit instance decided.
    #[must_use]
    pub fn decided_word(&self) -> Option<u64> {
        self.decided_word
    }

    fn check_all_decided(&mut self) {
        if self.decided_word.is_some() {
            return;
        }
        let mut word = 0u64;
        for (b, inst) in self.bits.iter().enumerate() {
            match inst.decision() {
                Some(Value::One) => word |= 1 << b,
                Some(Value::Zero) => {}
                None => return,
            }
        }
        self.decided_word = Some(word);
        self.decided_phase = self.bits.iter().filter_map(Process::decision_phase).max();
        if let Some((observer, slot)) = &self.observer {
            observer.lock().expect("observer lock")[*slot] = Some(word);
        }
    }

    /// Runs `f` on bit instance `b` with a bit-tagging context wrapper.
    fn with_instance(
        &mut self,
        b: u8,
        ctx: &mut Ctx<'_, MultiMsg>,
        f: impl FnOnce(&mut Malicious, &mut Ctx<'_, MaliciousMsg>),
    ) {
        let mut inner_out: Vec<(simnet::ProcessId, MaliciousMsg)> = Vec::new();
        {
            let mut inner_ctx = Ctx::new(ctx.me(), ctx.n(), ctx.step(), &mut inner_out, ctx.rng());
            f(&mut self.bits[b as usize], &mut inner_ctx);
        }
        for (to, msg) in inner_out {
            ctx.send(to, (b, msg));
        }
    }
}

impl Process for MultiValued {
    type Msg = MultiMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, MultiMsg>) {
        for b in 0..self.width() {
            self.with_instance(b, ctx, |inst, c| inst.on_start(c));
        }
        self.check_all_decided();
    }

    fn on_receive(&mut self, env: Envelope<MultiMsg>, ctx: &mut Ctx<'_, MultiMsg>) {
        let (b, inner) = env.msg;
        if b >= self.width() {
            return; // nonsense tag from a malicious sender
        }
        let from = env.from;
        self.with_instance(b, ctx, |inst, c| {
            inst.on_receive(Envelope::new(from, inner), c);
        });
        self.check_all_decided();
    }

    /// Binary-decision view required by [`Process`]: the **parity** of the
    /// decided word. Use [`MultiValued::decided_word`] for the real result.
    fn decision(&self) -> Option<Value> {
        self.decided_word
            .map(|w| Value::from(w.count_ones() % 2 == 1))
    }

    fn phase(&self) -> u64 {
        self.bits.iter().map(Process::phase).max().unwrap_or(0)
    }

    fn decision_phase(&self) -> Option<u64> {
        self.decided_phase
    }

    fn snapshot(&self) -> Option<Vec<u8>> {
        // Composes the per-bit Figure 2 snapshots (config and observer are
        // constructor arguments, so only mutable state is captured). If any
        // bit instance cannot checkpoint, the composite cannot either.
        let mut bit_states = Vec::with_capacity(self.bits.len());
        for inst in &self.bits {
            bit_states.push(inst.snapshot()?);
        }
        let mut out = Vec::new();
        self.decided_word.encode(&mut out);
        self.decided_phase.encode(&mut out);
        bit_states.encode(&mut out);
        Some(out)
    }

    fn restore(&mut self, bytes: &[u8]) -> bool {
        let mut r = WireReader::new(bytes);
        let Ok(decided_word) = Option::<u64>::decode(&mut r) else {
            return false;
        };
        let Ok(decided_phase) = Option::<u64>::decode(&mut r) else {
            return false;
        };
        let Ok(bit_states) = Vec::<Vec<u8>>::decode(&mut r) else {
            return false;
        };
        if r.finish().is_err() || bit_states.len() != self.bits.len() {
            return false;
        }
        // Restore bit instances onto scratch copies first: a failure
        // mid-way must leave `self` unchanged so the caller can fall back
        // to replay from genesis.
        let mut restored = self.bits.clone();
        for (inst, state) in restored.iter_mut().zip(&bit_states) {
            if !inst.restore(state) {
                return false;
            }
        }
        self.bits = restored;
        self.decided_word = decided_word;
        self.decided_phase = decided_phase;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{Role, Sim};

    /// Runs n multi-valued processes; returns their decided words (read
    /// through a [`WordObserver`]).
    fn run(n: usize, k: usize, width: u8, inputs: &[u64], seed: u64) -> Vec<Option<u64>> {
        let config = Config::malicious(n, k).unwrap();
        let observer = word_observer(n);
        let mut b = Sim::builder();
        for (slot, &input) in inputs.iter().enumerate() {
            b.process(
                Box::new(
                    MultiValued::new(config, width, input)
                        .with_observer(Arc::clone(&observer), slot),
                ),
                Role::Correct,
            );
        }
        let report = b.seed(seed).step_limit(32_000_000).build().run();
        assert!(report.all_correct_decided(), "{:?}", report.status);
        assert!(report.agreement());
        let words = observer.lock().unwrap().clone();
        words
    }

    #[test]
    fn unanimous_word_is_decided_verbatim() {
        // Direct state-machine test: feed a 3-process system by hand via
        // the engine and inspect decided_word through a scripted run.
        let config = Config::malicious(4, 1).unwrap();
        let input = 0b1011_0010u64;
        let mut b = Sim::builder();
        for _ in 0..4 {
            b.process(Box::new(MultiValued::new(config, 8, input)), Role::Correct);
        }
        let report = b.seed(3).step_limit(32_000_000).build().run();
        assert!(report.all_correct_decided());
        // Unanimity ⇒ every bit instance decides its unanimous input bit ⇒
        // parity of decision equals parity of the input word.
        let expected_parity = Value::from(input.count_ones() % 2 == 1);
        for i in 0..4 {
            assert_eq!(report.decisions[i], Some(expected_parity));
        }
    }

    #[test]
    fn divergent_words_still_agree() {
        let inputs = [0xDEAD, 0xBEEF, 0x1234, 0xABCD, 0x0F0F, 0xF0F0, 0x5555];
        for seed in 0..5 {
            let words = run(7, 2, 16, &inputs, seed);
            let first = words[0].expect("decided");
            assert!(
                words.iter().all(|w| *w == Some(first)),
                "seed {seed}: {words:?}"
            );
        }
    }

    #[test]
    fn unanimous_words_decide_verbatim_via_observer() {
        for &input in &[0u64, 0xFFFF, 0b1010_1010, 0xCAFE] {
            let words = run(4, 1, 16, &[input; 4], 11);
            assert!(
                words.iter().all(|w| *w == Some(input & 0xFFFF)),
                "input {input:#x}: {words:?}"
            );
        }
    }

    #[test]
    fn width_bounds_enforced() {
        let config = Config::malicious(4, 1).unwrap();
        let p = MultiValued::new(config, 64, u64::MAX);
        assert_eq!(p.width(), 64);
    }

    #[test]
    #[should_panic(expected = "width must be 1..=64")]
    fn zero_width_rejected() {
        let config = Config::malicious(4, 1).unwrap();
        let _ = MultiValued::new(config, 0, 0);
    }

    #[test]
    fn snapshot_restore_round_trips_mid_protocol() {
        let config = Config::malicious(4, 1).unwrap();
        let mut p = MultiValued::new(config, 8, 0b1100_0101);
        let mut outbox = Vec::new();
        let mut rng = simnet::SimRng::seed(9);
        {
            let mut ctx = Ctx::new(simnet::ProcessId::new(0), 4, 0, &mut outbox, &mut rng);
            p.on_start(&mut ctx);
        }
        // Feed the phase-0 initial messages of a peer back in so the bit
        // instances hold non-trivial mid-protocol state.
        let peer_msgs: Vec<MultiMsg> = (0..8)
            .map(|b| {
                (
                    b,
                    MaliciousMsg::initial(simnet::ProcessId::new(1), Value::One, 0),
                )
            })
            .collect();
        for msg in peer_msgs {
            let mut ctx = Ctx::new(simnet::ProcessId::new(0), 4, 1, &mut outbox, &mut rng);
            p.on_receive(Envelope::new(simnet::ProcessId::new(1), msg), &mut ctx);
        }
        let bytes = p.snapshot().expect("multivalued snapshots");

        let mut fresh = MultiValued::new(config, 8, 0);
        assert!(fresh.restore(&bytes), "restore accepts its own snapshot");
        assert_eq!(fresh.snapshot().unwrap(), bytes, "round trip is stable");
        assert_eq!(fresh.decided_word(), p.decided_word());
        assert_eq!(fresh.phase(), p.phase());

        // Wrong width ⇒ rejected, state unchanged.
        let mut narrow = MultiValued::new(config, 4, 0);
        assert!(!narrow.restore(&bytes));
        assert!(!narrow.restore(b"garbage"));
    }

    #[test]
    fn nonsense_bit_tags_are_dropped() {
        let config = Config::malicious(4, 1).unwrap();
        let mut p = MultiValued::new(config, 4, 0b1010);
        let mut outbox = Vec::new();
        let mut rng = simnet::SimRng::seed(0);
        {
            let mut ctx = Ctx::new(simnet::ProcessId::new(0), 4, 0, &mut outbox, &mut rng);
            p.on_start(&mut ctx);
        }
        let before = outbox.len();
        // Tag 9 exceeds width 4: ignored without panic or sends.
        let bogus = (
            9u8,
            MaliciousMsg::initial(simnet::ProcessId::new(1), Value::One, 0),
        );
        {
            let mut ctx = Ctx::new(simnet::ProcessId::new(0), 4, 1, &mut outbox, &mut rng);
            p.on_receive(Envelope::new(simnet::ProcessId::new(1), bogus), &mut ctx);
        }
        assert_eq!(outbox.len(), before);
    }
}
