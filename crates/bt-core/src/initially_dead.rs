//! The §5 footnote protocol: consensus when all faulty processes are
//! *initially dead*, under the intermediate interpretation of bivalence.
//!
//! §5 observes that the interpretations of bivalence are not equivalent: for
//! the initially-dead fault model, [Fisc83]'s protocol is optimal
//! (`⌊(n−1)/2⌋` faults) under *strong* bivalence, while under the paper's
//! intermediate interpretation a protocol may fix the decision to `0`
//! whenever any process is faulty. The footnote sketches the modification:
//! construct the transitive closure `G⁺` as in [Fisc83]; *"if `G⁺` turns out
//! to be strongly connected, and it contains all the processes, then all the
//! processes will know it, and they will decide using an agreed bivalent
//! function of all the inputs. Otherwise, they all decide 0."*
//!
//! # Reconstruction
//!
//! The footnote is a sketch; this module implements it as the following
//! two-stage protocol (the [Fisc83] construction, with the footnote's
//! decision rule — see `DESIGN.md` for the substitution note):
//!
//! 1. **Stage 1** — broadcast `(p, v_p)`; collect stage-1 messages until
//!    `L` distinct senders (including `p` itself) have been heard, then
//!    freeze that set as `p`'s *ancestors* `E_p` (the edges of `G` into
//!    `p`). The quorum `L` defaults to a majority, `⌈(n+1)/2⌉`.
//! 2. **Stage 2** — broadcast `(p, v_p, E_p)`; collect everyone's edge
//!    lists until `p`'s *ancestor closure* (the least set containing `p`
//!    and closed under `q ↦ E_q`) is fully covered.
//! 3. **Decide** — compute the unique **source strongly-connected
//!    component** `C` of the collected graph (unique because each `E_q` is
//!    a majority and two disjoint closed sets cannot both hold majorities —
//!    the [Fisc83] initial-clique argument). If `C` contains **all** `n`
//!    processes — equivalently, `G⁺` is strongly connected and spans
//!    everything — decide the majority of all `n` inputs (an agreed
//!    bivalent function); otherwise decide `0`.
//!
//! Every process that decides computes the same `C`, so decisions agree.
//! If even one process is initially dead it appears in nobody's edge list,
//! `C ≠ [n]`, and the decision is pinned to `0` — exactly the intermediate
//! bivalence behaviour. If all processes are correct, schedules exist
//! realising both `C = [n]` (decide the input majority) and `C ⊊ [n]`
//! (decide 0), so both values are reachable.

use std::collections::{BTreeMap, BTreeSet};

use simnet::{Ctx, Envelope, Process, ProcessId, Value};

/// Wire messages of the initially-dead protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeadMsg {
    /// Stage 1: the sender announces its input value.
    Stage1 {
        /// The sender's input.
        value: Value,
    },
    /// Stage 2: the sender reports its input and frozen ancestor set.
    Stage2 {
        /// The sender's input.
        value: Value,
        /// The sender's stage-1 ancestors (senders it heard, incl. itself).
        ancestors: Vec<ProcessId>,
    },
}

/// Which decision rule an [`InitiallyDead`] instance applies once it has
/// computed the initial clique `C` (the unique source strongly-connected
/// component of `G⁺`).
///
/// The two rules realise the two interpretations of bivalence §5
/// contrasts:
///
/// * [`DecisionRule::BrachaToueg`] — the footnote's rule: decide an agreed
///   bivalent function of **all** inputs if `C` spans every process,
///   otherwise `0`. *Intermediate* bivalence: any fault pins the decision.
/// * [`DecisionRule::FischerLynchPaterson`] — the \[Fisc83\] rule the
///   footnote modifies: decide the agreed function of the **clique
///   members'** inputs, whatever the clique is. *Strong* bivalence: both
///   values stay reachable even with dead processes (their inputs simply
///   drop out of the vote).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DecisionRule {
    /// The §5 footnote rule (intermediate bivalence).
    #[default]
    BrachaToueg,
    /// The original [Fisc83] rule (strong bivalence).
    FischerLynchPaterson,
}

/// One process of the reconstructed §5 initially-dead protocol.
///
/// # Examples
///
/// All processes correct: the decision tracks the input majority whenever
/// the schedule lets `G⁺` span everyone (and is `0` otherwise — both are
/// reachable, which is the point of intermediate bivalence):
///
/// ```
/// use bt_core::InitiallyDead;
/// use simnet::{Role, Sim, Value};
///
/// let mut b = Sim::builder();
/// for _ in 0..4 {
///     b.process(Box::new(InitiallyDead::new(4, Value::One)), Role::Correct);
/// }
/// let report = b.seed(2).build().run();
/// assert!(report.agreement());
/// assert!(report.all_correct_decided());
/// ```
#[derive(Debug)]
pub struct InitiallyDead {
    n: usize,
    quorum: usize,
    input: Value,
    /// Stage-1 senders heard so far (includes self once own broadcast loops
    /// back). `None` entries of `inputs` mean "not heard yet".
    heard: BTreeSet<ProcessId>,
    inputs: Vec<Option<Value>>,
    /// Frozen at stage-1 completion.
    ancestors: Option<Vec<ProcessId>>,
    /// Everyone's reported edge lists (stage 2).
    edge_lists: BTreeMap<ProcessId, Vec<ProcessId>>,
    rule: DecisionRule,
    decision: Option<Value>,
    halted: bool,
}

impl InitiallyDead {
    /// Creates a process with the default majority quorum `⌈(n+1)/2⌉`,
    /// which tolerates up to `⌊(n−1)/2⌋` initially-dead processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize, input: Value) -> Self {
        InitiallyDead::with_quorum(n, n / 2 + 1, input)
    }

    /// Creates a process using the original [Fisc83] decision rule — the
    /// strong-bivalence protocol the footnote modifies. Tolerates the same
    /// `⌊(n−1)/2⌋` dead processes, but decides the majority of the *initial
    /// clique's* inputs instead of pinning faulty runs to 0.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn flp(n: usize, input: Value) -> Self {
        let mut p = InitiallyDead::with_quorum(n, n / 2 + 1, input);
        p.rule = DecisionRule::FischerLynchPaterson;
        p
    }

    /// The decision rule in force.
    #[must_use]
    pub fn rule(&self) -> DecisionRule {
        self.rule
    }

    /// Creates a process with an explicit stage-1 quorum `L` (the number of
    /// distinct stage-1 senders, including itself, to wait for). Larger `L`
    /// makes `C = [n]` easier to reach but tolerates fewer dead processes
    /// (`n − L`).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `quorum == 0`, or `quorum > n`.
    #[must_use]
    pub fn with_quorum(n: usize, quorum: usize, input: Value) -> Self {
        assert!(n > 0, "a system needs at least one process");
        assert!((1..=n).contains(&quorum), "quorum must be between 1 and n");
        assert!(
            2 * quorum > n,
            "quorum must be a majority for the source component to be unique"
        );
        InitiallyDead {
            n,
            quorum,
            input,
            heard: BTreeSet::new(),
            inputs: vec![None; n],
            ancestors: None,
            edge_lists: BTreeMap::new(),
            rule: DecisionRule::default(),
            decision: None,
            halted: false,
        }
    }

    /// Number of dead processes this instance tolerates: `n − L`.
    #[must_use]
    pub fn tolerated_dead(&self) -> usize {
        self.n - self.quorum
    }

    /// The ancestor closure of `me`: least set containing `me` closed under
    /// the collected edge lists. `None` if some member's list is missing.
    fn closure(&self, me: ProcessId) -> Option<BTreeSet<ProcessId>> {
        let mut set = BTreeSet::new();
        let mut stack = vec![me];
        while let Some(q) = stack.pop() {
            if !set.insert(q) {
                continue;
            }
            let list = self.edge_lists.get(&q)?;
            for r in list {
                if !set.contains(r) {
                    stack.push(*r);
                }
            }
        }
        Some(set)
    }

    /// The unique source SCC of the collected graph, computed over an
    /// ancestor-closed vertex set. A vertex `q` is in the source SCC iff
    /// every member of its own closure can reach it; with majority edge
    /// lists the source SCC is the set of vertices whose closure equals the
    /// closure of every one of their ancestors — computed here directly as
    /// the set of `q` in `closed` whose closure contains no vertex that
    /// fails to reach `q`. For the small `n` of interest an `O(n²)`
    /// reachability sweep is plenty.
    fn source_component(&self, closed: &BTreeSet<ProcessId>) -> BTreeSet<ProcessId> {
        // reaches[a] = set of vertices reachable from a by following
        // ancestor edges (a → its ancestors).
        let mut source = BTreeSet::new();
        for &q in closed {
            let Some(cl_q) = self.closure(q) else {
                continue;
            };
            // q is in the source SCC iff q is reachable from every vertex of
            // its own closure (i.e. the closure is mutually reachable).
            let mutually = cl_q
                .iter()
                .all(|&r| self.closure(r).is_some_and(|cl_r| cl_r.contains(&q)));
            if mutually {
                source.insert(q);
            }
        }
        source
    }

    /// Tries to decide; runs whenever new stage-2 information arrives.
    fn try_decide(&mut self, me: ProcessId) {
        if self.decision.is_some() {
            return;
        }
        let Some(closed) = self.closure(me) else {
            return; // still missing edge lists
        };
        let clique = self.source_component(&closed);
        if std::env::var_os("BT_DEBUG_DEAD").is_some() {
            eprintln!(
                "p{} closed={:?} clique={:?} lists={:?}",
                me.index(),
                closed.iter().map(|p| p.index()).collect::<Vec<_>>(),
                clique.iter().map(|p| p.index()).collect::<Vec<_>>(),
                self.edge_lists
            );
        }
        debug_assert!(
            !clique.is_empty(),
            "a covered closure always contains its source SCC"
        );
        let value = match self.rule {
            DecisionRule::BrachaToueg => {
                if clique.len() == self.n {
                    // The agreed bivalent function: majority of all inputs,
                    // ties to one. All inputs are known: every process is
                    // in the clique and its stage-2 carried its input.
                    let ones = (0..self.n)
                        .filter(|i| self.inputs[*i] == Some(Value::One))
                        .count();
                    Value::from(2 * ones >= self.n)
                } else {
                    Value::Zero
                }
            }
            DecisionRule::FischerLynchPaterson => {
                // [Fisc83]: the agreed function over the clique's inputs.
                // Every clique member's input is known (its stage-2 is in
                // hand — the clique is inside the covered closure).
                let ones = clique
                    .iter()
                    .filter(|q| self.inputs[q.index()] == Some(Value::One))
                    .count();
                Value::from(2 * ones >= clique.len())
            }
        };
        self.decision = Some(value);
        self.halted = true;
    }
}

impl Process for InitiallyDead {
    type Msg = DeadMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, DeadMsg>) {
        // A process knows its own input even if its self-addressed messages
        // are still in flight when it decides.
        self.inputs[ctx.me().index()] = Some(self.input);
        ctx.broadcast(DeadMsg::Stage1 { value: self.input });
    }

    fn on_receive(&mut self, env: Envelope<DeadMsg>, ctx: &mut Ctx<'_, DeadMsg>) {
        if self.halted {
            return;
        }
        let me = ctx.me();
        match env.msg {
            DeadMsg::Stage1 { value } => {
                if self.ancestors.is_some() {
                    return; // edges frozen; late stage-1 messages ignored
                }
                self.heard.insert(env.from);
                self.inputs[env.from.index()] = Some(value);
                if self.heard.len() >= self.quorum {
                    let ancestors: Vec<ProcessId> = self.heard.iter().copied().collect();
                    self.ancestors = Some(ancestors.clone());
                    self.edge_lists.insert(me, ancestors.clone());
                    ctx.broadcast(DeadMsg::Stage2 {
                        value: self.input,
                        ancestors,
                    });
                    self.try_decide(me);
                }
            }
            DeadMsg::Stage2 { value, ancestors } => {
                if ancestors.iter().any(|p| p.index() >= self.n) {
                    return; // out-of-system ancestor ids: Byzantine garbage
                }
                self.inputs[env.from.index()] = Some(value);
                self.edge_lists.entry(env.from).or_insert(ancestors);
                if self.ancestors.is_some() {
                    self.try_decide(me);
                }
            }
        }
    }

    fn decision(&self) -> Option<Value> {
        self.decision
    }

    fn phase(&self) -> u64 {
        match (&self.ancestors, self.decision) {
            (None, _) => 0,
            (Some(_), None) => 1,
            (_, Some(_)) => 2,
        }
    }

    fn halted(&self) -> bool {
        self.halted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{Role, Sim};

    /// A process that is dead from the start.
    #[derive(Debug)]
    struct Dead;

    impl Process for Dead {
        type Msg = DeadMsg;
        fn on_start(&mut self, _ctx: &mut Ctx<'_, DeadMsg>) {}
        fn on_receive(&mut self, _e: Envelope<DeadMsg>, _ctx: &mut Ctx<'_, DeadMsg>) {}
        fn decision(&self) -> Option<Value> {
            None
        }
        fn phase(&self) -> u64 {
            0
        }
        fn halted(&self) -> bool {
            true
        }
    }

    fn run(n: usize, dead: usize, inputs: &[Value], seed: u64) -> simnet::RunReport {
        let mut b = Sim::builder();
        for (i, &v) in inputs.iter().enumerate() {
            if i < n - dead {
                b.process(Box::new(InitiallyDead::new(n, v)), Role::Correct);
            } else {
                b.process(Box::new(Dead), Role::Faulty);
            }
        }
        b.seed(seed).step_limit(1_000_000).build().run()
    }

    #[test]
    fn all_correct_agree_and_terminate() {
        let inputs = [Value::One, Value::Zero, Value::One, Value::One, Value::Zero];
        for seed in 0..30 {
            let report = run(5, 0, &inputs, seed);
            assert!(report.agreement(), "seed {seed}");
            assert!(report.all_correct_decided(), "seed {seed}");
        }
    }

    #[test]
    fn with_any_dead_process_decision_is_zero() {
        // Intermediate bivalence: one or more faulty ⇒ decision fixed to 0,
        // even if every live input is 1.
        let inputs = [Value::One; 6];
        for dead in 1..=2 {
            for seed in 0..15 {
                let report = run(6, dead, &inputs, seed);
                assert!(report.all_correct_decided(), "dead={dead} seed={seed}");
                assert_eq!(
                    report.decided_value(),
                    Some(Value::Zero),
                    "dead={dead} seed={seed}: faulty runs must decide 0"
                );
            }
        }
    }

    #[test]
    fn too_many_dead_blocks_instead_of_misdeciding() {
        // 4 dead of 6 exceeds the quorum's tolerance (n−L = 2): the live
        // processes can never complete stage 1, and must not decide at all.
        let inputs = [Value::One; 6];
        let report = run(6, 4, &inputs, 3);
        assert!(!report.all_correct_decided());
        assert!(report.agreement(), "vacuous agreement still holds");
    }

    #[test]
    fn both_values_reachable_when_all_correct() {
        // Bivalence under the intermediate interpretation: with all-correct
        // majority-1 inputs, some schedules decide 1 (G⁺ spans everyone) and
        // some decide 0 (it does not).
        let inputs = [Value::One, Value::One, Value::One, Value::Zero, Value::Zero];
        let mut saw = [false, false];
        for seed in 0..200 {
            let report = run(5, 0, &inputs, seed);
            if let Some(v) = report.decided_value() {
                saw[v.index()] = true;
            }
            if saw[0] && saw[1] {
                break;
            }
        }
        assert!(saw[0], "the 0 outcome (incomplete G⁺) must be reachable");
        assert!(saw[1], "the majority outcome must be reachable");
    }

    #[test]
    fn unanimous_zero_always_decides_zero() {
        let inputs = [Value::Zero; 4];
        for seed in 0..10 {
            let report = run(4, 0, &inputs, seed);
            assert_eq!(report.decided_value(), Some(Value::Zero));
        }
    }

    #[test]
    fn single_process_decides_own_input() {
        let report = run(1, 0, &[Value::One], 0);
        assert_eq!(report.decided_value(), Some(Value::One));
    }

    #[test]
    #[should_panic(expected = "majority")]
    fn sub_majority_quorum_rejected() {
        let _ = InitiallyDead::with_quorum(5, 2, Value::One);
    }

    #[test]
    fn flp_rule_decides_live_majority_despite_dead() {
        // Strong bivalence: with dead processes, the FLP rule still
        // decides from the live clique's inputs — here all-1 live inputs
        // give 1 even though a process is dead (where the BT rule gives 0).
        let n = 6;
        for seed in 0..10 {
            let mut b = Sim::builder();
            for _ in 0..n - 1 {
                b.process(Box::new(InitiallyDead::flp(n, Value::One)), Role::Correct);
            }
            b.process(Box::new(Dead), Role::Faulty);
            let report = b.seed(seed).step_limit(1_000_000).build().run();
            assert!(report.agreement(), "seed {seed}");
            assert!(report.all_correct_decided(), "seed {seed}");
            assert_eq!(
                report.decided_value(),
                Some(Value::One),
                "seed {seed}: FLP rule decides the live majority"
            );
        }
    }

    #[test]
    fn flp_and_bt_rules_agree_when_all_correct_and_unanimous() {
        for rule_is_flp in [false, true] {
            let n = 4;
            let mut b = Sim::builder();
            for _ in 0..n {
                let p = if rule_is_flp {
                    InitiallyDead::flp(n, Value::One)
                } else {
                    InitiallyDead::new(n, Value::One)
                };
                b.process(Box::new(p), Role::Correct);
            }
            let report = b.seed(5).step_limit(1_000_000).build().run();
            // Unanimous 1 inputs: BT decides 1 only when the clique spans
            // everyone; FLP always decides 1. Either way agreement holds
            // and the decided value is 1 or (BT, partial clique) 0.
            assert!(report.agreement());
            assert!(report.all_correct_decided());
            if rule_is_flp {
                assert_eq!(report.decided_value(), Some(Value::One));
            }
        }
    }

    #[test]
    fn tolerated_dead_reports_slack() {
        let p = InitiallyDead::new(7, Value::One);
        assert_eq!(p.tolerated_dead(), 3); // L = 4
    }
}
