//! Wire messages of the three Bracha-Toueg protocols.

use core::fmt;

use simnet::{ProcessId, Value};

/// A phase stamp: either a concrete phase number or the paper's `*`
/// wildcard.
///
/// The wildcard appears only in the Figure 2 termination procedure: a
/// process that has decided `i` broadcasts `(initial, p, i, *)` and
/// `(echo, q, i, *)` messages which "whenever a process receives them, it
/// sends them back to itself" — i.e. they participate in *every* later
/// phase. Receivers implement that by recording them as sticky
/// contributions rather than physically re-sending to self (same effect,
/// no infinite message loop; see `DESIGN.md`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// A concrete phase number.
    At(u64),
    /// The `*` wildcard: matches every phase, forever.
    Any,
}

impl Phase {
    /// Whether this stamp matches concrete phase `t`.
    #[must_use]
    pub fn matches(self, t: u64) -> bool {
        match self {
            Phase::At(p) => p == t,
            Phase::Any => true,
        }
    }

    /// Whether this stamp is strictly in the future of concrete phase `t`
    /// (wildcards never are: they match the present).
    #[must_use]
    pub fn is_after(self, t: u64) -> bool {
        match self {
            Phase::At(p) => p > t,
            Phase::Any => false,
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Phase::At(p) => write!(f, "{p}"),
            Phase::Any => write!(f, "*"),
        }
    }
}

/// A Figure 1 (fail-stop protocol) message: `(phaseno, value, cardinality)`.
///
/// `cardinality` is the size of the message set that gave the sender its
/// current value; a message whose cardinality exceeds `n/2` is a *witness*
/// for its value.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FailStopMsg {
    /// The sender's phase when it sent this message.
    pub phase: u64,
    /// The sender's current value.
    pub value: Value,
    /// The size of the message set backing `value`.
    pub cardinality: usize,
}

/// The two message types of the Figure 2 (malicious protocol) broadcast
/// primitive.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MaliciousKind {
    /// A first-hand state announcement.
    Initial,
    /// A relay of someone's announcement: "I saw `subject` claim `value`".
    Echo,
}

/// A Figure 2 (malicious protocol) message:
/// `(type, from, value, phaseno)` in the paper's notation. The paper's
/// `from` field — the process the message is *about* — is called `subject`
/// here to avoid confusion with the authenticated envelope sender.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MaliciousMsg {
    /// Initial or echo.
    pub kind: MaliciousKind,
    /// The process this message is about (for initials, a correct sender
    /// sets this to itself; the receiver checks it against the envelope).
    pub subject: ProcessId,
    /// The claimed value.
    pub value: Value,
    /// The phase stamp, possibly the `*` wildcard.
    pub phase: Phase,
}

impl MaliciousMsg {
    /// A first-hand announcement by `subject` of `value` in phase `t`.
    #[must_use]
    pub fn initial(subject: ProcessId, value: Value, t: u64) -> Self {
        MaliciousMsg {
            kind: MaliciousKind::Initial,
            subject,
            value,
            phase: Phase::At(t),
        }
    }

    /// An echo of `subject`'s claimed `value` in phase `t`.
    #[must_use]
    pub fn echo(subject: ProcessId, value: Value, t: u64) -> Self {
        MaliciousMsg {
            kind: MaliciousKind::Echo,
            subject,
            value,
            phase: Phase::At(t),
        }
    }
}

/// A §4.1 simple-variant message: just `(phaseno, value)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimpleMsg {
    /// The sender's phase when it sent this message.
    pub phase: u64,
    /// The sender's current value.
    pub value: Value,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_matching() {
        assert!(Phase::At(3).matches(3));
        assert!(!Phase::At(3).matches(4));
        assert!(Phase::Any.matches(0));
        assert!(Phase::Any.matches(u64::MAX));
    }

    #[test]
    fn phase_ordering() {
        assert!(Phase::At(5).is_after(4));
        assert!(!Phase::At(4).is_after(4));
        assert!(!Phase::Any.is_after(0), "wildcards are never deferred");
    }

    #[test]
    fn phase_display() {
        assert_eq!(Phase::At(7).to_string(), "7");
        assert_eq!(Phase::Any.to_string(), "*");
    }

    #[test]
    fn malicious_constructors() {
        let p = ProcessId::new(2);
        let i = MaliciousMsg::initial(p, Value::One, 4);
        assert_eq!(i.kind, MaliciousKind::Initial);
        assert_eq!(i.phase, Phase::At(4));
        let e = MaliciousMsg::echo(p, Value::Zero, 9);
        assert_eq!(e.kind, MaliciousKind::Echo);
        assert_eq!(e.subject, p);
    }
}
