//! The Figure 1 protocol: `⌊(n−1)/2⌋`-resilient consensus for fail-stop
//! faults.
//!
//! Each phase a process broadcasts `(phaseno, value, cardinality)` and waits
//! for `n−k` phase-`phaseno` messages. A message whose cardinality exceeds
//! `n/2` is a **witness** for its value; the paper proves no process can
//! collect witnesses for both values in the same phase. At the end of a
//! phase the process adopts the witnessed value if any (else the majority
//! value), sets its cardinality to the size of that value's message set, and
//! advances. It **decides** `i` on collecting more than `k` witnesses for
//! `i` — enough witnesses remain in the system to force every other process
//! to the same value. After deciding it broadcasts
//! `(phaseno, v, n−k)` and `(phaseno+1, v, n−k)` — both witnesses, since
//! `n−k > n/2` — so nobody blocks on its departure, and exits the protocol.
//!
//! Messages stamped with a *future* phase are buffered and replayed when the
//! process gets there (the paper re-sends them to self, which is
//! equivalent); messages from *past* phases are discarded.

use std::collections::BTreeMap;

use simnet::{Ctx, Envelope, Process, ProtocolEvent, Value, Wire, WireReader};

use crate::{Config, FailStopMsg};

/// One process of the Figure 1 fail-stop consensus protocol.
///
/// # Examples
///
/// Run seven processes, three of which may crash (`k = 3 = ⌊(7−1)/2⌋`):
///
/// ```
/// use bt_core::{Config, FailStop};
/// use simnet::{Role, Sim, Value};
///
/// let config = Config::fail_stop(7, 3)?;
/// let mut b = Sim::builder();
/// for i in 0..7 {
///     let input = Value::from(i % 2 == 0);
///     b.process(Box::new(FailStop::new(config, input)), Role::Correct);
/// }
/// let report = b.seed(7).build().run();
/// assert!(report.agreement());
/// assert!(report.all_correct_decided());
/// # Ok::<(), bt_core::ConfigError>(())
/// ```
#[derive(Clone, Debug)]
pub struct FailStop {
    config: Config,
    value: Value,
    cardinality: usize,
    phase: u64,
    message_count: [usize; 2],
    witness_count: [usize; 2],
    deferred: BTreeMap<u64, Vec<FailStopMsg>>,
    decision: Option<Value>,
    halted: bool,
}

impl FailStop {
    /// Creates a process with the given initial value (`i_p`).
    #[must_use]
    pub fn new(config: Config, input: Value) -> Self {
        FailStop {
            config,
            value: input,
            cardinality: 1,
            phase: 0,
            message_count: [0; 2],
            witness_count: [0; 2],
            deferred: BTreeMap::new(),
            decision: None,
            halted: false,
        }
    }

    /// The process's current value (`value` in Figure 1).
    #[must_use]
    pub fn value(&self) -> Value {
        self.value
    }

    /// The configuration this process runs under.
    #[must_use]
    pub fn config(&self) -> Config {
        self.config
    }

    /// Handles one phase-current message; returns `true` if the phase
    /// completed (so deferred messages for the next phase may now apply).
    fn count_message(&mut self, msg: FailStopMsg, ctx: &mut Ctx<'_, FailStopMsg>) -> bool {
        debug_assert_eq!(msg.phase, self.phase);
        self.message_count[msg.value.index()] += 1;
        if self.config.is_witness(msg.cardinality) {
            self.witness_count[msg.value.index()] += 1;
            ctx.emit(ProtocolEvent::WitnessReached {
                phase: self.phase,
                value: msg.value,
                cardinality: msg.cardinality,
            });
        }
        if self.message_count[0] + self.message_count[1] < self.config.quota() {
            return false;
        }
        self.end_phase(ctx);
        true
    }

    /// The end-of-phase block of Figure 1: value update, decision check,
    /// next-phase broadcast.
    fn end_phase(&mut self, ctx: &mut Ctx<'_, FailStopMsg>) {
        // "if there is i such that witness_count(i) > 0 then value := i
        //  else value := majority". Theorem 2's proof shows witnesses for
        // both values cannot coexist in one phase under the fail-stop
        // model; should out-of-model (Byzantine) traffic produce both
        // anyway, the larger witness set wins — a deterministic total
        // extension of Figure 1's "there is i" selection.
        let previous = self.value;
        if self.witness_count[0] > 0 || self.witness_count[1] > 0 {
            self.value = if self.witness_count[0] == self.witness_count[1] {
                Value::majority_of(self.message_count)
            } else {
                Value::from(self.witness_count[1] > self.witness_count[0])
            };
        } else {
            self.value = Value::majority_of(self.message_count);
        }
        if self.value != previous {
            ctx.emit(ProtocolEvent::ValueFlipped {
                phase: self.phase,
                from: previous,
                to: self.value,
            });
        }
        self.cardinality = self.message_count[self.value.index()];
        self.phase += 1;
        ctx.emit(ProtocolEvent::PhaseEntered { phase: self.phase });

        // Loop guard of Figure 1: exit once either witness count exceeds k.
        // Check the adopted value first so that out-of-model double-witness
        // phases decide the value they adopted.
        for v in [self.value, !self.value] {
            if self.config.enough_witnesses(self.witness_count[v.index()]) {
                self.decide(v, ctx);
                return;
            }
        }

        // Start the next phase.
        self.message_count = [0; 2];
        self.witness_count = [0; 2];
        ctx.broadcast(FailStopMsg {
            phase: self.phase,
            value: self.value,
            cardinality: self.cardinality,
        });
    }

    fn decide(&mut self, v: Value, ctx: &mut Ctx<'_, FailStopMsg>) {
        // Under the fail-stop model the witnessed value is always the
        // adopted value; align them explicitly so the exit broadcasts are
        // coherent even under out-of-model traffic.
        self.value = v;
        self.decision = Some(v);
        ctx.emit(ProtocolEvent::Decided {
            phase: self.phase,
            value: v,
        });
        // The exit broadcasts: cardinality n−k > n/2 makes both witnesses,
        // releasing everyone who would otherwise wait on this process in the
        // next two phases.
        ctx.broadcast(FailStopMsg {
            phase: self.phase,
            value: v,
            cardinality: self.config.quota(),
        });
        ctx.broadcast(FailStopMsg {
            phase: self.phase + 1,
            value: v,
            cardinality: self.config.quota(),
        });
        self.halted = true;
        self.deferred.clear();
        ctx.emit(ProtocolEvent::Halted { phase: self.phase });
    }

    /// Replays buffered messages that have become current. Completing a
    /// phase can make the next batch current, so loop.
    fn drain_deferred(&mut self, ctx: &mut Ctx<'_, FailStopMsg>) {
        while !self.halted {
            let Some(mut batch) = self.deferred.remove(&self.phase) else {
                return;
            };
            let mut ended = false;
            while let Some(msg) = batch.pop() {
                if self.count_message(msg, ctx) {
                    ended = true;
                    break;
                }
            }
            if ended {
                // Phase advanced; any unconsumed current-phase messages in
                // `batch` are now stale and correctly discarded.
                continue;
            }
            return;
        }
    }
}

impl Process for FailStop {
    type Msg = FailStopMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, FailStopMsg>) {
        ctx.broadcast(FailStopMsg {
            phase: 0,
            value: self.value,
            cardinality: self.cardinality,
        });
    }

    fn on_receive(&mut self, env: Envelope<FailStopMsg>, ctx: &mut Ctx<'_, FailStopMsg>) {
        if self.halted {
            return;
        }
        let msg = env.msg;
        if msg.phase < self.phase {
            return; // stale
        }
        if msg.phase > self.phase {
            self.deferred.entry(msg.phase).or_default().push(msg);
            return;
        }
        if self.count_message(msg, ctx) {
            self.drain_deferred(ctx);
        }
    }

    fn decision(&self) -> Option<Value> {
        self.decision
    }

    fn phase(&self) -> u64 {
        self.phase
    }

    fn halted(&self) -> bool {
        self.halted
    }

    fn snapshot(&self) -> Option<Vec<u8>> {
        // Config is rebuilt by the constructor; everything mutable goes in.
        // BTreeMap iterates in key order, so the bytes are canonical.
        let mut out = Vec::new();
        self.value.encode(&mut out);
        self.cardinality.encode(&mut out);
        self.phase.encode(&mut out);
        for c in self.message_count.iter().chain(&self.witness_count) {
            c.encode(&mut out);
        }
        let deferred: Vec<(u64, Vec<FailStopMsg>)> = self
            .deferred
            .iter()
            .map(|(&phase, msgs)| (phase, msgs.clone()))
            .collect();
        deferred.encode(&mut out);
        self.decision.encode(&mut out);
        self.halted.encode(&mut out);
        Some(out)
    }

    fn restore(&mut self, bytes: &[u8]) -> bool {
        let mut r = WireReader::new(bytes);
        let Ok(value) = Value::decode(&mut r) else {
            return false;
        };
        let Ok(cardinality) = usize::decode(&mut r) else {
            return false;
        };
        let Ok(phase) = u64::decode(&mut r) else {
            return false;
        };
        let mut counts = [0usize; 4];
        for c in &mut counts {
            let Ok(v) = usize::decode(&mut r) else {
                return false;
            };
            *c = v;
        }
        let Ok(deferred) = Vec::<(u64, Vec<FailStopMsg>)>::decode(&mut r) else {
            return false;
        };
        let Ok(decision) = Option::<Value>::decode(&mut r) else {
            return false;
        };
        let Ok(halted) = bool::decode(&mut r) else {
            return false;
        };
        if r.finish().is_err() {
            return false;
        }
        self.value = value;
        self.cardinality = cardinality;
        self.phase = phase;
        self.message_count = [counts[0], counts[1]];
        self.witness_count = [counts[2], counts[3]];
        self.deferred = deferred.into_iter().collect();
        self.decision = decision;
        self.halted = halted;
        true
    }
}

/// Convenience: a boxed [`FailStop`] process, for [`simnet::SimBuilder`].
#[must_use]
pub fn fail_stop_process(config: Config, input: Value) -> Box<dyn Process<Msg = FailStopMsg>> {
    Box::new(FailStop::new(config, input))
}

/// Ignore `_pid`-style helper: builds the full system of `n` correct
/// fail-stop processes with the given inputs.
///
/// # Panics
///
/// Panics if `inputs.len() != config.n()`.
pub fn build_correct_system(
    builder: &mut simnet::SimBuilder<FailStopMsg>,
    config: Config,
    inputs: &[Value],
) {
    assert_eq!(inputs.len(), config.n(), "one input per process");
    for &input in inputs {
        builder.process(fail_stop_process(config, input), simnet::Role::Correct);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{ProcessId, RunStatus, Sim};

    fn run_inputs(n: usize, k: usize, inputs: &[Value], seed: u64) -> simnet::RunReport {
        let config = Config::fail_stop(n, k).unwrap();
        let mut b = Sim::builder();
        build_correct_system(&mut b, config, inputs);
        b.seed(seed).step_limit(2_000_000).build().run()
    }

    #[test]
    fn unanimous_one_decides_one_quickly() {
        let inputs = vec![Value::One; 5];
        let report = run_inputs(5, 2, &inputs, 11);
        assert_eq!(report.status, RunStatus::Stopped);
        assert_eq!(report.decided_value(), Some(Value::One));
        // Paper: unanimous input decides "within two steps" — witnesses
        // appear in phase 1, decision on entering phase 2.
        assert_eq!(report.phases_to_decision(), Some(2));
    }

    #[test]
    fn unanimous_zero_decides_zero() {
        let inputs = vec![Value::Zero; 4];
        let report = run_inputs(4, 1, &inputs, 3);
        assert_eq!(report.decided_value(), Some(Value::Zero));
    }

    #[test]
    fn mixed_inputs_reach_agreement_over_many_seeds() {
        let inputs = [
            Value::Zero,
            Value::One,
            Value::Zero,
            Value::One,
            Value::One,
            Value::Zero,
            Value::One,
        ];
        for seed in 0..30 {
            let report = run_inputs(7, 3, &inputs, seed);
            assert!(report.agreement(), "seed {seed} broke agreement");
            assert!(
                report.all_correct_decided(),
                "seed {seed} failed to terminate: {:?}",
                report.status
            );
        }
    }

    #[test]
    fn strong_majority_decides_that_value() {
        // More than (n+k)/2 = (7+3)/2 = 5 processes start with 1 → the
        // decision is forced to 1 (paper's closing note of §2.3).
        let inputs = [
            Value::One,
            Value::One,
            Value::One,
            Value::One,
            Value::One,
            Value::One,
            Value::Zero,
        ];
        for seed in 0..20 {
            let report = run_inputs(7, 3, &inputs, seed);
            assert_eq!(
                report.decided_value(),
                Some(Value::One),
                "seed {seed} did not decide the supermajority value"
            );
            assert!(
                report.phases_to_decision().unwrap() <= 3,
                "supermajority should decide within three phases"
            );
        }
    }

    #[test]
    fn k_zero_single_process_decides_own_input() {
        let report = run_inputs(1, 0, &[Value::One], 0);
        assert_eq!(report.decided_value(), Some(Value::One));
    }

    #[test]
    fn decided_process_halts_and_clears_deferrals() {
        let config = Config::fail_stop(3, 1).unwrap();
        let mut p = FailStop::new(config, Value::One);
        let mut outbox = Vec::new();
        let mut rng = simnet::SimRng::seed(0);
        let mut ctx = Ctx::new(ProcessId::new(0), 3, 0, &mut outbox, &mut rng);
        p.on_start(&mut ctx);

        // Feed phase-0 then phase-1 witness messages by hand.
        for sender in 0..2 {
            let env = Envelope::new(
                ProcessId::new(sender),
                FailStopMsg {
                    phase: 0,
                    value: Value::One,
                    cardinality: 1,
                },
            );
            p.on_receive(env, &mut ctx);
        }
        assert_eq!(p.phase(), 1);
        assert!(p.decision().is_none());

        for sender in 0..2 {
            let env = Envelope::new(
                ProcessId::new(sender),
                FailStopMsg {
                    phase: 1,
                    value: Value::One,
                    cardinality: 2, // 2 > 3/2 ⇒ witness
                },
            );
            p.on_receive(env, &mut ctx);
        }
        assert_eq!(p.decision(), Some(Value::One));
        assert!(p.halted());

        // Post-decision deliveries are ignored.
        let env = Envelope::new(
            ProcessId::new(1),
            FailStopMsg {
                phase: 2,
                value: Value::Zero,
                cardinality: 2,
            },
        );
        p.on_receive(env, &mut ctx);
        assert_eq!(p.decision(), Some(Value::One));
    }

    #[test]
    fn future_phase_messages_are_deferred_not_counted() {
        let config = Config::fail_stop(3, 1).unwrap();
        let mut p = FailStop::new(config, Value::Zero);
        let mut outbox = Vec::new();
        let mut rng = simnet::SimRng::seed(0);
        let mut ctx = Ctx::new(ProcessId::new(0), 3, 0, &mut outbox, &mut rng);
        p.on_start(&mut ctx);

        // A phase-5 message must not complete phase 0.
        let env = Envelope::new(
            ProcessId::new(1),
            FailStopMsg {
                phase: 5,
                value: Value::One,
                cardinality: 2,
            },
        );
        p.on_receive(env, &mut ctx);
        assert_eq!(p.phase(), 0);
        assert_eq!(p.message_count, [0, 0]);
    }

    #[test]
    fn stale_messages_are_discarded() {
        let config = Config::fail_stop(3, 1).unwrap();
        let mut p = FailStop::new(config, Value::Zero);
        let mut outbox = Vec::new();
        let mut rng = simnet::SimRng::seed(0);
        let mut ctx = Ctx::new(ProcessId::new(0), 3, 0, &mut outbox, &mut rng);
        p.on_start(&mut ctx);

        // Complete phase 0 (quota n−k = 2).
        for sender in 0..2 {
            let env = Envelope::new(
                ProcessId::new(sender),
                FailStopMsg {
                    phase: 0,
                    value: Value::Zero,
                    cardinality: 1,
                },
            );
            p.on_receive(env, &mut ctx);
        }
        assert_eq!(p.phase(), 1);
        // A late phase-0 message is ignored.
        let env = Envelope::new(
            ProcessId::new(2),
            FailStopMsg {
                phase: 0,
                value: Value::One,
                cardinality: 1,
            },
        );
        p.on_receive(env, &mut ctx);
        assert_eq!(p.message_count, [0, 0]);
    }

    #[test]
    fn majority_tie_breaks_to_zero() {
        // quota 4, split 2/2, no witnesses → value becomes 0.
        let config = Config::fail_stop(5, 1).unwrap();
        let mut p = FailStop::new(config, Value::One);
        let mut outbox = Vec::new();
        let mut rng = simnet::SimRng::seed(0);
        let mut ctx = Ctx::new(ProcessId::new(0), 5, 0, &mut outbox, &mut rng);
        p.on_start(&mut ctx);
        for (sender, v) in [
            (0, Value::Zero),
            (1, Value::Zero),
            (2, Value::One),
            (3, Value::One),
        ] {
            let env = Envelope::new(
                ProcessId::new(sender),
                FailStopMsg {
                    phase: 0,
                    value: v,
                    cardinality: 1,
                },
            );
            p.on_receive(env, &mut ctx);
        }
        assert_eq!(p.phase(), 1);
        assert_eq!(p.value(), Value::Zero);
        assert_eq!(p.cardinality, 2);
    }

    #[test]
    fn snapshot_restore_round_trips_mid_phase_state() {
        let config = Config::fail_stop(5, 2).unwrap();
        let mut p = FailStop::new(config, Value::One);
        let mut outbox = Vec::new();
        let mut rng = simnet::SimRng::seed(0);
        let mut ctx = Ctx::new(ProcessId::new(0), 5, 0, &mut outbox, &mut rng);
        p.on_start(&mut ctx);
        // A current-phase message and a deferred future one.
        p.on_receive(
            Envelope::new(
                ProcessId::new(1),
                FailStopMsg {
                    phase: 0,
                    value: Value::Zero,
                    cardinality: 1,
                },
            ),
            &mut ctx,
        );
        p.on_receive(
            Envelope::new(
                ProcessId::new(2),
                FailStopMsg {
                    phase: 3,
                    value: Value::One,
                    cardinality: 4,
                },
            ),
            &mut ctx,
        );

        let snap = p.snapshot().expect("fail-stop supports snapshots");
        let mut q = FailStop::new(config, Value::One);
        assert!(q.restore(&snap));
        assert_eq!(format!("{p:?}"), format!("{q:?}"));
        // Identical states must produce identical bytes (canonical form).
        assert_eq!(q.snapshot().unwrap(), snap);

        // Garbage must be rejected without mutating the process.
        let mut fresh = FailStop::new(config, Value::Zero);
        assert!(!fresh.restore(&[0xFF, 0xFF, 0xFF]));
        assert!(!fresh.restore(b""));
        let mut trailing = snap.clone();
        trailing.push(0);
        assert!(!fresh.restore(&trailing));
        assert_eq!(fresh.phase(), 0);
    }

    #[test]
    fn exit_broadcasts_release_both_following_phases() {
        let config = Config::fail_stop(3, 1).unwrap();
        let mut p = FailStop::new(config, Value::One);
        let mut outbox = Vec::new();
        let mut rng = simnet::SimRng::seed(0);
        let mut ctx = Ctx::new(ProcessId::new(0), 3, 0, &mut outbox, &mut rng);
        p.on_start(&mut ctx);
        outbox.clear();

        let mut ctx = Ctx::new(ProcessId::new(0), 3, 0, &mut outbox, &mut rng);
        for sender in 0..2 {
            p.on_receive(
                Envelope::new(
                    ProcessId::new(sender),
                    FailStopMsg {
                        phase: 0,
                        value: Value::One,
                        cardinality: 1,
                    },
                ),
                &mut ctx,
            );
        }
        outbox.clear();
        let mut ctx = Ctx::new(ProcessId::new(0), 3, 0, &mut outbox, &mut rng);
        for sender in 0..2 {
            p.on_receive(
                Envelope::new(
                    ProcessId::new(sender),
                    FailStopMsg {
                        phase: 1,
                        value: Value::One,
                        cardinality: 2,
                    },
                ),
                &mut ctx,
            );
        }
        assert_eq!(p.decision(), Some(Value::One));
        // Decision at phase 2: exit messages for phases 2 and 3, to all 3
        // processes each.
        let phases: Vec<u64> = outbox.iter().map(|(_, m)| m.phase).collect();
        assert_eq!(outbox.len(), 6);
        assert_eq!(phases.iter().filter(|&&t| t == 2).count(), 3);
        assert_eq!(phases.iter().filter(|&&t| t == 3).count(), 3);
        assert!(outbox
            .iter()
            .all(|(_, m)| m.cardinality == 2 && m.value == Value::One));
    }
}
