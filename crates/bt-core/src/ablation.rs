//! Ablation instruments: the Figure 1 protocol with *adjustable*
//! thresholds, used to demonstrate **why** the paper's thresholds are what
//! they are.
//!
//! Figure 1 rests on two numbers: a message is a *witness* only above
//! cardinality `n/2`, and a process decides only above `k` witnesses. The
//! consistency proof uses both: majorities intersect (no phase has
//! witnesses for both values), and `> k` witnesses guarantee a witness
//! survives into every other correct process's view. [`ThresholdRule`]
//! lets experiments lower either threshold and watch consistency break —
//! the ablation study behind experiment E5/E11.
//!
//! This type is an experiment instrument, not part of the verified
//! protocol surface: [`FailStop`](crate::FailStop) is the faithful
//! implementation.

use std::collections::BTreeMap;

use simnet::{Ctx, Envelope, Process, Value};

use crate::{Config, FailStopMsg};

/// Adjustable thresholds for [`AblatedFailStop`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ThresholdRule {
    /// A message is a witness if `cardinality ≥ witness_at` (the paper:
    /// `⌊n/2⌋ + 1`).
    pub witness_at: usize,
    /// Decide once `witness_count ≥ decide_at` (the paper: `k + 1`).
    pub decide_at: usize,
}

impl ThresholdRule {
    /// The paper's thresholds for this configuration.
    #[must_use]
    pub fn paper(config: Config) -> Self {
        ThresholdRule {
            witness_at: config.n() / 2 + 1,
            decide_at: config.k() + 1,
        }
    }

    /// The paper's thresholds weakened: witness bar lowered by
    /// `witness_slack`, decision bar lowered by `decide_slack` (floored at
    /// 1).
    #[must_use]
    pub fn weakened(config: Config, witness_slack: usize, decide_slack: usize) -> Self {
        let paper = Self::paper(config);
        ThresholdRule {
            witness_at: paper.witness_at.saturating_sub(witness_slack).max(1),
            decide_at: paper.decide_at.saturating_sub(decide_slack).max(1),
        }
    }
}

/// Figure 1 with its two thresholds exposed as parameters.
///
/// With [`ThresholdRule::paper`] this behaves exactly like
/// [`FailStop`](crate::FailStop); with weakened rules it decides faster —
/// and, beyond the proof's requirements, wrongly.
///
/// # Examples
///
/// ```
/// use bt_core::ablation::{AblatedFailStop, ThresholdRule};
/// use bt_core::Config;
/// use simnet::{Role, Sim, Value};
///
/// let config = Config::fail_stop(5, 2)?;
/// let rule = ThresholdRule::paper(config);
/// let mut b = Sim::builder();
/// for i in 0..5 {
///     b.process(
///         Box::new(AblatedFailStop::new(config, rule, Value::from(i % 2 == 0))),
///         Role::Correct,
///     );
/// }
/// let report = b.seed(3).build().run();
/// assert!(report.agreement());
/// # Ok::<(), bt_core::ConfigError>(())
/// ```
#[derive(Clone, Debug)]
pub struct AblatedFailStop {
    config: Config,
    rule: ThresholdRule,
    value: Value,
    cardinality: usize,
    phase: u64,
    message_count: [usize; 2],
    witness_count: [usize; 2],
    deferred: BTreeMap<u64, Vec<FailStopMsg>>,
    decision: Option<Value>,
    halted: bool,
}

impl AblatedFailStop {
    /// Creates a process with the given thresholds and initial value.
    #[must_use]
    pub fn new(config: Config, rule: ThresholdRule, input: Value) -> Self {
        AblatedFailStop {
            config,
            rule,
            value: input,
            cardinality: 1,
            phase: 0,
            message_count: [0; 2],
            witness_count: [0; 2],
            deferred: BTreeMap::new(),
            decision: None,
            halted: false,
        }
    }

    /// The thresholds in force.
    #[must_use]
    pub fn rule(&self) -> ThresholdRule {
        self.rule
    }

    fn count_message(&mut self, msg: FailStopMsg, ctx: &mut Ctx<'_, FailStopMsg>) -> bool {
        self.message_count[msg.value.index()] += 1;
        if msg.cardinality >= self.rule.witness_at {
            self.witness_count[msg.value.index()] += 1;
        }
        if self.message_count[0] + self.message_count[1] < self.config.quota() {
            return false;
        }
        self.end_phase(ctx);
        true
    }

    fn end_phase(&mut self, ctx: &mut Ctx<'_, FailStopMsg>) {
        // With weakened witness rules BOTH counts can be positive — the
        // invariant the paper's threshold buys. Resolve by majority of
        // witnesses then of messages (a best effort that cannot save
        // consistency, as the ablation benches show).
        if self.witness_count[0] > 0 || self.witness_count[1] > 0 {
            self.value = if self.witness_count[1] > self.witness_count[0] {
                Value::One
            } else if self.witness_count[0] > self.witness_count[1] {
                Value::Zero
            } else {
                Value::majority_of(self.message_count)
            };
        } else {
            self.value = Value::majority_of(self.message_count);
        }
        self.cardinality = self.message_count[self.value.index()];
        self.phase += 1;

        for v in Value::BOTH {
            if self.witness_count[v.index()] >= self.rule.decide_at {
                // Beyond-paper configurations can produce enough witnesses
                // for the non-adopted value; decide the witnessed one.
                self.decision = Some(v);
                ctx.broadcast(FailStopMsg {
                    phase: self.phase,
                    value: v,
                    cardinality: self.config.quota(),
                });
                ctx.broadcast(FailStopMsg {
                    phase: self.phase + 1,
                    value: v,
                    cardinality: self.config.quota(),
                });
                self.halted = true;
                self.deferred.clear();
                return;
            }
        }

        self.message_count = [0; 2];
        self.witness_count = [0; 2];
        ctx.broadcast(FailStopMsg {
            phase: self.phase,
            value: self.value,
            cardinality: self.cardinality,
        });
    }

    fn drain_deferred(&mut self, ctx: &mut Ctx<'_, FailStopMsg>) {
        while !self.halted {
            let Some(mut batch) = self.deferred.remove(&self.phase) else {
                return;
            };
            let mut ended = false;
            while let Some(msg) = batch.pop() {
                if self.count_message(msg, ctx) {
                    ended = true;
                    break;
                }
            }
            if !ended {
                return;
            }
        }
    }
}

impl Process for AblatedFailStop {
    type Msg = FailStopMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, FailStopMsg>) {
        ctx.broadcast(FailStopMsg {
            phase: 0,
            value: self.value,
            cardinality: self.cardinality,
        });
    }

    fn on_receive(&mut self, env: Envelope<FailStopMsg>, ctx: &mut Ctx<'_, FailStopMsg>) {
        if self.halted {
            return;
        }
        let msg = env.msg;
        if msg.phase < self.phase {
            return;
        }
        if msg.phase > self.phase {
            self.deferred.entry(msg.phase).or_default().push(msg);
            return;
        }
        if self.count_message(msg, ctx) {
            self.drain_deferred(ctx);
        }
    }

    fn decision(&self) -> Option<Value> {
        self.decision
    }

    fn phase(&self) -> u64 {
        self.phase
    }

    fn halted(&self) -> bool {
        self.halted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{Role, Sim};

    fn run(rule: ThresholdRule, config: Config, seed: u64) -> simnet::RunReport {
        let mut b = Sim::builder();
        for i in 0..config.n() {
            b.process(
                Box::new(AblatedFailStop::new(config, rule, Value::from(i % 2 == 0))),
                Role::Correct,
            );
        }
        b.seed(seed).step_limit(2_000_000).build().run()
    }

    #[test]
    fn paper_rule_behaves_like_failstop() {
        let config = Config::fail_stop(7, 3).unwrap();
        let rule = ThresholdRule::paper(config);
        for seed in 0..20 {
            let r = run(rule, config, seed);
            assert!(r.agreement(), "seed {seed}");
            assert!(r.all_correct_decided(), "seed {seed}");
        }
    }

    #[test]
    fn paper_rule_matches_config_predicates() {
        let config = Config::fail_stop(9, 4).unwrap();
        let rule = ThresholdRule::paper(config);
        // rule.witness_at − 1 is NOT a witness; rule.witness_at is.
        assert!(!config.is_witness(rule.witness_at - 1));
        assert!(config.is_witness(rule.witness_at));
        assert!(!config.enough_witnesses(rule.decide_at - 1));
        assert!(config.enough_witnesses(rule.decide_at));
    }

    #[test]
    fn weakened_witness_rule_eventually_breaks_agreement() {
        // Drop the witness bar to 1: any message certifies its value, so
        // split inputs can produce "witnessed" both ways and fast, wrong
        // decisions. Some seed must disagree.
        let config = Config::fail_stop(6, 2).unwrap();
        let rule = ThresholdRule {
            witness_at: 1,
            decide_at: config.k() + 1,
        };
        let mut broke = false;
        for seed in 0..400 {
            let r = run(rule, config, seed);
            if !r.agreement() {
                broke = true;
                break;
            }
        }
        assert!(
            broke,
            "witness_at = 1 should violate agreement on some seed"
        );
    }

    #[test]
    fn weakened_constructor_clamps() {
        let config = Config::fail_stop(5, 2).unwrap();
        let rule = ThresholdRule::weakened(config, 100, 100);
        assert_eq!(rule.witness_at, 1);
        assert_eq!(rule.decide_at, 1);
    }
}
