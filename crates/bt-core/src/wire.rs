//! [`Wire`] codecs for every Bracha-Toueg protocol message.
//!
//! Each implementation writes the struct's fields in declaration order and
//! encodes enums as one discriminant byte — the conventions documented in
//! [`simnet::wire`]. `MultiMsg` needs no impl of its own: it is the tuple
//! `(u8, MaliciousMsg)`, covered by the generic pair codec.
//!
//! Decoding never trusts the peer: out-of-range discriminants and
//! truncated payloads surface as [`WireError`]s, which the socket runtime
//! treats exactly as the simulator treats a Byzantine payload — the bytes
//! are adversary-controlled, the envelope sender is not.

use simnet::{Wire, WireError, WireReader};

use crate::initially_dead::DeadMsg;
use crate::{FailStopMsg, MaliciousKind, MaliciousMsg, Phase, SimpleMsg};

impl Wire for FailStopMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        self.phase.encode(out);
        self.value.encode(out);
        self.cardinality.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(FailStopMsg {
            phase: Wire::decode(r)?,
            value: Wire::decode(r)?,
            cardinality: Wire::decode(r)?,
        })
    }

    fn validate(&self, n: usize) -> bool {
        // A cardinality counts distinct senders, so it can never exceed n.
        self.cardinality <= n
    }
}

impl Wire for SimpleMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        self.phase.encode(out);
        self.value.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(SimpleMsg {
            phase: Wire::decode(r)?,
            value: Wire::decode(r)?,
        })
    }
}

impl Wire for Phase {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Phase::At(t) => {
                out.push(0);
                t.encode(out);
            }
            Phase::Any => out.push(1),
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let offset = r.offset();
        match r.byte()? {
            0 => Ok(Phase::At(Wire::decode(r)?)),
            1 => Ok(Phase::Any),
            _ => Err(WireError::Invalid {
                what: "phase stamp",
                offset,
            }),
        }
    }
}

impl Wire for MaliciousKind {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            MaliciousKind::Initial => 0,
            MaliciousKind::Echo => 1,
        });
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let offset = r.offset();
        match r.byte()? {
            0 => Ok(MaliciousKind::Initial),
            1 => Ok(MaliciousKind::Echo),
            _ => Err(WireError::Invalid {
                what: "malicious message kind",
                offset,
            }),
        }
    }
}

impl Wire for MaliciousMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        self.kind.encode(out);
        self.subject.encode(out);
        self.value.encode(out);
        self.phase.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(MaliciousMsg {
            kind: Wire::decode(r)?,
            subject: Wire::decode(r)?,
            value: Wire::decode(r)?,
            phase: Wire::decode(r)?,
        })
    }

    fn validate(&self, n: usize) -> bool {
        // The subject indexes per-process echo tables at every receiver.
        self.subject.validate(n)
    }
}

impl Wire for DeadMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            DeadMsg::Stage1 { value } => {
                out.push(0);
                value.encode(out);
            }
            DeadMsg::Stage2 { value, ancestors } => {
                out.push(1);
                value.encode(out);
                ancestors.encode(out);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let offset = r.offset();
        match r.byte()? {
            0 => Ok(DeadMsg::Stage1 {
                value: Wire::decode(r)?,
            }),
            1 => Ok(DeadMsg::Stage2 {
                value: Wire::decode(r)?,
                ancestors: Wire::decode(r)?,
            }),
            _ => Err(WireError::Invalid {
                what: "initially-dead stage",
                offset,
            }),
        }
    }

    fn validate(&self, n: usize) -> bool {
        match self {
            DeadMsg::Stage1 { .. } => true,
            // Ancestor ids index the receiver's per-process input table.
            DeadMsg::Stage2 { ancestors, .. } => ancestors.validate(n),
        }
    }
}

#[cfg(test)]
mod tests {
    use core::fmt;

    use simnet::{ProcessId, Value};

    use super::*;
    use crate::MultiMsg;

    fn round_trip<T: Wire + PartialEq + fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        assert_eq!(T::from_bytes(&bytes), Ok(v), "encoding: {bytes:?}");
    }

    #[test]
    fn failstop_round_trips_including_boundaries() {
        round_trip(FailStopMsg {
            phase: 0,
            value: Value::Zero,
            cardinality: 0,
        });
        round_trip(FailStopMsg {
            phase: u64::MAX,
            value: Value::One,
            cardinality: usize::MAX,
        });
    }

    #[test]
    fn simple_round_trips() {
        round_trip(SimpleMsg {
            phase: 128,
            value: Value::One,
        });
    }

    #[test]
    fn phase_wildcard_round_trips() {
        round_trip(Phase::Any);
        round_trip(Phase::At(0));
        round_trip(Phase::At(u64::MAX));
    }

    #[test]
    fn malicious_round_trips() {
        for kind in [MaliciousKind::Initial, MaliciousKind::Echo] {
            round_trip(MaliciousMsg {
                kind,
                subject: ProcessId::new(6),
                value: Value::Zero,
                phase: Phase::Any,
            });
        }
    }

    #[test]
    fn multi_msg_round_trips_via_pair_codec() {
        let m: MultiMsg = (
            255,
            MaliciousMsg::initial(ProcessId::new(3), Value::One, 17),
        );
        round_trip(m);
    }

    #[test]
    fn dead_msg_round_trips_max_arity() {
        round_trip(DeadMsg::Stage1 { value: Value::One });
        round_trip(DeadMsg::Stage2 {
            value: Value::Zero,
            ancestors: ProcessId::all(64).collect(),
        });
        round_trip(DeadMsg::Stage2 {
            value: Value::One,
            ancestors: Vec::new(),
        });
    }

    #[test]
    fn bad_discriminants_rejected() {
        assert!(matches!(
            Phase::from_bytes(&[9]),
            Err(WireError::Invalid {
                what: "phase stamp",
                ..
            })
        ));
        assert!(matches!(
            MaliciousKind::from_bytes(&[2]),
            Err(WireError::Invalid { .. })
        ));
        assert!(matches!(
            DeadMsg::from_bytes(&[4, 0]),
            Err(WireError::Invalid { .. })
        ));
    }

    #[test]
    fn validate_rejects_out_of_system_contents() {
        let echo = MaliciousMsg::echo(ProcessId::new(7), Value::One, 3);
        assert!(echo.validate(8));
        assert!(!echo.validate(7), "subject must be inside the system");

        assert!(FailStopMsg {
            phase: 0,
            value: Value::Zero,
            cardinality: 4,
        }
        .validate(4));
        assert!(!FailStopMsg {
            phase: 0,
            value: Value::Zero,
            cardinality: 5,
        }
        .validate(4));

        let stage2 = DeadMsg::Stage2 {
            value: Value::One,
            ancestors: vec![ProcessId::new(0), ProcessId::new(3)],
        };
        assert!(stage2.validate(4));
        assert!(!stage2.validate(3), "ancestors must be inside the system");

        // SimpleMsg carries no process ids: always valid.
        assert!(SimpleMsg {
            phase: u64::MAX,
            value: Value::One,
        }
        .validate(1));
    }

    #[test]
    fn truncation_anywhere_is_an_error_not_a_panic() {
        let full = MaliciousMsg::echo(ProcessId::new(2), Value::One, 9).to_bytes();
        for cut in 0..full.len() {
            assert!(
                MaliciousMsg::from_bytes(&full[..cut]).is_err(),
                "prefix of length {cut} must not decode"
            );
        }
    }
}
