//! Flat, index-addressed tally containers for the hot receive path.
//!
//! The Figure 2 receive path runs once per delivered echo — `O(n²)` times
//! per process per phase at full amplification — so its bookkeeping must
//! not hash, chase pointers, or allocate. These containers replace the
//! `HashSet`/`HashMap`/`BTreeMap` tables the protocols used to keep:
//! membership is one bit at a computed index, iteration is a word scan in
//! ascending key order (which is exactly the canonical order snapshots
//! serialize in, so no sort is needed on the hot structures).

use simnet::Value;

/// A fixed-capacity bit set over `0..bits`.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub(crate) struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// An empty set with room for indices `0..bits`.
    pub(crate) fn with_bits(bits: usize) -> Self {
        BitSet {
            words: vec![0; bits.div_ceil(64)],
        }
    }

    /// Whether `i` is in the set.
    pub(crate) fn contains(&self, i: usize) -> bool {
        self.words[i >> 6] & (1u64 << (i & 63)) != 0
    }

    /// Inserts `i`; returns `true` if it was not already present.
    pub(crate) fn insert(&mut self, i: usize) -> bool {
        let word = &mut self.words[i >> 6];
        let bit = 1u64 << (i & 63);
        let fresh = *word & bit == 0;
        *word |= bit;
        fresh
    }

    /// Removes every element, keeping capacity.
    pub(crate) fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Number of 64-bit words backing the set.
    pub(crate) fn word_count(&self) -> usize {
        self.words.len()
    }

    /// The `w`-th backing word (bits `64w..64w+63`).
    pub(crate) fn word(&self, w: usize) -> u64 {
        self.words[w]
    }

    /// The set elements in ascending order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &word)| {
            let mut bits = word;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let tz = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some((w << 6) | tz)
            })
        })
    }
}

/// A map from `(a, b)` pairs (`a, b < n`) to a [`Value`]: one presence bit
/// and one value bit per pair, first insert wins.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct PairValues {
    n: usize,
    present: BitSet,
    /// Bit set ⇔ the stored value is [`Value::One`].
    one: BitSet,
}

impl PairValues {
    /// An empty map over pairs drawn from `0..n`.
    pub(crate) fn new(n: usize) -> Self {
        PairValues {
            n,
            present: BitSet::with_bits(n * n),
            one: BitSet::with_bits(n * n),
        }
    }

    /// Inserts `(a, b) → v` if absent; returns the stored value either way
    /// (the first write wins, like `entry(..).or_insert(v)`).
    pub(crate) fn insert_or_get(&mut self, a: usize, b: usize, v: Value) -> Value {
        let pair = a * self.n + b;
        if self.present.insert(pair) {
            if v == Value::One {
                self.one.insert(pair);
            }
            v
        } else {
            Value::from(self.one.contains(pair))
        }
    }

    /// Number of 64-bit words backing the presence set.
    pub(crate) fn word_count(&self) -> usize {
        self.present.word_count()
    }

    /// The `w`-th presence word: bit `b` set ⇔ pair `64w + b` is present.
    pub(crate) fn presence_word(&self, w: usize) -> u64 {
        self.present.word(w)
    }

    /// The value stored for a present pair index (`a * n + b`).
    pub(crate) fn value_at(&self, pair: usize) -> Value {
        Value::from(self.one.contains(pair))
    }

    /// The entries as `((a, b), value)` in ascending `(a, b)` order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = ((usize, usize), Value)> + '_ {
        self.present.iter().map(|pair| {
            (
                (pair / self.n, pair % self.n),
                Value::from(self.one.contains(pair)),
            )
        })
    }
}

/// A set of `(subject, phase)` pairs with `subject < n` and unbounded
/// phase: one subject bitmask per phase touched, phases kept sorted.
///
/// Membership tests bind to a phase first (a short sorted scan — a run
/// only ever has a handful of distinct phases in flight), then to one bit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct PhaseSubjects {
    words: usize,
    phases: Vec<(u64, Vec<u64>)>,
}

impl PhaseSubjects {
    /// An empty set over subjects `0..n`.
    pub(crate) fn new(n: usize) -> Self {
        PhaseSubjects {
            words: n.div_ceil(64),
            phases: Vec::new(),
        }
    }

    /// Inserts `(subject, phase)`; returns `true` if it was absent.
    pub(crate) fn insert(&mut self, subject: usize, phase: u64) -> bool {
        let slot = match self.phases.binary_search_by_key(&phase, |e| e.0) {
            Ok(i) => i,
            Err(i) => {
                self.phases.insert(i, (phase, vec![0; self.words]));
                i
            }
        };
        let word = &mut self.phases[slot].1[subject >> 6];
        let bit = 1u64 << (subject & 63);
        let fresh = *word & bit == 0;
        *word |= bit;
        fresh
    }

    /// Every `(subject, phase)` pair, grouped by phase ascending (callers
    /// needing the canonical subject-major order sort the result).
    pub(crate) fn pairs(&self) -> Vec<(usize, u64)> {
        let mut out = Vec::new();
        for (phase, mask) in &self.phases {
            for (w, &word) in mask.iter().enumerate() {
                let mut bits = word;
                while bits != 0 {
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    out.push(((w << 6) | tz, *phase));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitset_insert_contains_iter() {
        let mut s = BitSet::with_bits(200);
        assert!(s.insert(0));
        assert!(s.insert(199));
        assert!(s.insert(64));
        assert!(!s.insert(64), "duplicate");
        assert!(s.contains(199));
        assert!(!s.contains(1));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 64, 199]);
        s.clear_all();
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn pair_values_first_write_wins_and_iterates_sorted() {
        let mut m = PairValues::new(5);
        assert_eq!(m.insert_or_get(3, 1, Value::One), Value::One);
        assert_eq!(m.insert_or_get(3, 1, Value::Zero), Value::One, "sticky");
        assert_eq!(m.insert_or_get(0, 4, Value::Zero), Value::Zero);
        assert_eq!(
            m.iter().collect::<Vec<_>>(),
            vec![((0, 4), Value::Zero), ((3, 1), Value::One)]
        );
    }

    #[test]
    fn phase_subjects_tracks_pairs_across_phases() {
        let mut s = PhaseSubjects::new(70);
        assert!(s.insert(69, 7));
        assert!(s.insert(0, 3));
        assert!(s.insert(69, 3));
        assert!(!s.insert(69, 7), "duplicate");
        let mut pairs = s.pairs();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(0, 3), (69, 3), (69, 7)]);
    }
}
