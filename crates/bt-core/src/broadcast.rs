//! The initial/echo **authenticated broadcast** primitive of §3.3, as a
//! standalone reusable component.
//!
//! Figure 2 transmits state "in the following manner": the sender
//! broadcasts an *initial* message; every receiver *echoes* it to everyone;
//! a message is **accepted** only once more than `(n+k)/2` distinct
//! processes have echoed the same value for the same `(subject, tag)`.
//! This is the historical ancestor of Bracha's reliable broadcast (1987)
//! and of the echo stages in modern BFT protocols — so it deserves its own
//! type with its own guarantees, independent of the consensus loop built
//! on top:
//!
//! * **No splitting** (the Theorem 4 acceptance claim): two correct
//!   processes never accept *different* values from the same subject for
//!   the same tag, because two `> (n+k)/2` echo quorums intersect in more
//!   than `k` processes — at least one correct, and a correct process
//!   echoes at most one value per `(subject, tag)`.
//! * **Delivery**: if the subject is correct and `n − k` correct processes
//!   participate, everyone eventually accepts its value (`n − k > (n+k)/2`
//!   when `3k < n`).
//!
//! [`EchoTracker`] implements the receiver side as a pure state machine so
//! it can be embedded in any protocol (the `Malicious` consensus process
//! keeps its own inlined copy for phase-lifecycle reasons; the unit tests
//! here cross-check the two).

use simnet::{Ctx, ProcessId, ProtocolEvent, Value};

use crate::tally::BitSet;
use crate::Config;

/// What [`EchoTracker::record_echo`] concluded about one incoming echo.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EchoOutcome {
    /// Counted; no acceptance yet.
    Counted,
    /// This echo completed a quorum: the subject's message is accepted
    /// with the carried value.
    Accepted(Value),
    /// Ignored: this sender already echoed for this subject (duplicate or
    /// equivocation), or the subject was already accepted.
    Ignored,
}

/// Receiver-side bookkeeping of the initial/echo broadcast for one *tag*
/// (in Figure 2 the tag is the phase; any protocol-level epoch works).
///
/// # Examples
///
/// ```
/// use bt_core::broadcast::{EchoOutcome, EchoTracker};
/// use bt_core::Config;
/// use simnet::{ProcessId, Value};
///
/// let config = Config::malicious(4, 1)?; // accept needs > 2.5 ⇒ 3 echoes
/// let mut tracker = EchoTracker::new(config);
/// let subject = ProcessId::new(3);
/// for sender in 0..2 {
///     let out = tracker.record_echo(ProcessId::new(sender), subject, Value::One);
///     assert_eq!(out, EchoOutcome::Counted);
/// }
/// let out = tracker.record_echo(ProcessId::new(2), subject, Value::One);
/// assert_eq!(out, EchoOutcome::Accepted(Value::One));
/// assert_eq!(tracker.accepted(subject), Some(Value::One));
/// # Ok::<(), bt_core::ConfigError>(())
/// ```
#[derive(Clone, Debug)]
pub struct EchoTracker {
    config: Config,
    /// `(sender, subject)` pairs already counted — first echo wins. One bit
    /// per pair at index `sender·n + subject`.
    seen: BitSet,
    /// `echo_count[subject][value]`.
    counts: Vec<[usize; 2]>,
    /// Accepted value per subject.
    accepted: Vec<Option<Value>>,
    /// Number of `Some` entries in `accepted`.
    accepted_total: usize,
}

impl EchoTracker {
    /// Creates a tracker for one tag under `config`'s quorum rule.
    #[must_use]
    pub fn new(config: Config) -> Self {
        let n = config.n();
        EchoTracker {
            config,
            seen: BitSet::with_bits(n * n),
            counts: vec![[0; 2]; n],
            accepted: vec![None; n],
            accepted_total: 0,
        }
    }

    /// Records one echo by `sender` claiming `subject` announced `value`.
    ///
    /// # Panics
    ///
    /// Panics if `sender` or `subject` is outside `0..config.n()` —
    /// protocols must bounds-check adversary-controlled subject fields
    /// before tallying (as `Malicious::on_receive` does).
    pub fn record_echo(
        &mut self,
        sender: ProcessId,
        subject: ProcessId,
        value: Value,
    ) -> EchoOutcome {
        assert!(
            sender.index() < self.config.n() && subject.index() < self.config.n(),
            "echo ids must be in 0..n"
        );
        if self.accepted[subject.index()].is_some() {
            return EchoOutcome::Ignored;
        }
        if !self
            .seen
            .insert(sender.index() * self.config.n() + subject.index())
        {
            return EchoOutcome::Ignored;
        }
        let count = &mut self.counts[subject.index()][value.index()];
        *count += 1;
        if self.config.accepts(*count) {
            self.accepted[subject.index()] = Some(value);
            self.accepted_total += 1;
            EchoOutcome::Accepted(value)
        } else {
            EchoOutcome::Counted
        }
    }

    /// Like [`EchoTracker::record_echo`], but additionally emits an
    /// [`ProtocolEvent::EchoAccepted`] through `ctx` when this echo
    /// completes a quorum. `tag` is the protocol-level epoch the tracker is
    /// scoped to (the phase, in Figure 2's usage); it becomes the event's
    /// `phase` field.
    pub fn record_echo_observed<M>(
        &mut self,
        sender: ProcessId,
        subject: ProcessId,
        value: Value,
        tag: u64,
        ctx: &mut Ctx<'_, M>,
    ) -> EchoOutcome {
        let outcome = self.record_echo(sender, subject, value);
        if let EchoOutcome::Accepted(v) = outcome {
            ctx.emit(ProtocolEvent::EchoAccepted {
                phase: tag,
                subject,
                value: v,
                echoes: self.echo_count(subject, v),
            });
        }
        outcome
    }

    /// The value accepted from `subject`, if any.
    #[must_use]
    pub fn accepted(&self, subject: ProcessId) -> Option<Value> {
        self.accepted.get(subject.index()).copied().flatten()
    }

    /// Number of subjects accepted so far.
    #[must_use]
    pub fn accepted_count(&self) -> usize {
        self.accepted_total
    }

    /// Echoes counted so far for `(subject, value)`.
    #[must_use]
    pub fn echo_count(&self, subject: ProcessId, value: Value) -> usize {
        self.counts
            .get(subject.index())
            .map_or(0, |c| c[value.index()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn quorum_size_is_config_accepts_threshold() {
        // n = 10, k = 3: accept needs > 6.5 ⇒ 7 echoes.
        let config = Config::malicious(10, 3).unwrap();
        let mut t = EchoTracker::new(config);
        for s in 0..6 {
            assert_eq!(
                t.record_echo(pid(s), pid(9), Value::Zero),
                EchoOutcome::Counted
            );
        }
        assert_eq!(
            t.record_echo(pid(6), pid(9), Value::Zero),
            EchoOutcome::Accepted(Value::Zero)
        );
    }

    #[test]
    fn no_splitting_is_arithmetically_impossible() {
        // Even if every process echoes (one per sender), the two values
        // cannot both reach a quorum: quorums are > (n+k)/2 and there are
        // only n senders.
        let config = Config::malicious(7, 2).unwrap();
        let mut t = EchoTracker::new(config);
        // 4 echo Zero, 3 echo One for the same subject.
        for s in 0..4 {
            t.record_echo(pid(s), pid(0), Value::Zero);
        }
        for s in 4..7 {
            t.record_echo(pid(s), pid(0), Value::One);
        }
        // Accept needs > 4.5 ⇒ 5: neither side got there, nothing split.
        assert_eq!(t.accepted(pid(0)), None);
        assert_eq!(t.echo_count(pid(0), Value::Zero), 4);
        assert_eq!(t.echo_count(pid(0), Value::One), 3);
    }

    #[test]
    fn equivocating_sender_counts_once() {
        let config = Config::malicious(4, 1).unwrap();
        let mut t = EchoTracker::new(config);
        assert_eq!(
            t.record_echo(pid(1), pid(0), Value::Zero),
            EchoOutcome::Counted
        );
        assert_eq!(
            t.record_echo(pid(1), pid(0), Value::One),
            EchoOutcome::Ignored
        );
        assert_eq!(t.echo_count(pid(0), Value::One), 0);
    }

    #[test]
    fn acceptance_is_sticky_and_unique() {
        let config = Config::malicious(4, 1).unwrap();
        let mut t = EchoTracker::new(config);
        for s in 0..3 {
            t.record_echo(pid(s), pid(2), Value::One);
        }
        assert_eq!(t.accepted(pid(2)), Some(Value::One));
        // A fourth echo (even for the other value) changes nothing.
        assert_eq!(
            t.record_echo(pid(3), pid(2), Value::Zero),
            EchoOutcome::Ignored
        );
        assert_eq!(t.accepted(pid(2)), Some(Value::One));
        assert_eq!(t.accepted_count(), 1);
    }

    #[test]
    fn observed_recording_emits_the_acceptance() {
        let config = Config::malicious(4, 1).unwrap();
        let mut t = EchoTracker::new(config);
        let mut outbox: Vec<(ProcessId, ())> = Vec::new();
        let mut rng = simnet::SimRng::seed(0);
        let mut ctx = Ctx::new(pid(0), 4, 0, &mut outbox, &mut rng).with_obs(true);
        for s in 0..2 {
            t.record_echo_observed(pid(s), pid(2), Value::One, 7, &mut ctx);
        }
        assert!(ctx.take_events().is_empty(), "no acceptance yet");
        t.record_echo_observed(pid(2), pid(2), Value::One, 7, &mut ctx);
        assert_eq!(
            ctx.take_events(),
            vec![ProtocolEvent::EchoAccepted {
                phase: 7,
                subject: pid(2),
                value: Value::One,
                echoes: 3,
            }]
        );
    }

    #[test]
    fn subjects_are_independent() {
        let config = Config::malicious(4, 1).unwrap();
        let mut t = EchoTracker::new(config);
        for s in 0..3 {
            t.record_echo(pid(s), pid(0), Value::One);
            t.record_echo(pid(s), pid(1), Value::Zero);
        }
        assert_eq!(t.accepted(pid(0)), Some(Value::One));
        assert_eq!(t.accepted(pid(1)), Some(Value::Zero));
        assert_eq!(t.accepted_count(), 2);
    }
}
