//! Protocol configuration: system size `n`, resilience `k`, and the
//! thresholds derived from them.

use core::fmt;

/// Error returned when a configuration violates a protocol's resilience
/// bound.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfigError {
    n: usize,
    k: usize,
    bound: usize,
    model: &'static str,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "k = {} exceeds the {} resilience bound {} for n = {}",
            self.k, self.model, self.bound, self.n
        )
    }
}

impl std::error::Error for ConfigError {}

/// A validated `(n, k)` pair for one of the paper's protocols.
///
/// The constructors enforce the tight bounds the paper proves:
///
/// * [`Config::fail_stop`] requires `k ≤ ⌊(n−1)/2⌋` (Theorems 1 and 2);
/// * [`Config::malicious`] requires `k ≤ ⌊(n−1)/3⌋` (Theorems 3 and 4).
///
/// [`Config::unchecked`] skips validation — used by the lower-bound
/// experiments (E5) to run the protocols *beyond* their proven bounds and
/// watch them lose consistency or deadlock.
///
/// # Examples
///
/// ```
/// use bt_core::Config;
///
/// let c = Config::malicious(10, 3)?;
/// assert_eq!(c.quota(), 7); // waits for n − k messages
/// assert!(Config::malicious(10, 4).is_err());
/// # Ok::<(), bt_core::ConfigError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Config {
    n: usize,
    k: usize,
}

impl Config {
    /// Creates a configuration for the fail-stop protocol (Figure 1).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `k > ⌊(n−1)/2⌋` — by Theorem 1, no
    /// protocol can do better.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn fail_stop(n: usize, k: usize) -> Result<Self, ConfigError> {
        assert!(n > 0, "a system needs at least one process");
        let bound = (n - 1) / 2;
        if k > bound {
            return Err(ConfigError {
                n,
                k,
                bound,
                model: "fail-stop",
            });
        }
        Ok(Config { n, k })
    }

    /// Creates a configuration for the malicious protocol (Figure 2).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `k > ⌊(n−1)/3⌋` — by Theorem 3, no
    /// protocol can do better.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn malicious(n: usize, k: usize) -> Result<Self, ConfigError> {
        assert!(n > 0, "a system needs at least one process");
        let bound = (n - 1) / 3;
        if k > bound {
            return Err(ConfigError {
                n,
                k,
                bound,
                model: "malicious",
            });
        }
        Ok(Config { n, k })
    }

    /// Creates a configuration without validating any resilience bound.
    ///
    /// Exists so the lower-bound experiments can deliberately exceed the
    /// bounds; everywhere else prefer the checked constructors.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `k >= n`.
    #[must_use]
    pub fn unchecked(n: usize, k: usize) -> Self {
        assert!(n > 0, "a system needs at least one process");
        assert!(k < n, "at least one process must be able to be correct");
        Config { n, k }
    }

    /// The number of processes `n`.
    #[must_use]
    pub const fn n(&self) -> usize {
        self.n
    }

    /// The resilience `k`: the maximum number of faulty processes tolerated.
    #[must_use]
    pub const fn k(&self) -> usize {
        self.k
    }

    /// How many messages a process waits for in each phase: `n − k`.
    #[must_use]
    pub const fn quota(&self) -> usize {
        self.n - self.k
    }

    /// Whether `cardinality` makes a message a *witness* (Figure 1):
    /// strictly more than `n/2`.
    #[must_use]
    pub const fn is_witness(&self, cardinality: usize) -> bool {
        2 * cardinality > self.n
    }

    /// Whether `witness_count` suffices to decide in Figure 1: strictly more
    /// than `k` witnesses.
    #[must_use]
    pub const fn enough_witnesses(&self, witness_count: usize) -> bool {
        witness_count > self.k
    }

    /// Whether `echo_count` suffices to accept a message in Figure 2:
    /// strictly more than `(n+k)/2` echoes.
    #[must_use]
    pub const fn accepts(&self, echo_count: usize) -> bool {
        2 * echo_count > self.n + self.k
    }

    /// Whether `message_count` suffices to decide in Figure 2 (and in the
    /// §4.1 simple variant): strictly more than `(n+k)/2` accepted messages
    /// with the same value.
    #[must_use]
    pub const fn decides(&self, message_count: usize) -> bool {
        2 * message_count > self.n + self.k
    }

    /// The largest `k` the fail-stop protocol supports for this `n`.
    #[must_use]
    pub const fn max_fail_stop_k(n: usize) -> usize {
        (n - 1) / 2
    }

    /// The largest `k` the malicious protocol supports for this `n`.
    #[must_use]
    pub const fn max_malicious_k(n: usize) -> usize {
        (n - 1) / 3
    }
}

impl fmt::Display for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(n={}, k={})", self.n, self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fail_stop_bound_is_tight() {
        for n in 1..40 {
            let bound = (n - 1) / 2;
            assert!(Config::fail_stop(n, bound).is_ok());
            assert!(Config::fail_stop(n, bound + 1).is_err());
        }
    }

    #[test]
    fn malicious_bound_is_tight() {
        for n in 1..40 {
            let bound = (n - 1) / 3;
            assert!(Config::malicious(n, bound).is_ok());
            assert!(Config::malicious(n, bound + 1).is_err());
        }
    }

    #[test]
    fn known_bounds() {
        // n=4 tolerates 1 malicious fault; n=3 tolerates none.
        assert!(Config::malicious(4, 1).is_ok());
        assert!(Config::malicious(3, 1).is_err());
        // n=3 tolerates 1 crash; n=2 tolerates none.
        assert!(Config::fail_stop(3, 1).is_ok());
        assert!(Config::fail_stop(2, 1).is_err());
    }

    #[test]
    fn quota_and_thresholds() {
        let c = Config::malicious(10, 3).unwrap();
        assert_eq!(c.quota(), 7);
        // witness: cardinality > 5
        assert!(!c.is_witness(5));
        assert!(c.is_witness(6));
        // accept: echoes > 6.5, i.e. >= 7
        assert!(!c.accepts(6));
        assert!(c.accepts(7));
        // decide: > 6.5 accepted same-value messages
        assert!(!c.decides(6));
        assert!(c.decides(7));
    }

    #[test]
    fn witness_threshold_odd_even() {
        let odd = Config::fail_stop(7, 3).unwrap();
        assert!(!odd.is_witness(3)); // 6 > 7 false
        assert!(odd.is_witness(4)); // 8 > 7
        let even = Config::fail_stop(8, 3).unwrap();
        assert!(!even.is_witness(4)); // 8 > 8 false
        assert!(even.is_witness(5));
    }

    #[test]
    fn error_display_names_model() {
        let e = Config::malicious(4, 2).unwrap_err();
        let s = e.to_string();
        assert!(s.contains("malicious"));
        assert!(s.contains("k = 2"));
    }

    #[test]
    #[should_panic(expected = "at least one process must be able to be correct")]
    fn unchecked_rejects_all_faulty() {
        let _ = Config::unchecked(3, 3);
    }

    #[test]
    fn unchecked_allows_beyond_bound() {
        let c = Config::unchecked(4, 2);
        assert_eq!(c.quota(), 2);
    }

    #[test]
    fn k_zero_is_valid() {
        let c = Config::fail_stop(1, 0).unwrap();
        assert_eq!(c.quota(), 1);
        assert!(c.enough_witnesses(1));
    }
}
