//! # bt-core — the Bracha-Toueg resilient consensus protocols
//!
//! Implementation of the protocols of Bracha & Toueg, *Resilient Consensus
//! Protocols* (PODC 1983), on top of the [`simnet`] asynchronous
//! message-passing substrate:
//!
//! * [`FailStop`] — the Figure 1 protocol, `⌊(n−1)/2⌋`-resilient against
//!   fail-stop (crash) faults, built on message cardinalities and
//!   *witnesses*;
//! * [`Malicious`] — the Figure 2 protocol, `⌊(n−1)/3⌋`-resilient against
//!   Byzantine faults, built on the initial/echo authenticated-broadcast
//!   primitive (the ancestor of Bracha's reliable broadcast);
//! * [`Simple`] — the §4.1 majority variant the paper's Markov-chain
//!   performance analysis models;
//! * [`InitiallyDead`] — a reconstruction of the §5 footnote protocol
//!   tolerating initially-dead processes under the intermediate
//!   interpretation of bivalence.
//!
//! Both resilience bounds are tight: Theorem 1 (no `⌊n/2⌋`-resilient
//! fail-stop protocol) and Theorem 3 (no `⌊n/3⌋`-resilient malicious
//! protocol). [`Config`]'s checked constructors enforce them; the
//! `modelcheck` crate demonstrates them executably and the `adversary`
//! crate supplies the fault behaviours the protocols are exercised against.
//!
//! ## Quickstart
//!
//! ```
//! use bt_core::{Config, FailStop};
//! use simnet::{Role, Sim, Value};
//!
//! // Seven processes, up to three of which may crash.
//! let config = Config::fail_stop(7, 3)?;
//! let mut b = Sim::builder();
//! for i in 0..7 {
//!     b.process(
//!         Box::new(FailStop::new(config, Value::from(i % 2 == 0))),
//!         Role::Correct,
//!     );
//! }
//! let report = b.seed(42).build().run();
//! assert!(report.agreement());
//! assert!(report.all_correct_decided());
//! # Ok::<(), bt_core::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ablation;
pub mod broadcast;
mod config;
pub mod failstop;
pub mod initially_dead;
pub mod malicious;
mod messages;
pub mod multivalued;
pub mod simple;
mod tally;
mod wire;

pub use config::{Config, ConfigError};
pub use failstop::FailStop;
pub use initially_dead::{DeadMsg, DecisionRule, InitiallyDead};
pub use malicious::{Malicious, Termination};
pub use messages::{FailStopMsg, MaliciousKind, MaliciousMsg, Phase, SimpleMsg};
pub use multivalued::{MultiMsg, MultiValued};
pub use simple::Simple;
