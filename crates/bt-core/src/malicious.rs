//! The Figure 2 protocol: `⌊(n−1)/3⌋`-resilient consensus for malicious
//! (Byzantine) faults.
//!
//! State is exchanged through an **initial/echo** broadcast: a process
//! announces `(initial, p, v, t)` to everyone; every process relays what it
//! heard as `(echo, p, v, t)`; and a message from `p` is *accepted* only
//! once more than `(n+k)/2` distinct processes have echoed the same value
//! for `p`. Two quorums of that size intersect in more than `k` processes —
//! hence in at least one correct process, which never echoes two different
//! values for the same `(p, t)` — so no two correct processes can accept
//! different values from the same process in the same phase, no matter what
//! the malicious processes do.
//!
//! Each phase, a process accepts messages from `n−k` processes, adopts the
//! majority value of the accepted set, and decides `i` on accepting more
//! than `(n+k)/2` messages with value `i`. As written in the paper the loop
//! never exits ("for notational convenience only"); the described exit
//! procedure — broadcasting wildcard-phase `(initial, p, i, *)` and
//! `(echo, q, i, *)` messages that participate in every later phase — is
//! implemented as [`Termination::WildcardExit`].
//!
//! # Sender authenticity
//!
//! Per §3.1 the message system lets receivers verify sender identity. The
//! simulator stamps true origins on envelopes, and this implementation
//! drops `initial` messages whose claimed subject differs from the envelope
//! sender — the model's defence against impersonation.

use simnet::{Ctx, Envelope, Process, ProcessId, ProtocolEvent, Value, Wire, WireReader};

use crate::tally::{BitSet, PairValues, PhaseSubjects};
use crate::{Config, MaliciousKind, MaliciousMsg, Phase};

/// What a process does after deciding.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Termination {
    /// Keep following the protocol forever, exactly as Figure 2 is written.
    /// Runs still finish because the engine stops once every correct
    /// process has decided.
    #[default]
    Continue,
    /// Perform the paper's exit procedure: broadcast `(initial, p, i, *)`
    /// and `(echo, q, i, *)` for every `q`, then leave the protocol. The
    /// wildcard messages act in every subsequent phase of every receiver.
    ///
    /// **Model caveat (faithful to the paper's sketch):** a wildcard echo is
    /// a distinct message under Figure 2's `(type, from, phaseno)` dedup, so
    /// a sender can contribute both a concrete echo and a wildcard echo to
    /// the same acceptance count. For *honest* exits this is exactly the
    /// intended "same effect as continued participation"; a malicious
    /// process abusing wildcards, however, gets up to twice the per-sender
    /// influence the `(n+k)/2` quorum arithmetic assumes. The paper
    /// introduces the procedure "for notational convenience only" and does
    /// not analyse it adversarially; under active Byzantine attack prefer
    /// the default [`Termination::Continue`], which needs no wildcards.
    WildcardExit,
}

/// How [`Malicious::replay_for_current_phase`] ended.
enum Replay {
    /// The replayed material did not complete the phase.
    Incomplete,
    /// The phase quota was reached. `sticky_only` is `true` when nothing but
    /// wildcard (`*`) contributions were tallied before completion — a state
    /// that recurs identically next phase, since the sticky maps only grow
    /// on fresh deliveries.
    Completed { sticky_only: bool },
}

/// One process of the Figure 2 malicious-resilient consensus protocol.
///
/// # Examples
///
/// Four processes tolerate one Byzantine fault (`k = 1 = ⌊(4−1)/3⌋`); here
/// all four are honest and must agree:
///
/// ```
/// use bt_core::{Config, Malicious};
/// use simnet::{Role, Sim, Value};
///
/// let config = Config::malicious(4, 1)?;
/// let mut b = Sim::builder();
/// for i in 0..4 {
///     let input = Value::from(i % 2 == 0);
///     b.process(Box::new(Malicious::new(config, input)), Role::Correct);
/// }
/// let report = b.seed(5).build().run();
/// assert!(report.agreement());
/// assert!(report.all_correct_decided());
/// # Ok::<(), bt_core::ConfigError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Malicious {
    config: Config,
    value: Value,
    phase: u64,
    decision: Option<Value>,
    decided_phase: Option<u64>,
    halted: bool,
    termination: Termination,

    /// `(subject, phase)` pairs whose initial this process has already
    /// echoed — the Figure 2 first-message filter for initials.
    echoed: PhaseSubjects,
    /// `(sender, subject, is_wildcard)` triples already counted this phase —
    /// the Figure 2 first-message filter for echoes, as a `2n²`-bit set
    /// indexed `((sender·n + subject) << 1) | wildcard`. One *concrete* echo
    /// per sender per subject per phase, whatever its value, so an
    /// equivocating sender contributes at most one count. A sender's
    /// wildcard (`*`) echo is a distinct message in the paper's dedup (its
    /// `phaseno` differs from every concrete phase), so it counts in its own
    /// right — without this, a laggard that counted a decider's
    /// *pre-decision* echo could never benefit from its post-decision
    /// wildcard and would strand.
    echo_seen: BitSet,
    /// `echo_count[subject][value]` for the current phase.
    echo_count: Vec<[usize; 2]>,
    /// Value accepted from each subject this phase, once the echo count
    /// crosses the `(n+k)/2` threshold.
    accepted: Vec<Option<Value>>,
    /// Accepted-message counts per value for the current phase.
    message_count: [usize; 2],

    /// Future-phase echoes, replayed on arrival in their phase; batches
    /// kept sorted by phase, arrival order within a batch.
    deferred: Vec<(u64, Vec<(ProcessId, MaliciousMsg)>)>,
    /// Wildcard `(echo, subject, v, *)` contributions, by `(sender, subject)`.
    sticky_echo: PairValues,
    /// Wildcard `(initial, subject, v, *)` announcements, by subject.
    sticky_init: Vec<Option<Value>>,
}

impl Malicious {
    /// Creates a process with the given initial value (`i_p`) and the
    /// default [`Termination::Continue`].
    #[must_use]
    pub fn new(config: Config, input: Value) -> Self {
        Malicious::with_termination(config, input, Termination::default())
    }

    /// Creates a process with an explicit post-decision behaviour.
    #[must_use]
    pub fn with_termination(config: Config, input: Value, termination: Termination) -> Self {
        let n = config.n();
        Malicious {
            config,
            value: input,
            phase: 0,
            decision: None,
            decided_phase: None,
            halted: false,
            termination,
            echoed: PhaseSubjects::new(n),
            echo_seen: BitSet::with_bits(2 * n * n),
            echo_count: vec![[0; 2]; n],
            accepted: vec![None; n],
            message_count: [0; 2],
            deferred: Vec::new(),
            sticky_echo: PairValues::new(n),
            sticky_init: vec![None; n],
        }
    }

    /// The deferred batch for exactly `phase`, detached, if any.
    fn take_deferred(&mut self, phase: u64) -> Option<Vec<(ProcessId, MaliciousMsg)>> {
        match self.deferred.binary_search_by_key(&phase, |e| e.0) {
            Ok(i) => Some(self.deferred.remove(i).1),
            Err(_) => None,
        }
    }

    /// The process's current value.
    #[must_use]
    pub fn value(&self) -> Value {
        self.value
    }

    /// The configuration this process runs under.
    #[must_use]
    pub fn config(&self) -> Config {
        self.config
    }

    /// Counts one echo (`wildcard` = it came from the `*`-phase exit
    /// procedure); returns `true` when the phase quota is reached.
    fn tally_echo(
        &mut self,
        sender: ProcessId,
        subject: ProcessId,
        value: Value,
        wildcard: bool,
        ctx: &mut Ctx<'_, MaliciousMsg>,
    ) -> bool {
        let key =
            ((sender.index() * self.config.n() + subject.index()) << 1) | usize::from(wildcard);
        if !self.echo_seen.insert(key) {
            return false; // duplicate (or equivocation) from this sender
        }
        let count = &mut self.echo_count[subject.index()][value.index()];
        *count += 1;
        let count = *count;
        if self.accepted[subject.index()].is_none() && self.config.accepts(count) {
            self.accepted[subject.index()] = Some(value);
            self.message_count[value.index()] += 1;
            ctx.emit(ProtocolEvent::EchoAccepted {
                phase: self.phase,
                subject,
                value,
                echoes: count,
            });
            if self.message_count[0] + self.message_count[1] >= self.config.quota() {
                return true;
            }
        }
        false
    }

    /// Ends phases until one is left incomplete (or the process exits).
    fn advance(&mut self, ctx: &mut Ctx<'_, MaliciousMsg>) {
        let mut sticky_fixpoint = false;
        loop {
            // End-of-phase block of Figure 2: adopt the majority of the
            // accepted values, then check the decision threshold.
            let previous = self.value;
            self.value = Value::majority_of(self.message_count);
            if self.value != previous {
                ctx.emit(ProtocolEvent::ValueFlipped {
                    phase: self.phase,
                    from: previous,
                    to: self.value,
                });
            }
            let decided_now = Value::BOTH
                .into_iter()
                .find(|v| self.config.decides(self.message_count[v.index()]));
            if let Some(v) = decided_now {
                debug_assert_eq!(v, self.value, "the decided value is the majority value");
                if self.decision.is_none() {
                    self.decision = Some(v);
                    self.decided_phase = Some(self.phase);
                    ctx.emit(ProtocolEvent::Decided {
                        phase: self.phase,
                        value: v,
                    });
                }
                if self.termination == Termination::WildcardExit {
                    self.exit_broadcast(ctx, v);
                    return;
                }
            }

            if sticky_fixpoint {
                // The phase just ended was completed purely by wildcard
                // (`*`) contributions, with no deferred echo waiting beyond
                // it. The sticky maps never change, so every later phase
                // would complete identically without a single new message —
                // an unbounded catch-up loop inside one delivery (btfuzz
                // found it: a Continue-mode process whose peers have all
                // wildcard-exited spins here forever). Come to rest instead;
                // fresh concrete messages re-enter through `on_receive`.
                return;
            }

            // Start the next phase. The per-phase tables are zeroed in
            // place — no reallocation on this per-phase path.
            self.phase += 1;
            ctx.emit(ProtocolEvent::PhaseEntered { phase: self.phase });
            self.echo_seen.clear_all();
            self.echo_count.fill([0; 2]);
            self.accepted.fill(None);
            self.message_count = [0; 2];
            // Batches for phases we skipped past are unreachable now.
            let stale = self.deferred.partition_point(|e| e.0 < self.phase);
            self.deferred.drain(..stale);
            ctx.broadcast(MaliciousMsg::initial(ctx.me(), self.value, self.phase));

            match self.replay_for_current_phase(ctx) {
                Replay::Incomplete => return,
                Replay::Completed { sticky_only } => {
                    sticky_fixpoint =
                        sticky_only && self.deferred.last().is_none_or(|e| e.0 <= self.phase);
                }
            }
        }
    }

    /// Applies wildcard contributions and deferred echoes to the (new)
    /// current phase.
    fn replay_for_current_phase(&mut self, ctx: &mut Ctx<'_, MaliciousMsg>) -> Replay {
        // Wildcard initials: echo once per phase, like a fresh initial.
        // Ascending subject order, so replay is deterministic by
        // construction (the map it replaced iterated in hash order).
        for subject in 0..self.config.n() {
            let Some(v) = self.sticky_init[subject] else {
                continue;
            };
            if self.echoed.insert(subject, self.phase) {
                ctx.broadcast(MaliciousMsg::echo(ProcessId::new(subject), v, self.phase));
            }
        }
        // Wildcard echoes count in every phase, ascending (sender, subject)
        // order. `tally_echo` never touches the sticky map, so walking it
        // one copied presence word at a time is sound and allocation-free.
        let n = self.config.n();
        for w in 0..self.sticky_echo.word_count() {
            let mut bits = self.sticky_echo.presence_word(w);
            while bits != 0 {
                let pair = (w << 6) | bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let v = self.sticky_echo.value_at(pair);
                let (s, q) = (ProcessId::new(pair / n), ProcessId::new(pair % n));
                if self.tally_echo(s, q, v, true, ctx) {
                    return Replay::Completed { sticky_only: true };
                }
            }
        }
        // Deferred concrete echoes for this phase.
        if let Some(batch) = self.take_deferred(self.phase) {
            for (sender, msg) in batch {
                debug_assert_eq!(msg.kind, MaliciousKind::Echo);
                if self.tally_echo(sender, msg.subject, msg.value, false, ctx) {
                    // The rest of the batch is now stale.
                    return Replay::Completed { sticky_only: false };
                }
            }
        }
        Replay::Incomplete
    }

    /// The paper's exit procedure (§3.3): wildcard messages with the same
    /// effect as continued participation, then leave the protocol.
    fn exit_broadcast(&mut self, ctx: &mut Ctx<'_, MaliciousMsg>, v: Value) {
        ctx.broadcast(MaliciousMsg {
            kind: MaliciousKind::Initial,
            subject: ctx.me(),
            value: v,
            phase: Phase::Any,
        });
        for q in ProcessId::all(self.config.n()) {
            ctx.broadcast(MaliciousMsg {
                kind: MaliciousKind::Echo,
                subject: q,
                value: v,
                phase: Phase::Any,
            });
        }
        self.halted = true;
        self.deferred.clear();
        ctx.emit(ProtocolEvent::Halted { phase: self.phase });
    }
}

impl Process for Malicious {
    type Msg = MaliciousMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, MaliciousMsg>) {
        ctx.broadcast(MaliciousMsg::initial(ctx.me(), self.value, 0));
    }

    fn on_receive(&mut self, env: Envelope<MaliciousMsg>, ctx: &mut Ctx<'_, MaliciousMsg>) {
        if self.halted {
            return;
        }
        let sender = env.from;
        let msg = env.msg;
        if msg.subject.index() >= self.config.n() {
            return; // out-of-system subject: Byzantine garbage, like a forged initial
        }
        match (msg.kind, msg.phase) {
            (MaliciousKind::Initial, Phase::At(t)) => {
                if msg.subject != sender {
                    return; // forged initial: authenticity check (§3.1)
                }
                // Echo the first initial per (subject, phase),
                // unconditionally on our own phase.
                if self.echoed.insert(msg.subject.index(), t) {
                    ctx.broadcast(MaliciousMsg::echo(msg.subject, msg.value, t));
                }
            }
            (MaliciousKind::Initial, Phase::Any) => {
                if msg.subject != sender {
                    return;
                }
                // Record first; applies to this and every later phase.
                let v = *self.sticky_init[msg.subject.index()].get_or_insert(msg.value);
                if self.echoed.insert(msg.subject.index(), self.phase) {
                    ctx.broadcast(MaliciousMsg::echo(msg.subject, v, self.phase));
                }
            }
            (MaliciousKind::Echo, Phase::At(t)) => {
                if t < self.phase {
                    return; // stale
                }
                if t > self.phase {
                    let slot = match self.deferred.binary_search_by_key(&t, |e| e.0) {
                        Ok(i) => i,
                        Err(i) => {
                            self.deferred.insert(i, (t, Vec::new()));
                            i
                        }
                    };
                    self.deferred[slot].1.push((sender, msg));
                    return;
                }
                if self.tally_echo(sender, msg.subject, msg.value, false, ctx) {
                    self.advance(ctx);
                }
            }
            (MaliciousKind::Echo, Phase::Any) => {
                let v =
                    self.sticky_echo
                        .insert_or_get(sender.index(), msg.subject.index(), msg.value);
                if self.tally_echo(sender, msg.subject, v, true, ctx) {
                    self.advance(ctx);
                }
            }
        }
    }

    fn decision(&self) -> Option<Value> {
        self.decision
    }

    fn phase(&self) -> u64 {
        self.phase
    }

    fn decision_phase(&self) -> Option<u64> {
        self.decided_phase
    }

    fn halted(&self) -> bool {
        self.halted
    }

    fn snapshot(&self) -> Option<Vec<u8>> {
        // Config and termination policy are constructor arguments; only
        // mutable state is captured, in the same canonical sorted layout
        // the hash-table representation serialized to — the flat tables
        // iterate in key order, so most sections come out sorted for free.
        let mut out = Vec::new();
        self.value.encode(&mut out);
        self.phase.encode(&mut out);
        self.decision.encode(&mut out);
        self.decided_phase.encode(&mut out);
        self.halted.encode(&mut out);

        let mut echoed: Vec<(usize, u64)> = self.echoed.pairs();
        echoed.sort_unstable();
        echoed.encode(&mut out);

        // Bit index ((s·n + q) << 1) | w iterates exactly in ((s, q), w)
        // lexicographic order.
        let echo_seen: Vec<((usize, usize), bool)> = self
            .echo_seen
            .iter()
            .map(|key| {
                let pair = key >> 1;
                let n = self.config.n();
                ((pair / n, pair % n), key & 1 == 1)
            })
            .collect();
        echo_seen.encode(&mut out);

        let echo_count: Vec<(usize, usize)> =
            self.echo_count.iter().map(|&[a, b]| (a, b)).collect();
        echo_count.encode(&mut out);
        self.accepted.encode(&mut out);
        self.message_count[0].encode(&mut out);
        self.message_count[1].encode(&mut out);

        self.deferred.encode(&mut out);

        let sticky_echo: Vec<((usize, usize), Value)> = self.sticky_echo.iter().collect();
        sticky_echo.encode(&mut out);

        let sticky_init: Vec<(usize, Value)> = self
            .sticky_init
            .iter()
            .enumerate()
            .filter_map(|(s, v)| v.map(|v| (s, v)))
            .collect();
        sticky_init.encode(&mut out);
        Some(out)
    }

    fn restore(&mut self, bytes: &[u8]) -> bool {
        let mut r = WireReader::new(bytes);
        let Ok(value) = Value::decode(&mut r) else {
            return false;
        };
        let Ok(phase) = u64::decode(&mut r) else {
            return false;
        };
        let Ok(decision) = Option::<Value>::decode(&mut r) else {
            return false;
        };
        let Ok(decided_phase) = Option::<u64>::decode(&mut r) else {
            return false;
        };
        let Ok(halted) = bool::decode(&mut r) else {
            return false;
        };
        let Ok(echoed) = Vec::<(usize, u64)>::decode(&mut r) else {
            return false;
        };
        let Ok(echo_seen) = Vec::<((usize, usize), bool)>::decode(&mut r) else {
            return false;
        };
        let Ok(echo_count) = Vec::<(usize, usize)>::decode(&mut r) else {
            return false;
        };
        let Ok(accepted) = Vec::<Option<Value>>::decode(&mut r) else {
            return false;
        };
        let Ok(mc0) = usize::decode(&mut r) else {
            return false;
        };
        let Ok(mc1) = usize::decode(&mut r) else {
            return false;
        };
        let Ok(deferred) = Vec::<(u64, Vec<(ProcessId, MaliciousMsg)>)>::decode(&mut r) else {
            return false;
        };
        let Ok(sticky_echo) = Vec::<((usize, usize), Value)>::decode(&mut r) else {
            return false;
        };
        let Ok(sticky_init) = Vec::<(usize, Value)>::decode(&mut r) else {
            return false;
        };
        if r.finish().is_err() {
            return false;
        }
        let n = self.config.n();
        // The tables are indexed by process id: wrong lengths or
        // out-of-range ids would panic the state machine on the next
        // delivery, so a snapshot from a different `n` is rejected whole.
        if echo_count.len() != n || accepted.len() != n {
            return false;
        }
        if echoed.iter().any(|&(s, _)| s >= n)
            || echo_seen.iter().any(|&((s, q), _)| s >= n || q >= n)
            || sticky_echo.iter().any(|&((s, q), _)| s >= n || q >= n)
            || sticky_init.iter().any(|&(s, _)| s >= n)
            || deferred
                .iter()
                .flat_map(|(_, batch)| batch)
                .any(|&(sender, msg)| sender.index() >= n || msg.subject.index() >= n)
        {
            return false;
        }
        self.value = value;
        self.phase = phase;
        self.decision = decision;
        self.decided_phase = decided_phase;
        self.halted = halted;
        self.echoed = PhaseSubjects::new(n);
        for (s, t) in echoed {
            self.echoed.insert(s, t);
        }
        self.echo_seen = BitSet::with_bits(2 * n * n);
        for ((s, q), w) in echo_seen {
            self.echo_seen.insert(((s * n + q) << 1) | usize::from(w));
        }
        self.echo_count = echo_count.into_iter().map(|(a, b)| [a, b]).collect();
        self.accepted = accepted;
        self.message_count = [mc0, mc1];
        // Mirror the BTreeMap collect this replaced: sorted by phase, a
        // repeated phase keeping the last batch.
        self.deferred.clear();
        for (t, batch) in deferred {
            match self.deferred.binary_search_by_key(&t, |e| e.0) {
                Ok(i) => self.deferred[i].1 = batch,
                Err(i) => self.deferred.insert(i, (t, batch)),
            }
        }
        self.sticky_echo = PairValues::new(n);
        for ((s, q), v) in sticky_echo {
            self.sticky_echo.insert_or_get(s, q, v);
        }
        self.sticky_init = vec![None; n];
        for (s, v) in sticky_init {
            self.sticky_init[s] = Some(v);
        }
        true
    }
}

/// Convenience: a boxed [`Malicious`] process.
#[must_use]
pub fn malicious_process(config: Config, input: Value) -> Box<dyn Process<Msg = MaliciousMsg>> {
    Box::new(Malicious::new(config, input))
}

/// Builds a full system of `n` correct malicious-protocol processes with the
/// given inputs.
///
/// # Panics
///
/// Panics if `inputs.len() != config.n()`.
pub fn build_correct_system(
    builder: &mut simnet::SimBuilder<MaliciousMsg>,
    config: Config,
    inputs: &[Value],
) {
    assert_eq!(inputs.len(), config.n(), "one input per process");
    for &input in inputs {
        builder.process(malicious_process(config, input), simnet::Role::Correct);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{Role, RunStatus, Sim, SimRng};

    fn run_inputs(n: usize, k: usize, inputs: &[Value], seed: u64) -> simnet::RunReport {
        let config = Config::malicious(n, k).unwrap();
        let mut b = Sim::builder();
        build_correct_system(&mut b, config, inputs);
        b.seed(seed).step_limit(4_000_000).build().run()
    }

    #[test]
    fn unanimous_decides_that_value_fast() {
        let inputs = vec![Value::One; 4];
        let report = run_inputs(4, 1, &inputs, 2);
        assert_eq!(report.status, RunStatus::Stopped);
        assert_eq!(report.decided_value(), Some(Value::One));
        // Paper: unanimous inputs decide "within two phases".
        assert!(report.phases_to_decision().unwrap() <= 2);
    }

    #[test]
    fn mixed_inputs_agree_across_seeds() {
        let inputs = [
            Value::Zero,
            Value::One,
            Value::Zero,
            Value::One,
            Value::One,
            Value::Zero,
            Value::One,
        ];
        for seed in 0..20 {
            let report = run_inputs(7, 2, &inputs, seed);
            assert!(report.agreement(), "seed {seed} broke agreement");
            assert!(
                report.all_correct_decided(),
                "seed {seed} did not terminate: {:?}",
                report.status
            );
        }
    }

    #[test]
    fn supermajority_decides_that_value() {
        // More than (n+k)/2 = (7+2)/2 = 4.5 ⇒ at least 5 of 7 share input 0.
        let inputs = [
            Value::Zero,
            Value::Zero,
            Value::Zero,
            Value::Zero,
            Value::Zero,
            Value::One,
            Value::One,
        ];
        for seed in 0..10 {
            let report = run_inputs(7, 2, &inputs, seed);
            assert_eq!(report.decided_value(), Some(Value::Zero), "seed {seed}");
        }
    }

    #[test]
    fn forged_initials_are_dropped() {
        let config = Config::malicious(4, 1).unwrap();
        let mut p = Malicious::new(config, Value::Zero);
        let mut outbox = Vec::new();
        let mut rng = SimRng::seed(0);
        let mut ctx = Ctx::new(ProcessId::new(0), 4, 0, &mut outbox, &mut rng);
        p.on_start(&mut ctx);
        outbox.clear();

        // p1 claims an initial "from p2": must be ignored, no echo.
        let mut ctx = Ctx::new(ProcessId::new(0), 4, 0, &mut outbox, &mut rng);
        p.on_receive(
            Envelope::new(
                ProcessId::new(1),
                MaliciousMsg::initial(ProcessId::new(2), Value::One, 0),
            ),
            &mut ctx,
        );
        assert!(outbox.is_empty(), "forged initial must not be echoed");
    }

    #[test]
    fn out_of_range_subject_is_dropped_not_a_panic() {
        // Over a socket the subject field is adversary-controlled bytes; a
        // subject outside 0..n must be ignored, never index the echo tables.
        let config = Config::malicious(4, 1).unwrap();
        let mut p = Malicious::new(config, Value::Zero);
        let mut outbox = Vec::new();
        let mut rng = SimRng::seed(0);
        let mut ctx = Ctx::new(ProcessId::new(0), 4, 0, &mut outbox, &mut rng);
        p.on_start(&mut ctx);
        outbox.clear();

        let mut ctx = Ctx::new(ProcessId::new(0), 4, 0, &mut outbox, &mut rng);
        for msg in [
            MaliciousMsg::echo(ProcessId::new(4), Value::One, 0),
            MaliciousMsg::echo(ProcessId::new(usize::MAX), Value::One, 0),
            MaliciousMsg {
                kind: MaliciousKind::Echo,
                subject: ProcessId::new(9),
                value: Value::One,
                phase: Phase::Any,
            },
        ] {
            p.on_receive(Envelope::new(ProcessId::new(1), msg), &mut ctx);
        }
        assert!(outbox.is_empty(), "garbage must not trigger echoes");
        assert_eq!(p.message_count, [0, 0], "garbage must not be accepted");
    }

    #[test]
    fn initial_is_echoed_once_per_subject_phase() {
        let config = Config::malicious(4, 1).unwrap();
        let mut p = Malicious::new(config, Value::Zero);
        let mut outbox = Vec::new();
        let mut rng = SimRng::seed(0);
        let mut ctx = Ctx::new(ProcessId::new(0), 4, 0, &mut outbox, &mut rng);
        p.on_start(&mut ctx);
        outbox.clear();

        let init = MaliciousMsg::initial(ProcessId::new(1), Value::One, 0);
        {
            let mut ctx = Ctx::new(ProcessId::new(0), 4, 0, &mut outbox, &mut rng);
            p.on_receive(Envelope::new(ProcessId::new(1), init), &mut ctx);
        }
        assert_eq!(outbox.len(), 4, "one echo to each of the 4 processes");

        // A repeat (even with a different value — equivocation) is ignored.
        let equivocated = MaliciousMsg::initial(ProcessId::new(1), Value::Zero, 0);
        {
            let mut ctx = Ctx::new(ProcessId::new(0), 4, 0, &mut outbox, &mut rng);
            p.on_receive(Envelope::new(ProcessId::new(1), equivocated), &mut ctx);
        }
        assert_eq!(
            outbox.len(),
            4,
            "second initial for same (subject, phase) dropped"
        );
    }

    #[test]
    fn equivocating_echoes_count_once() {
        let config = Config::malicious(4, 1).unwrap();
        let mut p = Malicious::new(config, Value::Zero);
        let mut outbox = Vec::new();
        let mut rng = SimRng::seed(0);
        let mut ctx = Ctx::new(ProcessId::new(0), 4, 0, &mut outbox, &mut rng);
        p.on_start(&mut ctx);

        let subject = ProcessId::new(2);
        // Sender p1 echoes 0 then 1 for the same subject: only the first counts.
        p.on_receive(
            Envelope::new(
                ProcessId::new(1),
                MaliciousMsg::echo(subject, Value::Zero, 0),
            ),
            &mut ctx,
        );
        p.on_receive(
            Envelope::new(
                ProcessId::new(1),
                MaliciousMsg::echo(subject, Value::One, 0),
            ),
            &mut ctx,
        );
        assert_eq!(p.echo_count[subject.index()], [1, 0]);
    }

    #[test]
    fn acceptance_needs_quorum() {
        // n=4, k=1: accept needs echoes > 2.5, i.e. 3 distinct echoers.
        let config = Config::malicious(4, 1).unwrap();
        let mut p = Malicious::new(config, Value::Zero);
        let mut outbox = Vec::new();
        let mut rng = SimRng::seed(0);
        let mut ctx = Ctx::new(ProcessId::new(0), 4, 0, &mut outbox, &mut rng);
        p.on_start(&mut ctx);

        let subject = ProcessId::new(3);
        for s in 0..2 {
            p.on_receive(
                Envelope::new(
                    ProcessId::new(s),
                    MaliciousMsg::echo(subject, Value::One, 0),
                ),
                &mut ctx,
            );
        }
        assert_eq!(p.accepted[3], None, "2 echoes are not enough");
        p.on_receive(
            Envelope::new(
                ProcessId::new(2),
                MaliciousMsg::echo(subject, Value::One, 0),
            ),
            &mut ctx,
        );
        assert_eq!(p.accepted[3], Some(Value::One));
        assert_eq!(p.message_count, [0, 1]);
    }

    #[test]
    fn wildcard_exit_releases_laggards() {
        // All four processes use WildcardExit; runs must still complete and
        // agree even though deciders leave the protocol.
        let config = Config::malicious(4, 1).unwrap();
        for seed in 0..20 {
            let mut b = Sim::builder();
            for i in 0..4 {
                b.process(
                    Box::new(Malicious::with_termination(
                        config,
                        Value::from(i % 2 == 0),
                        Termination::WildcardExit,
                    )),
                    Role::Correct,
                );
            }
            let report = b.seed(seed).step_limit(4_000_000).build().run();
            assert!(report.agreement(), "seed {seed} broke agreement");
            assert!(
                report.all_correct_decided(),
                "seed {seed} did not complete: {:?}",
                report.status
            );
        }
    }

    #[test]
    fn wildcard_echo_counts_despite_earlier_concrete_echo() {
        // Regression (found by the laggard integration test, seed 8): a
        // laggard that already counted a decider's *pre-decision* concrete
        // echo — possibly with the stale value — must still be able to
        // count that decider's post-decision wildcard echo in the same
        // phase. The wildcard is a distinct message under Figure 2's
        // (type, from, phaseno) dedup, so it gets its own count; without
        // that the laggard's phase can become permanently incompletable
        // once the deciders halt.
        let config = Config::malicious(4, 1).unwrap();
        let mut p = Malicious::new(config, Value::Zero);
        let mut outbox = Vec::new();
        let mut rng = SimRng::seed(0);
        let mut ctx = Ctx::new(ProcessId::new(0), 4, 0, &mut outbox, &mut rng);
        p.on_start(&mut ctx);

        let subject = ProcessId::new(2);
        // p1's concrete echo claims subject 2 said Zero…
        p.on_receive(
            Envelope::new(
                ProcessId::new(1),
                MaliciousMsg::echo(subject, Value::Zero, 0),
            ),
            &mut ctx,
        );
        assert_eq!(p.echo_count[subject.index()], [1, 0]);
        // …then p1 decides One and its wildcard arrives: it must count.
        p.on_receive(
            Envelope::new(
                ProcessId::new(1),
                MaliciousMsg {
                    kind: MaliciousKind::Echo,
                    subject,
                    value: Value::One,
                    phase: Phase::Any,
                },
            ),
            &mut ctx,
        );
        assert_eq!(
            p.echo_count[subject.index()],
            [1, 1],
            "the wildcard echo is a distinct message and must be counted"
        );
    }

    #[test]
    fn pure_sticky_phases_cannot_spin_forever() {
        // Regression (found by btfuzz, Partition schedule + TwoFaced peer):
        // a Continue-mode process whose other three peers have all
        // wildcard-exited completes phase after phase from the sticky `*`
        // messages alone. Those messages never change, so the catch-up loop
        // in `advance` used to spin forever inside a single `on_receive`,
        // allocating broadcasts without bound. The fixpoint must be
        // detected and the call must return.
        let config = Config::malicious(4, 1).unwrap();
        let mut p = Malicious::new(config, Value::Zero); // Termination::Continue
        let mut outbox = Vec::new();
        let mut rng = SimRng::seed(0);
        let mut ctx = Ctx::new(ProcessId::new(0), 4, 0, &mut outbox, &mut rng);
        p.on_start(&mut ctx);

        // Deliver the full exit burst of peers 1..4, all decided One.
        for peer in 1..4 {
            let sender = ProcessId::new(peer);
            let mut ctx = Ctx::new(ProcessId::new(0), 4, 0, &mut outbox, &mut rng);
            p.on_receive(
                Envelope::new(
                    sender,
                    MaliciousMsg {
                        kind: MaliciousKind::Initial,
                        subject: sender,
                        value: Value::One,
                        phase: Phase::Any,
                    },
                ),
                &mut ctx,
            );
            for q in ProcessId::all(4) {
                let mut ctx = Ctx::new(ProcessId::new(0), 4, 0, &mut outbox, &mut rng);
                p.on_receive(
                    Envelope::new(
                        sender,
                        MaliciousMsg {
                            kind: MaliciousKind::Echo,
                            subject: q,
                            value: Value::One,
                            phase: Phase::Any,
                        },
                    ),
                    &mut ctx,
                );
            }
        }
        // Three same-value sticky echoes accept every subject, so each
        // phase completes from stickies alone: the process must decide and
        // come to rest, not churn phases.
        assert_eq!(p.decision(), Some(Value::One));
        assert!(
            p.phase() < 8,
            "sticky fixpoint must stop phase churn, got phase {}",
            p.phase()
        );
        assert!(!p.halted(), "Continue mode stays live");
    }

    #[test]
    fn snapshot_restore_round_trips_echo_state() {
        let config = Config::malicious(4, 1).unwrap();
        let mut p = Malicious::new(config, Value::Zero);
        let mut outbox = Vec::new();
        let mut rng = SimRng::seed(0);
        let mut ctx = Ctx::new(ProcessId::new(0), 4, 0, &mut outbox, &mut rng);
        p.on_start(&mut ctx);
        // Populate every table: an initial (→ echoed), concrete echoes
        // (→ echo_seen/echo_count), a deferred echo, and wildcard traffic
        // (→ sticky maps).
        p.on_receive(
            Envelope::new(
                ProcessId::new(1),
                MaliciousMsg::initial(ProcessId::new(1), Value::One, 0),
            ),
            &mut ctx,
        );
        p.on_receive(
            Envelope::new(
                ProcessId::new(2),
                MaliciousMsg::echo(ProcessId::new(1), Value::One, 0),
            ),
            &mut ctx,
        );
        p.on_receive(
            Envelope::new(
                ProcessId::new(3),
                MaliciousMsg::echo(ProcessId::new(2), Value::Zero, 4),
            ),
            &mut ctx,
        );
        p.on_receive(
            Envelope::new(
                ProcessId::new(3),
                MaliciousMsg {
                    kind: MaliciousKind::Echo,
                    subject: ProcessId::new(0),
                    value: Value::One,
                    phase: Phase::Any,
                },
            ),
            &mut ctx,
        );

        let snap = p.snapshot().unwrap();
        let mut q = Malicious::new(config, Value::One);
        assert!(q.restore(&snap));
        assert_eq!(q.snapshot().unwrap(), snap, "canonical bytes");
        assert_eq!(q.phase(), p.phase());
        assert_eq!(q.echo_count, p.echo_count);
        assert_eq!(q.echo_seen, p.echo_seen);
        assert_eq!(q.sticky_echo, p.sticky_echo);

        // A snapshot from a larger system must not restore onto this one.
        let big = Config::malicious(7, 2).unwrap();
        let mut wrong = Malicious::new(big, Value::Zero);
        assert!(!wrong.restore(&snap), "table lengths must match n");
        assert!(!wrong.restore(&[1, 2, 3]), "garbage rejected");
    }

    #[test]
    fn termination_continue_keeps_participating_after_decision() {
        let config = Config::malicious(4, 1).unwrap();
        let p = Malicious::new(config, Value::One);
        assert!(!p.halted());
        assert_eq!(p.value(), Value::One);
        assert_eq!(p.config().n(), 4);
    }
}
