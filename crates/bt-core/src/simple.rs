//! The §4.1 simple majority variant: the protocol the paper's Markov-chain
//! analysis actually models.
//!
//! "In each phase processes send each other their value, and wait for `n−k`
//! messages. Processes change their values to the majority of the received
//! message values, and decide a value when receiving more than `(n+k)/2`
//! messages with that value."
//!
//! It is Figure 2 stripped of the echo stage, so it withstands fail-stop
//! (not Byzantine) faults at the `⌊(n−1)/3⌋` resilience the paper analyses.
//! Consistency follows from the same quorum-intersection argument as
//! Theorem 4: a decision on `> (n+k)/2` same-value messages forces a
//! majority of every other process's `n−k`-view. Its execution is exactly
//! the Markov chain of §4.1 (state = number of processes with value 1),
//! which `crates/markov` reproduces analytically; experiment E3 checks the
//! two against each other and against the paper's "< 7 expected phases"
//! bound.
//!
//! As everywhere in the paper, the phase loop is written as infinite "for
//! notational convenience only". This implementation performs a fail-stop
//! exit: a process that decides broadcasts its (adopted, decided) value for
//! one more phase and then halts. By quorum intersection every correct
//! process holds the decided value from the decision phase on, so that last
//! unanimous broadcast is enough for every peer to complete the following
//! phase and decide in turn — while keeping the decided processes' message
//! load finite, which is what makes convergence checkable under hostile
//! (partition) schedules.

use simnet::{Ctx, Envelope, Process, ProtocolEvent, Value, Wire, WireReader};

use crate::{Config, SimpleMsg};

/// One process of the §4.1 simple-majority variant.
///
/// # Examples
///
/// ```
/// use bt_core::{Config, Simple};
/// use simnet::{Role, Sim, Value};
///
/// let config = Config::malicious(6, 1)?; // §4.1 uses the ⌊(n−1)/3⌋ bound
/// let mut b = Sim::builder();
/// for i in 0..6 {
///     b.process(
///         Box::new(Simple::new(config, Value::from(i % 2 == 0))),
///         Role::Correct,
///     );
/// }
/// let report = b.seed(3).build().run();
/// assert!(report.agreement());
/// # Ok::<(), bt_core::ConfigError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Simple {
    config: Config,
    value: Value,
    phase: u64,
    message_count: [usize; 2],
    /// Future-phase messages, sorted by phase, arrival order per batch.
    deferred: Vec<(u64, Vec<SimpleMsg>)>,
    decision: Option<Value>,
    decided_phase: Option<u64>,
    halted: bool,
}

impl Simple {
    /// Creates a process with the given initial value.
    #[must_use]
    pub fn new(config: Config, input: Value) -> Self {
        Simple {
            config,
            value: input,
            phase: 0,
            message_count: [0; 2],
            deferred: Vec::new(),
            decision: None,
            decided_phase: None,
            halted: false,
        }
    }

    /// The process's current value.
    #[must_use]
    pub fn value(&self) -> Value {
        self.value
    }

    /// The configuration this process runs under.
    #[must_use]
    pub fn config(&self) -> Config {
        self.config
    }

    /// Counts one current-phase message; returns `true` if the phase ended.
    fn count(&mut self, msg: SimpleMsg) -> bool {
        debug_assert_eq!(msg.phase, self.phase);
        self.message_count[msg.value.index()] += 1;
        self.message_count[0] + self.message_count[1] >= self.config.quota()
    }

    fn end_phase(&mut self, ctx: &mut Ctx<'_, SimpleMsg>) {
        let previous = self.value;
        self.value = Value::majority_of(self.message_count);
        if self.value != previous {
            ctx.emit(ProtocolEvent::ValueFlipped {
                phase: self.phase,
                from: previous,
                to: self.value,
            });
        }
        if self.decision.is_none() {
            for v in Value::BOTH {
                if self.config.decides(self.message_count[v.index()]) {
                    self.decision = Some(v);
                    self.decided_phase = Some(self.phase);
                    ctx.emit(ProtocolEvent::Decided {
                        phase: self.phase,
                        value: v,
                    });
                }
            }
        }
        self.phase += 1;
        ctx.emit(ProtocolEvent::PhaseEntered { phase: self.phase });
        self.message_count = [0; 2];
        ctx.broadcast(SimpleMsg {
            phase: self.phase,
            value: self.value,
        });
        if self.decision.is_some() {
            // Fail-stop exit: one broadcast past the decision, then leave.
            // The quorum-intersection argument makes every correct process
            // adopt the decided value by the decision phase, so this final
            // unanimous-value message lets everyone else — including a
            // partitioned laggard — complete the next phase and decide.
            // Without it the paper's as-written infinite loop has deciders
            // churn phases forever, and a laggard's catch-up through the
            // ever-growing backlog explodes past any step limit (found by
            // btfuzz under a quota-sized-partition schedule).
            self.halted = true;
            self.deferred.clear();
            ctx.emit(ProtocolEvent::Halted { phase: self.phase });
        }
    }

    fn drain_deferred(&mut self, ctx: &mut Ctx<'_, SimpleMsg>) {
        while !self.halted {
            let Ok(slot) = self.deferred.binary_search_by_key(&self.phase, |e| e.0) else {
                return;
            };
            let mut batch = self.deferred.remove(slot).1;
            let mut ended = false;
            while let Some(msg) = batch.pop() {
                if self.count(msg) {
                    self.end_phase(ctx);
                    ended = true;
                    break;
                }
            }
            if !ended {
                return;
            }
        }
    }
}

impl Process for Simple {
    type Msg = SimpleMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, SimpleMsg>) {
        ctx.broadcast(SimpleMsg {
            phase: 0,
            value: self.value,
        });
    }

    fn on_receive(&mut self, env: Envelope<SimpleMsg>, ctx: &mut Ctx<'_, SimpleMsg>) {
        if self.halted {
            return;
        }
        let msg = env.msg;
        if msg.phase < self.phase {
            return;
        }
        if msg.phase > self.phase {
            let slot = match self.deferred.binary_search_by_key(&msg.phase, |e| e.0) {
                Ok(i) => i,
                Err(i) => {
                    self.deferred.insert(i, (msg.phase, Vec::new()));
                    i
                }
            };
            self.deferred[slot].1.push(msg);
            return;
        }
        if self.count(msg) {
            self.end_phase(ctx);
            self.drain_deferred(ctx);
        }
    }

    fn decision(&self) -> Option<Value> {
        self.decision
    }

    fn phase(&self) -> u64 {
        self.phase
    }

    fn decision_phase(&self) -> Option<u64> {
        self.decided_phase
    }

    fn halted(&self) -> bool {
        self.halted
    }

    fn snapshot(&self) -> Option<Vec<u8>> {
        let mut out = Vec::new();
        self.value.encode(&mut out);
        self.phase.encode(&mut out);
        self.message_count[0].encode(&mut out);
        self.message_count[1].encode(&mut out);
        self.deferred.encode(&mut out);
        self.decision.encode(&mut out);
        self.decided_phase.encode(&mut out);
        self.halted.encode(&mut out);
        Some(out)
    }

    fn restore(&mut self, bytes: &[u8]) -> bool {
        let mut r = WireReader::new(bytes);
        let Ok(value) = Value::decode(&mut r) else {
            return false;
        };
        let Ok(phase) = u64::decode(&mut r) else {
            return false;
        };
        let Ok(zeros) = usize::decode(&mut r) else {
            return false;
        };
        let Ok(ones) = usize::decode(&mut r) else {
            return false;
        };
        let Ok(deferred) = Vec::<(u64, Vec<SimpleMsg>)>::decode(&mut r) else {
            return false;
        };
        let Ok(decision) = Option::<Value>::decode(&mut r) else {
            return false;
        };
        let Ok(decided_phase) = Option::<u64>::decode(&mut r) else {
            return false;
        };
        let Ok(halted) = bool::decode(&mut r) else {
            return false;
        };
        if r.finish().is_err() {
            return false;
        }
        self.value = value;
        self.phase = phase;
        self.message_count = [zeros, ones];
        // Mirror the BTreeMap collect this replaced: sorted by phase, a
        // repeated phase keeping the last batch.
        self.deferred.clear();
        for (t, batch) in deferred {
            match self.deferred.binary_search_by_key(&t, |e| e.0) {
                Ok(i) => self.deferred[i].1 = batch,
                Err(i) => self.deferred.insert(i, (t, batch)),
            }
        }
        self.decision = decision;
        self.decided_phase = decided_phase;
        self.halted = halted;
        true
    }
}

/// Convenience: a boxed [`Simple`] process.
#[must_use]
pub fn simple_process(config: Config, input: Value) -> Box<dyn Process<Msg = SimpleMsg>> {
    Box::new(Simple::new(config, input))
}

/// Builds a full system of `n` correct simple-variant processes.
///
/// # Panics
///
/// Panics if `inputs.len() != config.n()`.
pub fn build_correct_system(
    builder: &mut simnet::SimBuilder<SimpleMsg>,
    config: Config,
    inputs: &[Value],
) {
    assert_eq!(inputs.len(), config.n(), "one input per process");
    for &input in inputs {
        builder.process(simple_process(config, input), simnet::Role::Correct);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{ProcessId, Sim, SimRng};

    fn run_inputs(n: usize, k: usize, inputs: &[Value], seed: u64) -> simnet::RunReport {
        let config = Config::malicious(n, k).unwrap();
        let mut b = Sim::builder();
        build_correct_system(&mut b, config, inputs);
        b.seed(seed).step_limit(4_000_000).build().run()
    }

    #[test]
    fn unanimous_decides_immediately() {
        let inputs = vec![Value::One; 4];
        let report = run_inputs(4, 1, &inputs, 1);
        assert_eq!(report.decided_value(), Some(Value::One));
        // All n−k=3 collected messages carry 1 and 3 > (4+1)/2: phase-0
        // decision.
        assert_eq!(report.phases_to_decision(), Some(0));
    }

    #[test]
    fn mixed_inputs_agree_and_terminate() {
        let inputs = [
            Value::Zero,
            Value::One,
            Value::Zero,
            Value::One,
            Value::One,
            Value::Zero,
        ];
        for seed in 0..25 {
            let report = run_inputs(6, 1, &inputs, seed);
            assert!(report.agreement(), "seed {seed} broke agreement");
            assert!(report.all_correct_decided(), "seed {seed} stalled");
        }
    }

    #[test]
    fn majority_update_and_tie_break() {
        let config = Config::malicious(4, 1).unwrap();
        let mut p = Simple::new(config, Value::One);
        let mut outbox = Vec::new();
        let mut rng = SimRng::seed(0);
        let mut ctx = Ctx::new(ProcessId::new(0), 4, 0, &mut outbox, &mut rng);
        p.on_start(&mut ctx);

        // Quota 3: values 0, 0, 1 → majority 0, no decision (2 ≤ 2.5).
        for (s, v) in [(0, Value::Zero), (1, Value::Zero), (2, Value::One)] {
            p.on_receive(
                Envelope::new(ProcessId::new(s), SimpleMsg { phase: 0, value: v }),
                &mut ctx,
            );
        }
        assert_eq!(p.phase(), 1);
        assert_eq!(p.value(), Value::Zero);
        assert_eq!(p.decision(), None);
    }

    #[test]
    fn decision_sticks_once_made() {
        let config = Config::malicious(4, 1).unwrap();
        let mut p = Simple::new(config, Value::One);
        let mut outbox = Vec::new();
        let mut rng = SimRng::seed(0);
        let mut ctx = Ctx::new(ProcessId::new(0), 4, 0, &mut outbox, &mut rng);
        p.on_start(&mut ctx);

        // Phase 0: three 1s → decide 1 ((n+k)/2 = 2.5 < 3).
        for s in 0..3 {
            p.on_receive(
                Envelope::new(
                    ProcessId::new(s),
                    SimpleMsg {
                        phase: 0,
                        value: Value::One,
                    },
                ),
                &mut ctx,
            );
        }
        assert_eq!(p.decision(), Some(Value::One));
        assert!(
            p.halted(),
            "a decider broadcasts one more phase and then exits"
        );

        // Even an all-zeros later phase cannot change d_p.
        for s in 0..3 {
            p.on_receive(
                Envelope::new(
                    ProcessId::new(s),
                    SimpleMsg {
                        phase: 1,
                        value: Value::Zero,
                    },
                ),
                &mut ctx,
            );
        }
        assert_eq!(p.decision(), Some(Value::One), "decisions are irrevocable");
        assert_eq!(p.value(), Value::One, "an exited process's value is fixed");
    }

    #[test]
    fn snapshot_restore_round_trips() {
        let config = Config::malicious(4, 1).unwrap();
        let mut p = Simple::new(config, Value::One);
        let mut outbox = Vec::new();
        let mut rng = SimRng::seed(0);
        let mut ctx = Ctx::new(ProcessId::new(0), 4, 0, &mut outbox, &mut rng);
        p.on_start(&mut ctx);
        p.on_receive(
            Envelope::new(
                ProcessId::new(1),
                SimpleMsg {
                    phase: 0,
                    value: Value::Zero,
                },
            ),
            &mut ctx,
        );
        p.on_receive(
            Envelope::new(
                ProcessId::new(2),
                SimpleMsg {
                    phase: 2,
                    value: Value::One,
                },
            ),
            &mut ctx,
        );

        let snap = p.snapshot().unwrap();
        let mut q = Simple::new(config, Value::Zero);
        assert!(q.restore(&snap));
        assert_eq!(format!("{p:?}"), format!("{q:?}"));
        assert_eq!(q.snapshot().unwrap(), snap);
        assert!(!q.restore(&[0xFF]), "garbage rejected");
    }

    #[test]
    fn deferred_messages_complete_later_phases() {
        let config = Config::malicious(4, 1).unwrap();
        let mut p = Simple::new(config, Value::Zero);
        let mut outbox = Vec::new();
        let mut rng = SimRng::seed(0);
        let mut ctx = Ctx::new(ProcessId::new(0), 4, 0, &mut outbox, &mut rng);
        p.on_start(&mut ctx);

        // Deliver all of phase 1 before phase 0 completes.
        for s in 0..3 {
            p.on_receive(
                Envelope::new(
                    ProcessId::new(s),
                    SimpleMsg {
                        phase: 1,
                        value: Value::One,
                    },
                ),
                &mut ctx,
            );
        }
        assert_eq!(p.phase(), 0);
        // Now complete phase 0 without a decision (0, 0, 1 → majority 0,
        // 2 ≤ 2.5); the deferred all-ones batch should immediately complete
        // phase 1 and decide there.
        for (s, v) in [(0, Value::Zero), (1, Value::Zero), (2, Value::One)] {
            p.on_receive(
                Envelope::new(ProcessId::new(s), SimpleMsg { phase: 0, value: v }),
                &mut ctx,
            );
        }
        assert_eq!(p.phase(), 2);
        assert_eq!(p.decision(), Some(Value::One));
        assert_eq!(p.decision_phase(), Some(1));
    }
}
