//! E8 — the §3.3 note: "if k < n/5, once a correct process decides, all
//! the other processes also decide within one phase."
//!
//! Measured as the *decision lag*: the difference between the last and
//! first correct decision phases within a run, compared across the
//! `k < n/5` and `n/5 ≤ k ≤ (n−1)/3` regimes.

use adversary::ContrarianMalicious;
use bt_core::{Config, Malicious};
use criterion::{criterion_group, criterion_main, Criterion};
use simnet::{Role, Sim, SimRng, Value};

/// Runs one configuration and returns (max−min) decision phase over
/// correct processes, if all decided.
fn decision_lag(n: usize, k: usize, seed: u64) -> Option<u64> {
    let config = Config::malicious(n, k).expect("within bound");
    let mut b = Sim::builder();
    for i in 0..n - k {
        b.process(
            Box::new(Malicious::new(config, Value::from(i % 2 == 0))),
            Role::Correct,
        );
    }
    for _ in 0..k {
        b.process(Box::new(ContrarianMalicious::new(config)), Role::Faulty);
    }
    let r = b.seed(seed).step_limit(6_000_000).build().run();
    if !r.all_correct_decided() {
        return None;
    }
    let phases: Vec<u64> = r.correct().filter_map(|i| r.decision_phases[i]).collect();
    Some(phases.iter().max().unwrap() - phases.iter().min().unwrap())
}

fn sweep() {
    println!("\nE8: decision lag (last − first correct decision phase), 60 trials");
    println!(
        "{:>4} {:>4} {:>10} {:>10} {:>12} {:>12}",
        "n", "k", "k < n/5?", "mean lag", "max lag", "lag ≤ 1 %"
    );
    let mut rng = SimRng::seed(0xE8);
    for &(n, k) in &[(11usize, 2usize), (16, 3), (13, 4)] {
        let mut lags = Vec::new();
        for i in 0..60 {
            let seed = rng.fork(i).initial_seed();
            if let Some(lag) = decision_lag(n, k, seed) {
                lags.push(lag);
            }
        }
        let small_k = 5 * k < n;
        let mean = lags.iter().sum::<u64>() as f64 / lags.len() as f64;
        let max = *lags.iter().max().unwrap();
        let within = lags.iter().filter(|&&l| l <= 1).count() * 100 / lags.len();
        println!(
            "{n:>4} {k:>4} {:>10} {mean:>10.2} {max:>12} {within:>11}%",
            if small_k { "yes" } else { "no" }
        );
        if small_k {
            assert_eq!(within, 100, "k < n/5 must give lag ≤ 1 (n={n}, k={k})");
        }
    }
}

fn bench(c: &mut Criterion) {
    sweep();
    c.bench_function("e8_lag_n11_k2", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            decision_lag(11, 2, seed)
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
