//! E7 — the §6 comparison: Bracha-Toueg vs Ben-Or.
//!
//! Same substrate, same fair scheduler, same 50/50 input split. The paper:
//! Ben-Or's protocols "have an exponential expected termination time in the
//! fail-stop case, and, in the malicious case, they can overcome up to n/5
//! malicious processes" (vs n/3 here). Expect the Ben-Or column to grow
//! with n while Bracha-Toueg stays flat.

use benor::{build_correct_system as benor_system, BenOrConfig};
use bt_core::{simple::build_correct_system as bt_system, Config};
use criterion::{criterion_group, criterion_main, Criterion};
use simnet::{run_trials, Sim, Value};

fn split(n: usize) -> Vec<Value> {
    (0..n).map(|i| Value::from(i % 2 == 0)).collect()
}

fn sweep() {
    println!("\nE7: phases/rounds to decide, 50/50 inputs, no faults (200 trials)");
    println!(
        "{:>4} {:>22} {:>22}",
        "n", "Bracha-Toueg (§4.1)", "Ben-Or (fail-stop)"
    );
    for n in [4usize, 6, 8, 10, 12] {
        let bt_cfg = Config::malicious(n, (n - 1) / 3).unwrap();
        let bt = run_trials(200, 0xE7, |seed| {
            let mut b = Sim::builder();
            bt_system(&mut b, bt_cfg, &split(n));
            b.seed(seed).step_limit(8_000_000);
            b.build()
        });

        let bo_cfg = BenOrConfig::fail_stop(n, (n - 1) / 2).unwrap();
        let bo = run_trials(200, 0xE7, |seed| {
            let mut b = Sim::builder();
            benor_system(&mut b, bo_cfg, &split(n));
            b.seed(seed).step_limit(8_000_000);
            b.build()
        });

        println!(
            "{n:>4} {:>15.2} ± {:<4.1} {:>15.2} ± {:<4.1}",
            bt.phases.mean, bt.phases.stddev, bo.phases.mean, bo.phases.stddev
        );
    }
    println!("resilience: Bracha-Toueg tolerates n/3 malicious, Ben-Or only n/5.");
}

fn bench(c: &mut Criterion) {
    sweep();
    c.bench_function("e7_bt_simple_n8_run", |b| {
        let cfg = Config::malicious(8, 2).unwrap();
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut builder = Sim::builder();
            bt_system(&mut builder, cfg, &split(8));
            builder.seed(seed).step_limit(8_000_000);
            builder.build().run()
        });
    });
    c.bench_function("e7_benor_n8_run", |b| {
        let cfg = BenOrConfig::fail_stop(8, 3).unwrap();
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut builder = Sim::builder();
            benor_system(&mut builder, cfg, &split(8));
            builder.seed(seed).step_limit(8_000_000);
            builder.build().run()
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
