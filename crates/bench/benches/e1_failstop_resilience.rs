//! E1 — Theorem 2: the Figure 1 fail-stop protocol reaches agreement for
//! every `k ≤ ⌊(n−1)/2⌋` across crash schedules.
//!
//! Prints the resilience sweep (agreement/termination rates and mean
//! phases per `(n, k)`), then times a representative configuration.

use bench::{alternating_inputs, failstop_system};
use bt_core::Config;
use criterion::{criterion_group, criterion_main, Criterion};
use simnet::run_trials;

fn sweep() {
    println!("\nE1: fail-stop resilience sweep (200 trials/point, max crashes)");
    println!(
        "{:>4} {:>4} {:>10} {:>10} {:>12} {:>12}",
        "n", "k", "agree", "decide", "mean phases", "mean msgs"
    );
    for n in [3usize, 5, 7, 9, 11, 15, 21] {
        for k in [0, (n - 1) / 4, (n - 1) / 2] {
            let config = Config::fail_stop(n, k).expect("within bound");
            let inputs = alternating_inputs(n);
            let stats = run_trials(200, 0xE1, |seed| failstop_system(config, &inputs, k, seed));
            assert_eq!(stats.disagreements, 0, "Theorem 2 violated at n={n} k={k}");
            println!(
                "{n:>4} {k:>4} {:>9}% {:>9}% {:>12.2} {:>12.0}",
                100 * (stats.trials - stats.disagreements) / stats.trials,
                100 * stats.decided / stats.trials,
                stats.phases.mean,
                stats.messages.mean,
            );
        }
    }
}

fn bench(c: &mut Criterion) {
    sweep();
    let config = Config::fail_stop(7, 3).unwrap();
    let inputs = alternating_inputs(7);
    c.bench_function("e1_failstop_n7_k3_run", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            failstop_system(config, &inputs, 3, seed).run()
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
