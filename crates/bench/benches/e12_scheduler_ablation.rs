//! E12 — ablation of the §2.3 fairness assumption: how convergence speed
//! depends on the scheduler.
//!
//! The convergence theorems assume every candidate view has probability
//! ≥ ε (the fair scheduler). Safety never depends on this, but speed does:
//! adversarial delaying/partitioning and skewed process speeds stretch the
//! run, while deterministic round-robin (which *violates* the probabilistic
//! assumption) happens to be fastest on all-correct systems. This sweep
//! quantifies the spread.

use bt_core::{Config, Malicious, MaliciousMsg};
use criterion::{criterion_group, criterion_main, Criterion};
use simnet::scheduler::{
    DelayingScheduler, DeliveryOrder, FairScheduler, PartitionScheduler, RoundRobinScheduler,
    Scheduler,
};
use simnet::{run_trials_seq, ProcessId, Role, Sim, Value};

fn make_scheduler(which: &str, n: usize) -> Box<dyn Scheduler<MaliciousMsg>> {
    match which {
        "fair-random" => Box::new(FairScheduler::new()),
        "fair-fifo" => Box::new(FairScheduler::new().delivery_order(DeliveryOrder::Fifo)),
        "fair-lifo" => Box::new(FairScheduler::new().delivery_order(DeliveryOrder::Lifo)),
        "round-robin" => Box::new(RoundRobinScheduler::new()),
        "delay-two" => Box::new(DelayingScheduler::new(
            n,
            &[ProcessId::new(0), ProcessId::new(1)],
        )),
        "partition" => {
            let left: Vec<ProcessId> = ProcessId::all(n).take(n / 2).collect();
            Box::new(PartitionScheduler::new(n, &left, 40, 3))
        }
        "skewed-speeds" => {
            let weights: Vec<f64> = (0..n).map(|i| 10f64.powi((i % 4) as i32)).collect();
            Box::new(FairScheduler::new().with_weights(weights))
        }
        other => unreachable!("unknown scheduler {other}"),
    }
}

fn sweep() {
    let n = 9;
    let k = 2;
    let config = Config::malicious(n, k).unwrap();
    let schedulers = [
        "fair-random",
        "fair-fifo",
        "fair-lifo",
        "round-robin",
        "delay-two",
        "partition",
        "skewed-speeds",
    ];
    println!("\nE12: scheduler ablation (n={n}, all correct, split inputs, 150 trials)");
    println!(
        "{:<16} {:>8} {:>8} {:>14} {:>12}",
        "scheduler", "agree", "decide", "mean phases", "mean steps"
    );
    for which in schedulers {
        let stats = run_trials_seq(150, 0xE12, |seed| {
            let mut b = Sim::builder();
            for i in 0..n {
                b.process(
                    Box::new(Malicious::new(config, Value::from(i % 2 == 0))),
                    Role::Correct,
                );
            }
            b.scheduler(make_scheduler(which, n));
            b.seed(seed).step_limit(16_000_000);
            b.build()
        });
        assert_eq!(
            stats.disagreements, 0,
            "{which}: safety must not depend on scheduling"
        );
        println!(
            "{which:<16} {:>7}% {:>7}% {:>14.2} {:>12.0}",
            100 * (stats.trials - stats.disagreements) / stats.trials,
            100 * stats.decided / stats.trials,
            stats.phases.mean,
            stats.steps.mean,
        );
    }
}

fn bench(c: &mut Criterion) {
    sweep();
    for which in ["fair-random", "round-robin", "delay-two"] {
        let config = Config::malicious(9, 2).unwrap();
        c.bench_function(&format!("e12_{which}_run"), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut builder = Sim::builder();
                for i in 0..9 {
                    builder.process(
                        Box::new(Malicious::new(config, Value::from(i % 2 == 0))),
                        Role::Correct,
                    );
                }
                builder.scheduler(make_scheduler(which, 9));
                builder.seed(seed).step_limit(16_000_000);
                builder.build().run()
            });
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
