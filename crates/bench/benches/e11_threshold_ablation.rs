//! E11 — ablation: why the Figure 1 thresholds are what they are.
//!
//! The witness bar (`cardinality > n/2`) buys the no-two-witness-values
//! invariant; the decision bar (`> k` witnesses) buys decision
//! propagation. Weakening either trades safety for speed. The sweep
//! measures agreement rate and phases-to-decision as each bar is lowered.

use bt_core::ablation::{AblatedFailStop, ThresholdRule};
use bt_core::Config;
use criterion::{criterion_group, criterion_main, Criterion};
use simnet::{run_trials, Role, Sim, Value};

fn trial(config: Config, rule: ThresholdRule, trials: usize) -> simnet::TrialStats {
    run_trials(trials, 0xE11, move |seed| {
        let mut b = Sim::builder();
        for i in 0..config.n() {
            b.process(
                Box::new(AblatedFailStop::new(config, rule, Value::from(i % 2 == 0))),
                Role::Correct,
            );
        }
        b.seed(seed).step_limit(2_000_000);
        b.build()
    })
}

fn sweep() {
    let config = Config::fail_stop(8, 3).unwrap();
    let paper = ThresholdRule::paper(config);
    println!("\nE11: Figure 1 threshold ablation (n=8, k=3, split inputs, 400 trials)");
    println!(
        "{:>12} {:>10} {:>12} {:>12} {:>14}",
        "witness_at", "decide_at", "agree %", "decide %", "mean phases"
    );
    for witness_slack in [0usize, 1, 2, 3, 4] {
        for decide_slack in [0usize, 2] {
            let rule = ThresholdRule::weakened(config, witness_slack, decide_slack);
            let stats = trial(config, rule, 400);
            println!(
                "{:>12} {:>10} {:>12.1} {:>12.1} {:>14.2}",
                rule.witness_at,
                rule.decide_at,
                100.0 * (stats.trials - stats.disagreements) as f64 / stats.trials as f64,
                100.0 * stats.decided as f64 / stats.trials as f64,
                stats.phases.mean,
            );
            if rule == paper {
                assert_eq!(stats.disagreements, 0, "the paper's rule must be safe");
            }
        }
    }
    println!("lower bars decide faster — and start disagreeing. The paper's bars are tight.");
}

fn bench(c: &mut Criterion) {
    sweep();
    let config = Config::fail_stop(8, 3).unwrap();
    let paper = ThresholdRule::paper(config);
    c.bench_function("e11_ablated_paper_rule_run", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut builder = Sim::builder();
            for i in 0..8 {
                builder.process(
                    Box::new(AblatedFailStop::new(config, paper, Value::from(i % 2 == 0))),
                    Role::Correct,
                );
            }
            builder.seed(seed).step_limit(2_000_000);
            builder.build().run()
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
