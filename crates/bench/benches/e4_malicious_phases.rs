//! E4 — §4.2: against the balancing adversary, the malicious protocol's
//! expected phases are bounded by `1/(2Φ(l))` for `k = l√n/2` — and hence
//! **constant for k = o(√n)**.

use bench::{malicious_system, split_inputs};
use bt_core::Config;
use criterion::{criterion_group, criterion_main, Criterion};
use markov::MaliciousChain;
use simnet::run_trials;

fn sweep() {
    println!("\nE4: §4.2 malicious expected phases vs balancing adversary");
    println!(
        "{:>4} {:>4} {:>7} {:>14} {:>14} {:>16}",
        "n", "k", "l", "exact chain", "1/(2Φ(l))", "simulated (150x)"
    );
    for &(n, k) in &[(16usize, 1usize), (25, 2), (36, 3), (49, 3)] {
        let chain = MaliciousChain::new(n, k);
        let exact = chain.expected_phases_balanced();
        let l = chain.l_parameter();
        let bound = MaliciousChain::paper_bound(l);

        let config = Config::malicious(n, k).expect("k ≤ n/5 ≤ (n−1)/3 here");
        let inputs = split_inputs(n, n / 2);
        let stats = run_trials(150, 0xE4, |seed| malicious_system(config, &inputs, k, seed));
        assert_eq!(stats.disagreements, 0);
        println!(
            "{n:>4} {k:>4} {l:>7.3} {exact:>14.3} {bound:>14.3} {:>16.3}",
            stats.phases.mean
        );
    }
    println!("k = o(√n) ⇒ l → 0 ⇒ bound → 1: constant expected phases.");
}

fn bench(c: &mut Criterion) {
    sweep();
    c.bench_function("e4_malicious_n16_k1_balancing_run", |b| {
        let config = Config::malicious(16, 1).unwrap();
        let inputs = split_inputs(16, 8);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            malicious_system(config, &inputs, 1, seed).run()
        });
    });
    c.bench_function("e4_exact_chain_n49_k3", |b| {
        b.iter(|| MaliciousChain::new(49, 3).expected_phases_balanced());
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
