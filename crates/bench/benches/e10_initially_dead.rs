//! E10 — the §5 footnote protocol: initially-dead faults under the
//! intermediate interpretation of bivalence.
//!
//! With every process correct, both decision values must be reachable
//! (bivalence); with one or more initially-dead processes, the decision is
//! pinned to 0. The sweep measures the probability of each outcome and the
//! cost in steps.

use adversary::Silent;
use bt_core::{DeadMsg, InitiallyDead};
use criterion::{criterion_group, criterion_main, Criterion};
use simnet::{run_trials, Role, Sim, Value};

fn system(n: usize, dead: usize, ones: usize, seed: u64) -> Sim<DeadMsg> {
    let mut b = Sim::builder();
    for i in 0..n - dead {
        b.process(
            Box::new(InitiallyDead::new(n, Value::from(i < ones))),
            Role::Correct,
        );
    }
    for _ in 0..dead {
        b.process(Box::new(Silent::<DeadMsg>::new()), Role::Faulty);
    }
    b.seed(seed).step_limit(1_000_000);
    b.build()
}

fn sweep() {
    let n = 6;
    println!("\nE10: §5 initially-dead protocol, n = {n}, majority-1 live inputs (300 trials)");
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>12}",
        "dead", "decided", "P[1]", "P[0]", "mean steps"
    );
    for dead in 0..=2usize {
        let ones = n - dead; // every live process votes 1
        let stats = run_trials(300, 0xE10, |seed| system(n, dead, ones, seed));
        assert_eq!(stats.disagreements, 0);
        assert_eq!(stats.decided, stats.trials, "within quorum tolerance");
        if dead > 0 {
            assert_eq!(
                stats.one_rate(),
                0.0,
                "intermediate bivalence: any fault pins the decision to 0"
            );
        } else {
            assert!(
                stats.one_rate() > 0.0,
                "all-correct majority-1 runs must sometimes decide 1"
            );
        }
        println!(
            "{dead:>6} {:>11}% {:>11.1}% {:>11.1}% {:>12.0}",
            100 * stats.decided / stats.trials,
            stats.one_rate() * 100.0,
            (1.0 - stats.one_rate()) * 100.0,
            stats.steps.mean,
        );
    }
    println!("dead = 0 splits between outcomes (bivalent); dead ≥ 1 is always 0.");
}

fn bench(c: &mut Criterion) {
    sweep();
    c.bench_function("e10_initially_dead_n6_run", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            system(6, 1, 5, seed).run()
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
