//! E6 — the fast-decision claims at the ends of §2.3 and §3.3:
//!
//! * fail-stop: if more than `(n+k)/2` processes share an input, every
//!   correct process decides that value "in just three phases";
//! * malicious: if more than `(n+k)/2` *correct* processes share an input,
//!   every process decides it "in just two phases";
//! * in both cases the decision approximates the majority of the inputs.

use bench::{failstop_system, malicious_system, split_inputs};
use bt_core::Config;
use criterion::{criterion_group, criterion_main, Criterion};
use simnet::{run_trials, Value};

fn sweep() {
    let n = 9;

    println!("\nE6a: fail-stop supermajority fast path (n=9, k=4, 300 trials)");
    let k = 4;
    let config = Config::fail_stop(n, k).unwrap();
    // (n+k)/2 = 6.5 ⇒ at least 7 ones forces value 1.
    for ones in [7usize, 8, 9] {
        let inputs = split_inputs(n, ones);
        let stats = run_trials(300, 0xE6, |seed| failstop_system(config, &inputs, 0, seed));
        assert_eq!(stats.one_rate(), 1.0, "supermajority input must win");
        println!(
            "  ones={ones}: decided 1 in {:.0}% trials, phases p50={} max={}",
            stats.one_rate() * 100.0,
            stats.phases.p50,
            stats.phases.max
        );
        assert!(stats.phases.max <= 3.0, "three-phase claim");
    }

    println!("\nE6b: malicious supermajority fast path (n=9, k=2, 300 trials)");
    let k = 2;
    let config = Config::malicious(n, k).unwrap();
    // (n+k)/2 = 5.5 ⇒ at least 6 correct ones forces value 1.
    for ones in [6usize, 7] {
        let inputs = split_inputs(n, ones);
        let stats = run_trials(300, 0xE6, |seed| malicious_system(config, &inputs, 0, seed));
        assert_eq!(stats.one_rate(), 1.0, "supermajority input must win");
        println!(
            "  ones={ones}: decided 1 in {:.0}% trials, phases p50={} max={}",
            stats.one_rate() * 100.0,
            stats.phases.p50,
            stats.phases.max
        );
        assert!(stats.phases.max <= 2.0, "two-phase claim");
    }

    println!("\nE6c: decision ≈ majority of inputs (n=9, fail-stop k=2, 300 trials)");
    println!("  {:>6} {:>18}", "ones", "P[decide 1]");
    for ones in 0..=n {
        let config = Config::fail_stop(n, 2).unwrap();
        let inputs = split_inputs(n, ones);
        let stats = run_trials(300, 0xE6C, |seed| failstop_system(config, &inputs, 0, seed));
        println!("  {ones:>6} {:>17.1}%", stats.one_rate() * 100.0);
        // Unanimity is exactly the bivalence/validity corner:
        if ones == 0 {
            assert_eq!(stats.one_rate(), 0.0);
        }
        if ones == n {
            assert_eq!(stats.one_rate(), 1.0);
        }
    }
    let _ = Value::Zero;
}

fn bench(c: &mut Criterion) {
    sweep();
    c.bench_function("e6_failstop_supermajority_run", |b| {
        let config = Config::fail_stop(9, 4).unwrap();
        let inputs = split_inputs(9, 8);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            failstop_system(config, &inputs, 0, seed).run()
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
