//! E3 — §4.1 / eq. (13): expected phases of the simple majority variant
//! from a balanced start are **< 7, independent of n**.
//!
//! Three estimates side by side: the exact Markov-chain absorption time,
//! the paper's collapsed-chain closed form (eq. 13), and Monte-Carlo
//! simulation of the actual protocol under the fair scheduler.

use bench::{simple_system, split_inputs};
use bt_core::Config;
use criterion::{criterion_group, criterion_main, Criterion};
use markov::{collapsed, FailStopChain};
use simnet::run_trials;

fn sweep() {
    println!("\nE3: §4.1 fail-stop expected phases, k = n/3, balanced inputs");
    println!(
        "{:>4} {:>14} {:>14} {:>16} {:>8}",
        "n", "exact chain", "eq.(13) bound", "simulated (400x)", "< 7 ?"
    );
    for n in [12usize, 18, 24, 30] {
        let chain = FailStopChain::paper(n);
        let exact = chain.expected_phases_balanced();
        let bound = collapsed::headline_bound(n);
        // Simulate at the protocol's maximal decidable k = ⌊(n−1)/3⌋ (at
        // the analysis's idealized k = n/3 the decide threshold equals the
        // quota and no process can decide — see EXPERIMENTS.md).
        let config = Config::unchecked(n, (n - 1) / 3);
        let inputs = split_inputs(n, n / 2);
        let stats = run_trials(400, 0xE3, |seed| simple_system(config, &inputs, 0, seed));
        assert!(bound < 7.0, "eq. (13) must stay below 7");
        println!(
            "{n:>4} {exact:>14.3} {bound:>14.3} {:>16.3} {:>8}",
            stats.phases.mean,
            if stats.phases.mean < 7.0 { "yes" } else { "NO" },
        );
    }
}

fn bench(c: &mut Criterion) {
    sweep();
    c.bench_function("e3_simple_n18_balanced_run", |b| {
        let config = Config::unchecked(18, 5);
        let inputs = split_inputs(18, 9);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            simple_system(config, &inputs, 0, seed).run()
        });
    });
    c.bench_function("e3_exact_chain_n30", |b| {
        b.iter(|| FailStopChain::paper(30).expected_phases_balanced());
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
