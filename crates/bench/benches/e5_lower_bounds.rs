//! E5 — Theorems 1 and 3: what happens at and beyond the resilience
//! bounds.
//!
//! Within the bound, everything holds (E1/E2 cover that densely). At
//! `k > ⌊(n−1)/2⌋` the Figure 1 protocol provably cannot decide (witness
//! threshold exceeds quota) — verified here by exhaustive exploration.
//! And when the *actual* number of Byzantine processes exceeds the `k` the
//! thresholds were tuned for, consistency/termination break — found here
//! by seed search.

use adversary::TwoFacedMalicious;
use bt_core::{Config, Malicious};
use criterion::{criterion_group, criterion_main, Criterion};
use modelcheck::demos;
use simnet::{Role, Sim, Value};

fn demonstrate() {
    println!("\nE5: lower-bound demonstrations");

    // Lemma 2: bivalent initial configuration (exhaustive).
    let config = Config::fail_stop(3, 1).unwrap();
    let bivalent = demos::find_bivalent_initial(config, 1);
    println!("  Lemma 2, n=3 k=1: bivalent initial inputs = {bivalent:?}");
    assert!(bivalent.is_some());

    // Theorem 1: beyond the bound, no decision is reachable (exhaustive).
    let stuck = demos::failstop_beyond_bound_never_decides(2, 1);
    println!("  Thm 1, n=2 k=1 (> bound 0): no schedule decides = {stuck}");
    assert!(stuck);

    // Theorem 3 flip side: protocol tuned for k=1 faces 2 attackers.
    let tuned = Config::malicious(4, 1).unwrap();
    let mut first_violation = None;
    for seed in 0..3_000u64 {
        let mut b = Sim::builder();
        for i in 0..2 {
            b.process(
                Box::new(Malicious::new(tuned, Value::from(i == 0))),
                Role::Correct,
            );
        }
        for _ in 0..2 {
            b.process(Box::new(TwoFacedMalicious::new(tuned)), Role::Faulty);
        }
        let r = b.seed(seed).step_limit(150_000).build().run();
        if !r.agreement() {
            first_violation = Some((seed, "agreement"));
            break;
        }
        if !r.all_correct_decided() {
            first_violation = Some((seed, "termination"));
            break;
        }
    }
    println!("  Thm 3, n=4 tuned k=1, 2 attackers: violation = {first_violation:?}");
    assert!(
        first_violation.is_some(),
        "guarantees must break beyond the bound"
    );
}

fn bench(c: &mut Criterion) {
    demonstrate();
    c.bench_function("e5_exhaustive_bivalence_n3", |b| {
        let config = Config::fail_stop(3, 1).unwrap();
        b.iter(|| demos::failstop_valence(config, &[Value::One, Value::Zero, Value::One], 1));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
