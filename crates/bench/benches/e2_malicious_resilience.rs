//! E2 — Theorem 4: the Figure 2 malicious protocol reaches agreement for
//! every `k ≤ ⌊(n−1)/3⌋` against active Byzantine strategies.

use adversary::{ContrarianMalicious, EquivocatingEchoer, Silent, TwoFacedMalicious};
use bt_core::{Config, Malicious, MaliciousMsg};
use criterion::{criterion_group, criterion_main, Criterion};
use simnet::{run_trials, Process, Role, Sim, Value};

type Attacker = fn(Config) -> Box<dyn Process<Msg = MaliciousMsg>>;

fn attack_trials(n: usize, k: usize, make: Attacker, trials: usize) -> simnet::TrialStats {
    let config = Config::malicious(n, k).expect("within bound");
    run_trials(trials, 0xE2, move |seed| {
        let mut b = Sim::builder();
        for i in 0..n - k {
            b.process(
                Box::new(Malicious::new(config, Value::from(i % 2 == 0))),
                Role::Correct,
            );
        }
        for _ in 0..k {
            b.process(make(config), Role::Faulty);
        }
        b.seed(seed).step_limit(16_000_000);
        b.build()
    })
}

fn sweep() {
    let strategies: [(&str, Attacker); 4] = [
        ("silent", |_c| Box::new(Silent::<MaliciousMsg>::new())),
        ("contrarian", |c| Box::new(ContrarianMalicious::new(c))),
        ("two-faced", |c| Box::new(TwoFacedMalicious::new(c))),
        ("equiv-echo", |c| Box::new(EquivocatingEchoer::new(c))),
    ];
    println!("\nE2: malicious resilience sweep (100 trials/point, max k)");
    println!(
        "{:>4} {:>4} {:<12} {:>10} {:>10} {:>12}",
        "n", "k", "strategy", "agree", "decide", "mean phases"
    );
    for n in [4usize, 7, 10, 13] {
        let k = (n - 1) / 3;
        for (name, make) in strategies {
            let stats = attack_trials(n, k, make, 100);
            assert_eq!(
                stats.disagreements, 0,
                "Theorem 4 violated: n={n} k={k} vs {name}"
            );
            println!(
                "{n:>4} {k:>4} {:<12} {:>9}% {:>9}% {:>12.2}",
                name,
                100 * (stats.trials - stats.disagreements) / stats.trials,
                100 * stats.decided / stats.trials,
                stats.phases.mean,
            );
        }
    }
}

fn bench(c: &mut Criterion) {
    sweep();
    c.bench_function("e2_malicious_n7_k2_contrarian_run", |b| {
        let config = Config::malicious(7, 2).unwrap();
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut builder = Sim::builder();
            for i in 0..5 {
                builder.process(
                    Box::new(Malicious::new(config, Value::from(i % 2 == 0))),
                    Role::Correct,
                );
            }
            for _ in 0..2 {
                builder.process(Box::new(ContrarianMalicious::new(config)), Role::Faulty);
            }
            builder.seed(seed).step_limit(16_000_000);
            builder.build().run()
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
