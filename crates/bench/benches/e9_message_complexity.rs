//! E9 — message complexity, visible in the structure of Figures 1 and 2:
//! the fail-stop protocol sends `n` messages per process per phase
//! (Θ(n²)/phase), while the malicious protocol's echo stage amplifies every
//! initial into `n` echoes (Θ(n³)/phase).

use bench::{failstop_system, malicious_system_silent, split_inputs};
use bt_core::Config;
use criterion::{criterion_group, criterion_main, Criterion};
use simnet::run_trials;

fn sweep() {
    println!("\nE9: messages per run and per phase·n² (100 trials, balanced inputs)");
    println!(
        "{:>4} | {:>12} {:>14} | {:>12} {:>14}",
        "n", "FS msgs", "FS msgs/ph/n²", "MAL msgs", "MAL msgs/ph/n²"
    );
    for n in [4usize, 7, 10, 13, 16] {
        let kf = (n - 1) / 2;
        let fs_cfg = Config::fail_stop(n, kf).unwrap();
        let inputs = split_inputs(n, n / 2);
        let fs = run_trials(100, 0xE9, |seed| failstop_system(fs_cfg, &inputs, 0, seed));

        let km = (n - 1) / 3;
        let mal_cfg = Config::malicious(n, km).unwrap();
        let mal = run_trials(100, 0xE9, |seed| {
            malicious_system_silent(mal_cfg, &inputs, 0, seed)
        });

        let n2 = (n * n) as f64;
        let fs_norm = fs.messages.mean / ((fs.phases.mean + 1.0) * n2);
        let mal_norm = mal.messages.mean / ((mal.phases.mean + 1.0) * n2);
        println!(
            "{n:>4} | {:>12.0} {:>14.2} | {:>12.0} {:>14.2}",
            fs.messages.mean, fs_norm, mal.messages.mean, mal_norm
        );
    }
    println!("FS column stays O(1) per phase·n²; MAL column grows ~n (the echo factor).");
}

fn bench(c: &mut Criterion) {
    sweep();
    c.bench_function("e9_failstop_n13_message_accounting", |b| {
        let cfg = Config::fail_stop(13, 6).unwrap();
        let inputs = split_inputs(13, 6);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            failstop_system(cfg, &inputs, 0, seed).run().metrics
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
