//! Budgeted large-n smoke: one seeded malicious-protocol trial at n = 1024
//! with a hard step cap, as a wall-clock regression gate for the delivery
//! engine (`scripts/check.sh` runs it on every gate).
//!
//! A full n = 1024 Figure 2 run is ~2.8 × 10⁹ deliveries — minutes even
//! after the engine rewrite — so the gate runs a fixed slice of one: the
//! first `cap` deliveries of the seeded trial must complete inside the
//! time budget, violate no safety property, and report a sane
//! ns-per-delivery. Catching a 10× hot-path regression needs only the
//! slice, not the decision.
//!
//! Usage: `large_n_smoke [STEP_CAP] [MAX_SECONDS] [SEED]`
//! (defaults: 1,000,000 steps, 60 s, 42 — the default slice runs in
//! single-digit seconds on one core, so the budget is several-fold slack).

use std::process::ExitCode;
use std::time::Instant;

use bench::{malicious_system_capped, split_inputs, sweep_k};
use bt_core::Config;
use simnet::RunStatus;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut next = |default: u64| {
        args.next()
            .map_or(Ok(default), |t| t.parse::<u64>().map_err(|_| t))
    };
    let (cap, max_seconds, seed) = match (next(1_000_000), next(60), next(42)) {
        (Ok(c), Ok(m), Ok(s)) => (c, m, s),
        (Err(t), _, _) | (_, Err(t), _) | (_, _, Err(t)) => {
            eprintln!("large_n_smoke: bad numeric argument {t:?}");
            return ExitCode::FAILURE;
        }
    };

    let n = 1024;
    let k = sweep_k(n);
    let config = Config::malicious(n, k).expect("k = l·√n/2 is within (n-1)/3");
    let inputs = split_inputs(n, n / 2);

    let start = Instant::now();
    let report = malicious_system_capped(config, &inputs, k, seed, cap).run();
    let elapsed = start.elapsed();
    let ns_per_delivery = elapsed.as_nanos() as f64 / report.steps.max(1) as f64;

    println!(
        "{{\"n\":{n},\"k\":{k},\"seed\":{seed},\"step_cap\":{cap},\"steps\":{},\
         \"messages_sent\":{},\"wall_ms\":{:.1},\"ns_per_delivery\":{:.1},\
         \"status\":\"{:?}\",\"agreement\":{}}}",
        report.steps,
        report.metrics.messages_sent,
        elapsed.as_secs_f64() * 1e3,
        ns_per_delivery,
        report.status,
        report.agreement(),
    );

    if !report.agreement() {
        eprintln!("large_n_smoke: FAIL — agreement violated");
        return ExitCode::FAILURE;
    }
    if report.status == RunStatus::Quiescent && !report.all_correct_decided() {
        eprintln!("large_n_smoke: FAIL — deadlocked before the step cap");
        return ExitCode::FAILURE;
    }
    if report.steps == 0 || report.metrics.messages_sent == 0 {
        eprintln!("large_n_smoke: FAIL — no progress made");
        return ExitCode::FAILURE;
    }
    if elapsed.as_secs() > max_seconds {
        eprintln!(
            "large_n_smoke: FAIL — {} steps took {:.1}s (budget {max_seconds}s, \
             {ns_per_delivery:.0} ns/delivery)",
            report.steps,
            elapsed.as_secs_f64(),
        );
        return ExitCode::FAILURE;
    }
    eprintln!(
        "large_n_smoke: ok — {} deliveries at n=1024 in {:.2}s ({ns_per_delivery:.0} ns/delivery)",
        report.steps,
        elapsed.as_secs_f64(),
    );
    ExitCode::SUCCESS
}
