//! Emits `BENCH_metrics.json`: the cost of runtime telemetry on the
//! netstack sender hot path, measured as frames/sec with the metrics
//! registry enabled versus disabled.
//!
//! The measured loop is the per-frame work of `netstack`'s sender thread
//! minus the socket: encode a length-prefixed `Frame::Msg`, then touch
//! every instrument the real sender touches (`bt_frames_sent_total`,
//! queue-depth and backlog gauges, and — on the matching ack — the
//! round-trip histogram). The disabled run performs the identical calls
//! against a `Registry::disabled()`, so the difference isolates exactly
//! what instrumentation costs: one branch per call when off, a relaxed
//! atomic or two when on.
//!
//! The committed JSON is the proof for the observability PR's acceptance
//! bar: the `overhead_pct` field must stay ≤ 5 %. `scripts/check.sh` runs
//! this binary in a fast configuration and refuses the gate if the
//! measured overhead regresses past the threshold.
//!
//! Usage: `cargo run -p bench --release --bin metrics_overhead \
//!     [OUTPUT.json] [--frames N] [--rounds R] [--max-overhead PCT]`
//! (defaults: `BENCH_metrics.json`, 2,000,000 frames, 5 rounds, no gate).
//! With `--max-overhead` the process exits nonzero when the measured
//! overhead exceeds the threshold — the CI gate mode.

use std::process::ExitCode;
use std::time::Instant;

use netstack::{write_frame, Frame};
use obs::json::Json;
use obs::metrics::Registry;

/// One measured round: how long `frames` iterations of the sender hot
/// path take against `registry`.
fn round(registry: &Registry, frames: u64) -> f64 {
    let stats_frames = registry.counter(
        "bt_frames_sent_total",
        "frames written to the wire",
        &[("node", "0"), ("peer", "1")],
    );
    let queue_depth = registry.gauge(
        "bt_send_queue_depth",
        "frames queued or awaiting ack",
        &[("node", "0"), ("peer", "1")],
    );
    let backlog = registry.gauge(
        "bt_send_backlog_bytes",
        "payload bytes awaiting ack",
        &[("node", "0"), ("peer", "1")],
    );
    let rtt = registry.histogram(
        "bt_ack_rtt_us",
        "write-to-ack round trip",
        &[("node", "0"), ("peer", "1")],
    );

    // A realistic small protocol message: the sender re-encodes each
    // queued frame into the connection's write buffer.
    let payload: Vec<u8> = (0u8..48).collect();
    let mut buf: Vec<u8> = Vec::with_capacity(64 * 1024);

    let started = Instant::now();
    for seq in 0..frames {
        let frame = Frame::Msg {
            seq,
            payload: payload.clone(),
        };
        write_frame(&mut buf, &frame).expect("writing to a Vec cannot fail");
        // The instruments the real sender touches, mirroring conn.rs: one
        // counter bump per written frame, the two backlog gauges re-set on
        // enqueue and on ack retire, and the round-trip histogram per
        // retired frame. The rtt value cycles through a realistic
        // microsecond range without reading a clock, which would dominate
        // the measurement.
        stats_frames.inc();
        let depth = seq % 8;
        queue_depth.set(depth);
        backlog.set(depth * payload.len() as u64);
        rtt.record(50 + seq % 4000);
        if buf.len() + 64 + payload.len() > buf.capacity() {
            buf.clear(); // "flushed" — keep the buffer hot, never grow it
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    frames as f64 / elapsed
}

/// Best-of-R frames/sec per mode, rounds interleaved enabled/disabled.
///
/// Interleaving matters on a timeshared machine: running all enabled
/// rounds and then all disabled rounds would let slow drift (frequency
/// scaling, a neighbour waking up) land entirely on one mode and read as
/// instrumentation cost. Alternating rounds makes both modes sample the
/// same noise window; taking the max per mode then discards the rounds
/// noise did slow down.
fn best_fps_interleaved(frames: u64, rounds: u32) -> (f64, f64) {
    let enabled = Registry::new();
    let disabled = Registry::disabled();
    let mut enabled_fps = 0.0f64;
    let mut disabled_fps = 0.0f64;
    for _ in 0..rounds {
        enabled_fps = enabled_fps.max(round(&enabled, frames));
        disabled_fps = disabled_fps.max(round(&disabled, frames));
    }
    (enabled_fps, disabled_fps)
}

fn main() -> ExitCode {
    let mut output = "BENCH_metrics.json".to_string();
    let mut frames: u64 = 2_000_000;
    let mut rounds: u32 = 5;
    let mut max_overhead: Option<f64> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} needs a value"))
                .and_then(|s| {
                    s.parse::<f64>()
                        .map_err(|_| format!("{flag}: cannot parse {s:?}"))
                })
        };
        match arg.as_str() {
            "--frames" => match value("--frames") {
                Ok(v) => frames = v as u64,
                Err(e) => return usage(&e),
            },
            "--rounds" => match value("--rounds") {
                Ok(v) => rounds = v as u32,
                Err(e) => return usage(&e),
            },
            "--max-overhead" => match value("--max-overhead") {
                Ok(v) => max_overhead = Some(v),
                Err(e) => return usage(&e),
            },
            other if !other.starts_with("--") => output = other.to_string(),
            other => return usage(&format!("unknown flag {other}")),
        }
    }

    // Warm-up (allocator, branch predictors, frequency scaling) — one
    // short round per mode, discarded.
    let _ = round(&Registry::new(), frames / 10);
    let _ = round(&Registry::disabled(), frames / 10);

    eprintln!("metrics_overhead: {frames} frames x {rounds} rounds per mode…");
    let (enabled_fps, disabled_fps) = best_fps_interleaved(frames, rounds);
    let overhead_pct = ((disabled_fps - enabled_fps) / disabled_fps * 100.0).max(0.0);

    eprintln!(
        "metrics_overhead: enabled {enabled_fps:.0} frames/s, \
         disabled {disabled_fps:.0} frames/s, overhead {overhead_pct:.2}%"
    );

    let doc = Json::Obj(vec![
        ("frames".into(), Json::num(frames)),
        ("rounds".into(), Json::num(u64::from(rounds))),
        ("enabled_fps".into(), Json::Num(enabled_fps.round())),
        ("disabled_fps".into(), Json::Num(disabled_fps.round())),
        (
            "overhead_pct".into(),
            Json::Num((overhead_pct * 100.0).round() / 100.0),
        ),
    ]);
    if let Err(err) = std::fs::write(&output, doc.render() + "\n") {
        eprintln!("metrics_overhead: cannot write {output}: {err}");
        return ExitCode::FAILURE;
    }
    eprintln!("metrics_overhead: wrote {output}");

    if let Some(limit) = max_overhead {
        if overhead_pct > limit {
            eprintln!(
                "metrics_overhead: FAIL — {overhead_pct:.2}% overhead exceeds \
                 the {limit:.2}% budget"
            );
            return ExitCode::FAILURE;
        }
        eprintln!("metrics_overhead: within the {limit:.2}% budget");
    }
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    eprintln!(
        "metrics_overhead: {err}\nusage: metrics_overhead [OUTPUT.json] \
         [--frames N] [--rounds R] [--max-overhead PCT]"
    );
    ExitCode::FAILURE
}
