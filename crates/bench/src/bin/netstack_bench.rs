//! `netstack_bench` — transport microbench for the netstack runtime.
//!
//! Boots an in-process loopback cluster (default n=50, fail-stop protocol,
//! unanimous inputs), waits for unanimous consensus, and reports the
//! transport-level numbers the event-loop rewrite is judged on:
//!
//! * `frames_per_sec` — protocol frames written to sockets / wall time;
//! * `threads_peak` — peak thread count of this process during the run,
//!   sampled from `/proc/self/status` (the O(n) vs O(n²) structural
//!   check: thread-per-connection runtimes scale this with n², an event
//!   loop holds it at O(n));
//! * `write_syscalls_per_frame` — transport write syscalls per frame
//!   written, when the runtime exports `bt_write_syscalls_total`
//!   (event-loop runtimes coalesce many frames into one vectored write;
//!   the threaded runtime performed 2 writes per frame — length prefix +
//!   body — and exports no counter, reported as `null`).
//!
//! ```text
//! netstack_bench [OUT.json] [--n N] [--k K] [--label NAME] [--timeout SECS]
//! ```
//!
//! Exit 0 with a JSON object on stdout (and in `OUT.json` if given); exit
//! 1 if the cluster fails to reach unanimous consensus.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use netstack::{sockets_available, Cluster, ClusterOptions, Proto};
use simnet::{RunStatus, Value};

/// Current thread count of this process, from `/proc/self/status`.
fn threads_now() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

fn main() -> ExitCode {
    let mut out_path: Option<String> = None;
    let mut n = 50usize;
    let mut k = 0usize;
    let mut k_set = false;
    let mut label = String::from("netstack");
    let mut timeout = Duration::from_secs(120);

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("netstack_bench: {flag} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--n" => n = value("--n").parse().expect("--n takes a count"),
            "--k" => {
                k = value("--k").parse().expect("--k takes a count");
                k_set = true;
            }
            "--label" => label = value("--label"),
            "--timeout" => {
                timeout = Duration::from_secs(value("--timeout").parse().expect("--timeout secs"));
            }
            other if !other.starts_with("--") && out_path.is_none() => {
                out_path = Some(other.to_string());
            }
            other => {
                eprintln!("netstack_bench: unknown flag {other}");
                return ExitCode::from(2);
            }
        }
    }
    if !k_set {
        k = (n - 1) / 2; // maximal fail-stop resilience
    }

    if !sockets_available() {
        eprintln!("netstack_bench: skipping (loopback sockets unavailable)");
        println!("{{\"skipped\": true}}");
        return ExitCode::SUCCESS;
    }

    // Sample the process's thread count while the cluster runs.
    let stop_sampler = Arc::new(AtomicBool::new(false));
    let peak = Arc::new(AtomicU64::new(threads_now().unwrap_or(0)));
    let sampler = {
        let stop = Arc::clone(&stop_sampler);
        let peak = Arc::clone(&peak);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                if let Some(t) = threads_now() {
                    peak.fetch_max(t, Ordering::Relaxed);
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        })
    };

    let options = ClusterOptions {
        seed: 0x00BE_7C50,
        inputs: vec![Value::One; n],
        ..ClusterOptions::default()
    };
    let started = Instant::now();
    let mut cluster = match Cluster::spawn(n, k, Proto::FailStop, options, None) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("netstack_bench: cannot spawn cluster: {e}");
            return ExitCode::FAILURE;
        }
    };
    let spawn_elapsed = started.elapsed();
    let report = cluster.await_verdict(timeout);
    let elapsed = started.elapsed();

    let snapshot = cluster.metrics_snapshot();
    let frames = snapshot.scalar_total("bt_frames_sent_total").unwrap_or(0);
    let retransmits = snapshot.scalar_total("bt_retransmits_total").unwrap_or(0);
    let write_syscalls = snapshot.scalar_total("bt_write_syscalls_total");
    let loop_ticks = snapshot.scalar_total("bt_loop_ticks_total");
    let wakeups = snapshot.scalar_total("bt_poll_wakeups_total");
    cluster.shutdown();
    stop_sampler.store(true, Ordering::Relaxed);
    let _ = sampler.join();

    let unanimous = report.status == RunStatus::Stopped
        && report.agreement()
        && report.decisions.iter().all(|d| *d == Some(Value::One));
    if !unanimous {
        eprintln!(
            "netstack_bench: cluster failed to reach unanimous consensus \
             (status {:?})",
            report.status
        );
        return ExitCode::FAILURE;
    }

    let secs = elapsed.as_secs_f64();
    let frames_per_sec = if secs > 0.0 {
        frames as f64 / secs
    } else {
        0.0
    };
    // The threaded runtime wrote the 4-byte length prefix and the body as
    // separate write(2) calls (2 syscalls/frame, no counter exported);
    // the event loop counts its actual (vectored) writes.
    let syscalls_per_frame =
        write_syscalls.map(|w| w as f64 / (frames + retransmits).max(1) as f64);

    let mut fields = vec![
        format!("  \"label\": \"{label}\""),
        format!("  \"n\": {n}"),
        format!("  \"k\": {k}"),
        format!("  \"elapsed_secs\": {secs:.3}"),
        format!("  \"spawn_secs\": {:.3}", spawn_elapsed.as_secs_f64()),
        format!("  \"frames_sent\": {frames}"),
        format!("  \"retransmits\": {retransmits}"),
        format!("  \"frames_per_sec\": {frames_per_sec:.1}"),
        format!("  \"threads_peak\": {}", peak.load(Ordering::Relaxed)),
        format!(
            "  \"messages_delivered\": {}",
            report.metrics.messages_delivered
        ),
    ];
    match syscalls_per_frame {
        Some(s) => fields.push(format!("  \"write_syscalls_per_frame\": {s:.3}")),
        None => fields.push("  \"write_syscalls_per_frame\": null".to_string()),
    }
    if let Some(t) = loop_ticks {
        fields.push(format!("  \"loop_ticks\": {t}"));
    }
    if let Some(w) = wakeups {
        fields.push(format!("  \"poll_wakeups\": {w}"));
    }
    let json = format!("{{\n{}\n}}", fields.join(",\n"));
    println!("{json}");
    if let Some(path) = out_path {
        if let Err(e) = std::fs::write(&path, format!("{json}\n")) {
            eprintln!("netstack_bench: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
