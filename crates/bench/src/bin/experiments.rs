//! `experiments` — plot-ready CSV export of the headline sweeps.
//!
//! The Criterion benches (`cargo bench`) print every experiment's table and
//! time representative runs; this binary re-runs the data-producing sweeps
//! only and writes tidy CSV files for external plotting.
//!
//! ```sh
//! cargo run --release -p bench --bin experiments -- results/
//! ```

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use bench::{alternating_inputs, failstop_system, malicious_system, simple_system, split_inputs};
use bt_core::Config;
use markov::{collapsed, FailStopChain, MaliciousChain};
use simnet::run_trials;

fn write_csv(dir: &Path, name: &str, header: &str, rows: &[String]) {
    let mut out = String::new();
    let _ = writeln!(out, "{header}");
    for r in rows {
        let _ = writeln!(out, "{r}");
    }
    let path = dir.join(name);
    std::fs::write(&path, out).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    println!("wrote {}", path.display());
}

/// E1: agreement/termination/phases across (n, k) for the fail-stop
/// protocol at maximal crash load.
fn e1(dir: &Path, trials: usize) {
    let mut rows = Vec::new();
    for n in [3usize, 5, 7, 9, 11, 15, 21] {
        for k in [0, (n - 1) / 4, (n - 1) / 2] {
            let config = Config::fail_stop(n, k).expect("within bound");
            let inputs = alternating_inputs(n);
            let s = run_trials(trials, 0xE1, |seed| {
                failstop_system(config, &inputs, k, seed)
            });
            assert_eq!(s.disagreements, 0);
            rows.push(format!(
                "{n},{k},{},{},{:.4},{:.1}",
                s.trials - s.disagreements,
                s.decided,
                s.phases.mean,
                s.messages.mean
            ));
        }
    }
    write_csv(
        dir,
        "e1_failstop.csv",
        "n,k,agreed,decided,mean_phases,mean_msgs",
        &rows,
    );
}

/// E3: analytic vs simulated expected phases for the §4.1 chain.
fn e3(dir: &Path, trials: usize) {
    let mut rows = Vec::new();
    for n in [12usize, 18, 24, 30] {
        let chain = FailStopChain::paper(n);
        let exact = chain.expected_phases_balanced();
        let bound = collapsed::headline_bound(n);
        // Decidable k (see EXPERIMENTS.md): the analysis idealizes n/3.
        let config = Config::unchecked(n, (n - 1) / 3);
        let inputs = split_inputs(n, n / 2);
        let s = run_trials(trials, 0xE3, |seed| simple_system(config, &inputs, 0, seed));
        rows.push(format!("{n},{exact:.4},{bound:.4},{:.4}", s.phases.mean));
    }
    write_csv(
        dir,
        "e3_phases.csv",
        "n,exact_chain,eq13_bound,simulated",
        &rows,
    );
}

/// E4: §4.2 malicious chain vs balancing-adversary simulation.
fn e4(dir: &Path, trials: usize) {
    let mut rows = Vec::new();
    for &(n, k) in &[(16usize, 1usize), (25, 2), (36, 3), (49, 3)] {
        let chain = MaliciousChain::new(n, k);
        let l = chain.l_parameter();
        let config = Config::malicious(n, k).expect("k ≤ n/5 here");
        let inputs = split_inputs(n, n / 2);
        let s = run_trials(trials, 0xE4, |seed| {
            malicious_system(config, &inputs, k, seed)
        });
        assert_eq!(s.disagreements, 0);
        rows.push(format!(
            "{n},{k},{l:.4},{:.4},{:.4},{:.4}",
            chain.expected_phases_balanced(),
            MaliciousChain::paper_bound(l),
            s.phases.mean
        ));
    }
    write_csv(
        dir,
        "e4_malicious_phases.csv",
        "n,k,l,exact_chain,paper_bound,simulated",
        &rows,
    );
}

/// E6c: P[decide 1] as a function of the number of 1-inputs — simulated
/// (the §4.1 simple variant, which is exactly what the chain models) and
/// analytic (the chain's absorption-probability curve).
fn e6c(dir: &Path, trials: usize) {
    let n = 9;
    let config = Config::unchecked(n, 2);
    let chain = FailStopChain::new(n, 2);
    let mut rows = Vec::new();
    for ones in 0..=n {
        let inputs = split_inputs(n, ones);
        let s = run_trials(trials, 0xE6C, |seed| {
            simple_system(config, &inputs, 0, seed)
        });
        rows.push(format!(
            "{ones},{:.4},{:.4}",
            s.one_rate(),
            chain.probability_decides_one(ones)
        ));
    }
    write_csv(
        dir,
        "e6c_majority_approx.csv",
        "ones,simulated_p_one,chain_p_one",
        &rows,
    );
}

/// E7: Bracha-Toueg vs Ben-Or rounds on split inputs.
fn e7(dir: &Path, trials: usize) {
    use benor::{build_correct_system as benor_sys, BenOrConfig};
    use bt_core::simple::build_correct_system as bt_sys;
    use simnet::Sim;

    let mut rows = Vec::new();
    for n in [4usize, 6, 8, 10, 12] {
        let inputs = split_inputs(n, n / 2);
        let bt_cfg = Config::malicious(n, (n - 1) / 3).expect("bound");
        let bt = run_trials(trials, 0xE7, |seed| {
            let mut b = Sim::builder();
            bt_sys(&mut b, bt_cfg, &inputs);
            b.seed(seed).step_limit(8_000_000);
            b.build()
        });
        let bo_cfg = BenOrConfig::fail_stop(n, (n - 1) / 2).expect("bound");
        let bo = run_trials(trials, 0xE7, |seed| {
            let mut b = Sim::builder();
            benor_sys(&mut b, bo_cfg, &inputs);
            b.seed(seed).step_limit(8_000_000);
            b.build()
        });
        rows.push(format!(
            "{n},{:.4},{:.4},{:.4},{:.4}",
            bt.phases.mean, bt.phases.stddev, bo.phases.mean, bo.phases.stddev
        ));
    }
    write_csv(
        dir,
        "e7_vs_benor.csv",
        "n,bt_mean,bt_std,benor_mean,benor_std",
        &rows,
    );
}

fn main() {
    let dir = std::env::args()
        .nth(1)
        .map_or_else(|| PathBuf::from("results"), PathBuf::from);
    std::fs::create_dir_all(&dir).expect("creating output directory");
    let trials = std::env::var("TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    println!(
        "running sweeps with {trials} trials per point → {}",
        dir.display()
    );
    e1(&dir, trials);
    e3(&dir, trials);
    e4(&dir, trials);
    e6c(&dir, trials);
    e7(&dir, trials);
    println!("done.");
}
