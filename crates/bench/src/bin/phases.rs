//! Emits `BENCH_phases.json`: phase-count distributions for the phase-bound
//! experiments, plus the large-n §4 sweep —
//!
//! * **E3** (§4.1): phases-to-decision of the simple majority variant from a
//!   balanced start (the "< 7 expected phases" bound);
//! * **E4** (§4.2): phases-to-decision of the malicious protocol against the
//!   balancing adversary;
//! * **E8** (§3.3): decision lag in phases (last − first correct decision)
//!   for `k < n/5` versus `n/5 ≤ k ≤ (n−1)/3`;
//! * **large_n_sweep**: phases-to-decision versus `n` for `k = l·√n/2`
//!   (`l² = 1.5`), charted against the closed-form eq. 13 envelope — the
//!   paper's O(1)-phases claim as a measured trajectory, with per-delivery
//!   wall-clock cost recorded as the engine's perf regression baseline.
//!
//! The small-n sections carry full histograms (value → run count); sweep
//! points carry summary statistics, wall time, and ns-per-delivery. All
//! values derive deterministically from the base seeds; trials of one sweep
//! point fan across worker threads via `simnet::run_trials`.
//!
//! Usage: `phases [OPTIONS] [OUTPUT.json]` (default `BENCH_phases.json`):
//!
//! * `--sweep-n LIST` — comma-separated sweep sizes
//!   (default `32,64,128,256,512,1024,2048,4096`; env `BT_SWEEP_N`);
//! * `--trials N` — trials per sweep point before budget scaling
//!   (default 25; env `BT_SWEEP_TRIALS`);
//! * `--seed S` — sweep base seed (default `0x5EE9`; env `BT_SWEEP_SEED`);
//! * `--malicious-cap N` — largest malicious sweep size (default 256: the
//!   protocol is O(n³) deliveries per run, so larger points cost minutes
//!   each; env `BT_SWEEP_MALICIOUS_CAP`);
//! * `--quick` — shrunken everything, for CI schema gates.

use std::collections::BTreeMap;
use std::process::ExitCode;
use std::time::Instant;

use bench::{
    malicious_sweep_limit, malicious_system, malicious_system_capped, simple_sweep_limit,
    simple_system, simple_system_capped, split_inputs, sweep_k,
};
use bt_core::Config;
use markov::collapsed::{eq13_bound, paper_l};
use obs::json::Json;
use simnet::{run_trials, run_trials_observed, RunReport, Summary, TrialStats};

/// Per-sweep-point step budget: trials are trimmed (never below 3) so one
/// point costs at most about this many deliveries, keeping the default
/// regeneration under a few minutes on one core.
const POINT_STEP_BUDGET: u64 = 60_000_000;

/// Resolved command-line / environment parameters.
struct Params {
    output: String,
    sweep_n: Vec<usize>,
    trials: usize,
    seed: u64,
    malicious_cap: usize,
    quick: bool,
}

impl Params {
    fn parse() -> Result<Params, String> {
        let env_or =
            |flag_val: Option<String>, env: &str| flag_val.or_else(|| std::env::var(env).ok());
        let mut output = None;
        let mut sweep_n = None;
        let mut trials = None;
        let mut seed = None;
        let mut malicious_cap = None;
        let mut quick = false;

        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
            match arg.as_str() {
                "--sweep-n" => sweep_n = Some(value("--sweep-n")?),
                "--trials" => trials = Some(value("--trials")?),
                "--seed" => seed = Some(value("--seed")?),
                "--malicious-cap" => malicious_cap = Some(value("--malicious-cap")?),
                "--quick" => quick = true,
                "--help" | "-h" => return Err("help".into()),
                other if other.starts_with('-') => {
                    return Err(format!("unknown option {other}"));
                }
                positional => {
                    if output.replace(positional.to_string()).is_some() {
                        return Err("more than one OUTPUT argument".into());
                    }
                }
            }
        }

        let sweep_n = match env_or(sweep_n, "BT_SWEEP_N") {
            None if quick => vec![32, 64],
            None => vec![32, 64, 128, 256, 512, 1024, 2048, 4096],
            Some(list) => list
                .split(',')
                .map(|p| {
                    p.trim()
                        .parse::<usize>()
                        .map_err(|_| format!("bad sweep size {p:?}"))
                        .and_then(|n| {
                            if n >= 4 {
                                Ok(n)
                            } else {
                                Err(format!("sweep sizes must be at least 4, got {n}"))
                            }
                        })
                })
                .collect::<Result<_, _>>()?,
        };
        let parse_u64 = |text: Option<String>, name: &str, default: u64| {
            text.map_or(Ok(default), |t| {
                t.parse::<u64>().map_err(|_| format!("bad {name} {t:?}"))
            })
        };
        let trials = parse_u64(
            env_or(trials, "BT_SWEEP_TRIALS"),
            "--trials",
            if quick { 5 } else { 25 },
        )? as usize;
        let seed = parse_u64(env_or(seed, "BT_SWEEP_SEED"), "--seed", 0x5EE9)?;
        let malicious_cap = parse_u64(
            env_or(malicious_cap, "BT_SWEEP_MALICIOUS_CAP"),
            "--malicious-cap",
            if quick { 64 } else { 256 },
        )? as usize;
        if trials == 0 {
            return Err("--trials must be positive".into());
        }
        Ok(Params {
            output: output.unwrap_or_else(|| "BENCH_phases.json".to_string()),
            sweep_n,
            trials,
            seed,
            malicious_cap,
            quick,
        })
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "sweep_n".into(),
                Json::Arr(self.sweep_n.iter().map(|&n| Json::num(n as u64)).collect()),
            ),
            ("trials".into(), Json::num(self.trials as u64)),
            ("seed".into(), Json::num(self.seed)),
            ("malicious_cap".into(), Json::num(self.malicious_cap as u64)),
            ("quick".into(), Json::Bool(self.quick)),
        ])
    }
}

/// One small-n configuration's sampled distribution (E3/E4/E8).
struct Distribution {
    n: usize,
    k: usize,
    trials: usize,
    samples: Vec<f64>,
    histogram: BTreeMap<u64, u64>,
}

impl Distribution {
    fn collect<M: 'static>(
        n: usize,
        k: usize,
        trials: usize,
        base_seed: u64,
        factory: impl FnMut(u64) -> simnet::Sim<M>,
        mut metric: impl FnMut(&RunReport) -> Option<u64>,
    ) -> Self {
        let mut samples = Vec::new();
        let mut histogram = BTreeMap::new();
        run_trials_observed(trials, base_seed, factory, |_, report| {
            if let Some(value) = metric(report) {
                samples.push(value as f64);
                *histogram.entry(value).or_insert(0) += 1;
            }
        });
        Distribution {
            n,
            k,
            trials,
            samples,
            histogram,
        }
    }

    fn to_json(&self) -> Json {
        let summary = Summary::of(self.samples.clone());
        Json::Obj(vec![
            ("n".into(), Json::num(self.n as u64)),
            ("k".into(), Json::num(self.k as u64)),
            ("trials".into(), Json::num(self.trials as u64)),
            ("decided".into(), Json::num(self.samples.len() as u64)),
            (
                "summary".into(),
                Json::Obj(vec![
                    ("mean".into(), Json::Num(summary.mean)),
                    ("p50".into(), Json::Num(summary.p50)),
                    ("p95".into(), Json::Num(summary.p95)),
                    ("max".into(), Json::Num(summary.max)),
                ]),
            ),
            (
                "histogram".into(),
                Json::Obj(
                    self.histogram
                        .iter()
                        .map(|(value, count)| (value.to_string(), Json::num(*count)))
                        .collect(),
                ),
            ),
        ])
    }
}

/// Decision lag in phases: last − first correct decision phase.
fn lag_phases(report: &RunReport) -> Option<u64> {
    if !report.all_correct_decided() {
        return None;
    }
    let phases: Vec<u64> = report
        .correct()
        .filter_map(|i| report.decision_phases[i])
        .collect();
    Some(phases.iter().max()? - phases.iter().min()?)
}

/// Trials affordable for one sweep point under [`POINT_STEP_BUDGET`],
/// given an estimated per-trial step count: at least 3 for a usable
/// spread, at most the configured maximum.
fn budgeted_trials(max_trials: usize, est_steps_per_trial: u64) -> usize {
    #[allow(clippy::cast_possible_truncation)]
    let affordable = (POINT_STEP_BUDGET / est_steps_per_trial.max(1)) as usize;
    affordable.max(3).min(max_trials.max(1))
}

/// One sweep point's JSON record: configuration, decision statistics, the
/// eq. 13 envelope, and the engine cost counters.
#[allow(clippy::too_many_arguments)]
fn sweep_point_json(
    protocol: &str,
    n: usize,
    k: usize,
    trials: usize,
    step_limit: u64,
    stats: &TrialStats,
    wall_ns: u128,
    bound: f64,
) -> Json {
    let ns_per_delivery = if stats.total_steps == 0 {
        0.0
    } else {
        wall_ns as f64 / stats.total_steps as f64
    };
    Json::Obj(vec![
        ("protocol".into(), Json::str(protocol)),
        ("n".into(), Json::num(n as u64)),
        ("k".into(), Json::num(k as u64)),
        ("l".into(), Json::Num(paper_l())),
        ("trials".into(), Json::num(trials as u64)),
        ("decided".into(), Json::num(stats.decided as u64)),
        ("timeouts".into(), Json::num(stats.timeouts as u64)),
        ("deadlocks".into(), Json::num(stats.deadlocks as u64)),
        (
            "disagreements".into(),
            Json::num(stats.disagreements as u64),
        ),
        ("step_limit".into(), Json::num(step_limit)),
        ("steps_total".into(), Json::num(stats.total_steps)),
        ("messages_mean".into(), Json::Num(stats.messages.mean)),
        ("wall_ms".into(), Json::Num(wall_ns as f64 / 1_000_000.0)),
        ("ns_per_delivery".into(), Json::Num(ns_per_delivery)),
        (
            "phases".into(),
            Json::Obj(vec![
                ("mean".into(), Json::Num(stats.phases.mean)),
                ("p50".into(), Json::Num(stats.phases.p50)),
                ("p95".into(), Json::Num(stats.phases.p95)),
                ("max".into(), Json::Num(stats.phases.max)),
            ]),
        ),
        ("eq13_bound".into(), Json::Num(bound)),
        (
            "mean_within_bound".into(),
            Json::Bool(stats.phases.mean <= bound),
        ),
    ])
}

/// The large-n trajectory: for each `n`, `k = l·√n/2` attackers (§4.2
/// malicious points, up to the cap) and the §4.1 simple variant (to the
/// full sweep), fanned across threads per point.
fn large_n_sweep(params: &Params) -> Json {
    let l = paper_l();
    let mut malicious = Vec::new();
    let mut simple = Vec::new();

    for &n in &params.sweep_n {
        let k = sweep_k(n);
        let bound = eq13_bound(n, l);

        if n <= params.malicious_cap {
            let config = Config::malicious(n, k).expect("sweep_k stays within (n-1)/3");
            let inputs = split_inputs(n, n / 2);
            let limit = malicious_sweep_limit(n);
            let trials = budgeted_trials(params.trials, 3 * (n as u64).pow(3));
            eprintln!("phases: sweep malicious n={n} k={k} trials={trials}…");
            let start = Instant::now();
            let stats = run_trials(trials, params.seed ^ (n as u64), |seed| {
                malicious_system_capped(config, &inputs, k, seed, limit)
            });
            malicious.push(sweep_point_json(
                "malicious",
                n,
                k,
                trials,
                limit,
                &stats,
                start.elapsed().as_nanos(),
                bound,
            ));
        }

        let config = Config::unchecked(n, k);
        let inputs = split_inputs(n, n / 2);
        let limit = simple_sweep_limit(n);
        let trials = budgeted_trials(params.trials, 3 * (n as u64).pow(2));
        eprintln!("phases: sweep simple n={n} k={k} trials={trials}…");
        let start = Instant::now();
        let stats = run_trials(trials, params.seed ^ (n as u64).rotate_left(32), |seed| {
            simple_system_capped(config, &inputs, 0, seed, limit)
        });
        simple.push(sweep_point_json(
            "simple",
            n,
            k,
            trials,
            limit,
            &stats,
            start.elapsed().as_nanos(),
            bound,
        ));
    }

    Json::Obj(vec![
        ("l".into(), Json::Num(l)),
        ("malicious".into(), Json::Arr(malicious)),
        ("simple".into(), Json::Arr(simple)),
    ])
}

fn main() -> ExitCode {
    let params = match Params::parse() {
        Ok(p) => p,
        Err(msg) => {
            eprintln!(
                "phases: {msg}\nusage: phases [--sweep-n LIST] [--trials N] [--seed S] \
                 [--malicious-cap N] [--quick] [OUTPUT.json]"
            );
            return ExitCode::FAILURE;
        }
    };
    let scale = |full: usize, quick: usize| if params.quick { quick } else { full };

    // E3: §4.1 simple variant, balanced inputs, maximal decidable k.
    let mut e3 = Vec::new();
    for n in [12usize, 18] {
        let k = (n - 1) / 3;
        let config = Config::unchecked(n, k);
        let inputs = split_inputs(n, n / 2);
        eprintln!("phases: E3 n={n} k={k}…");
        e3.push(
            Distribution::collect(
                n,
                k,
                scale(200, 20),
                0xE3,
                |seed| simple_system(config, &inputs, 0, seed),
                RunReport::phases_to_decision,
            )
            .to_json(),
        );
    }

    // E4: malicious protocol vs the balancing adversary.
    let mut e4 = Vec::new();
    for (n, k) in [(16usize, 1usize), (25, 2)] {
        let config = Config::malicious(n, k).expect("within the (n-1)/3 bound");
        let inputs = split_inputs(n, n / 2);
        eprintln!("phases: E4 n={n} k={k}…");
        e4.push(
            Distribution::collect(
                n,
                k,
                scale(100, 10),
                0xE4,
                |seed| malicious_system(config, &inputs, k, seed),
                RunReport::phases_to_decision,
            )
            .to_json(),
        );
    }

    // E8: decision lag across the k < n/5 boundary.
    let mut e8 = Vec::new();
    for (n, k) in [(16usize, 1usize), (16, 5)] {
        let config = Config::malicious(n, k).expect("within the (n-1)/3 bound");
        let inputs = split_inputs(n, n / 2);
        eprintln!("phases: E8 n={n} k={k}…");
        e8.push(
            Distribution::collect(
                n,
                k,
                scale(100, 10),
                0xE8,
                |seed| malicious_system(config, &inputs, k, seed),
                lag_phases,
            )
            .to_json(),
        );
    }

    let sweep = large_n_sweep(&params);

    let doc = Json::Obj(vec![
        ("params".into(), params.to_json()),
        ("e3_simple_phases".into(), Json::Arr(e3)),
        ("e4_malicious_phases".into(), Json::Arr(e4)),
        ("e8_decision_lag".into(), Json::Arr(e8)),
        ("large_n_sweep".into(), sweep),
    ]);
    match std::fs::write(&params.output, doc.render() + "\n") {
        Ok(()) => {
            eprintln!("phases: wrote {}", params.output);
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("phases: cannot write {}: {err}", params.output);
            ExitCode::FAILURE
        }
    }
}
