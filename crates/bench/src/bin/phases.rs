//! Emits `BENCH_phases.json`: per-configuration phase-count distributions
//! for the phase-bound experiments —
//!
//! * **E3** (§4.1): phases-to-decision of the simple majority variant from a
//!   balanced start (the "< 7 expected phases" bound);
//! * **E4** (§4.2): phases-to-decision of the malicious protocol against the
//!   balancing adversary;
//! * **E8** (§3.3): decision lag in phases (last − first correct decision)
//!   for `k < n/5` versus `n/5 ≤ k ≤ (n−1)/3`.
//!
//! Each entry carries the full histogram (value → run count) plus the usual
//! summary statistics, all derived deterministically from fixed base seeds.
//!
//! Usage: `cargo run -p bench --release --bin phases [OUTPUT.json]`
//! (default output: `BENCH_phases.json` in the current directory).

use std::collections::BTreeMap;
use std::process::ExitCode;

use bench::{malicious_system, simple_system, split_inputs};
use bt_core::Config;
use obs::json::Json;
use simnet::{run_trials_observed, RunReport, Summary};

/// One configuration's sampled distribution.
struct Distribution {
    n: usize,
    k: usize,
    trials: usize,
    samples: Vec<f64>,
    histogram: BTreeMap<u64, u64>,
}

impl Distribution {
    fn collect<M: 'static>(
        n: usize,
        k: usize,
        trials: usize,
        base_seed: u64,
        factory: impl FnMut(u64) -> simnet::Sim<M>,
        mut metric: impl FnMut(&RunReport) -> Option<u64>,
    ) -> Self {
        let mut samples = Vec::new();
        let mut histogram = BTreeMap::new();
        run_trials_observed(trials, base_seed, factory, |_, report| {
            if let Some(value) = metric(report) {
                samples.push(value as f64);
                *histogram.entry(value).or_insert(0) += 1;
            }
        });
        Distribution {
            n,
            k,
            trials,
            samples,
            histogram,
        }
    }

    fn to_json(&self) -> Json {
        let summary = Summary::of(self.samples.clone());
        Json::Obj(vec![
            ("n".into(), Json::num(self.n as u64)),
            ("k".into(), Json::num(self.k as u64)),
            ("trials".into(), Json::num(self.trials as u64)),
            ("decided".into(), Json::num(self.samples.len() as u64)),
            (
                "summary".into(),
                Json::Obj(vec![
                    ("mean".into(), Json::Num(summary.mean)),
                    ("p50".into(), Json::Num(summary.p50)),
                    ("p95".into(), Json::Num(summary.p95)),
                    ("max".into(), Json::Num(summary.max)),
                ]),
            ),
            (
                "histogram".into(),
                Json::Obj(
                    self.histogram
                        .iter()
                        .map(|(value, count)| (value.to_string(), Json::num(*count)))
                        .collect(),
                ),
            ),
        ])
    }
}

/// Decision lag in phases: last − first correct decision phase.
fn lag_phases(report: &RunReport) -> Option<u64> {
    if !report.all_correct_decided() {
        return None;
    }
    let phases: Vec<u64> = report
        .correct()
        .filter_map(|i| report.decision_phases[i])
        .collect();
    Some(phases.iter().max()? - phases.iter().min()?)
}

fn main() -> ExitCode {
    let output = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_phases.json".to_string());

    // E3: §4.1 simple variant, balanced inputs, maximal decidable k.
    let mut e3 = Vec::new();
    for n in [12usize, 18] {
        let k = (n - 1) / 3;
        let config = Config::unchecked(n, k);
        let inputs = split_inputs(n, n / 2);
        eprintln!("phases: E3 n={n} k={k}…");
        e3.push(
            Distribution::collect(
                n,
                k,
                200,
                0xE3,
                |seed| simple_system(config, &inputs, 0, seed),
                RunReport::phases_to_decision,
            )
            .to_json(),
        );
    }

    // E4: malicious protocol vs the balancing adversary.
    let mut e4 = Vec::new();
    for (n, k) in [(16usize, 1usize), (25, 2)] {
        let config = Config::malicious(n, k).expect("within the (n-1)/3 bound");
        let inputs = split_inputs(n, n / 2);
        eprintln!("phases: E4 n={n} k={k}…");
        e4.push(
            Distribution::collect(
                n,
                k,
                100,
                0xE4,
                |seed| malicious_system(config, &inputs, k, seed),
                RunReport::phases_to_decision,
            )
            .to_json(),
        );
    }

    // E8: decision lag across the k < n/5 boundary.
    let mut e8 = Vec::new();
    for (n, k) in [(16usize, 1usize), (16, 5)] {
        let config = Config::malicious(n, k).expect("within the (n-1)/3 bound");
        let inputs = split_inputs(n, n / 2);
        eprintln!("phases: E8 n={n} k={k}…");
        e8.push(
            Distribution::collect(
                n,
                k,
                100,
                0xE8,
                |seed| malicious_system(config, &inputs, k, seed),
                lag_phases,
            )
            .to_json(),
        );
    }

    let doc = Json::Obj(vec![
        ("e3_simple_phases".into(), Json::Arr(e3)),
        ("e4_malicious_phases".into(), Json::Arr(e4)),
        ("e8_decision_lag".into(), Json::Arr(e8)),
    ]);
    match std::fs::write(&output, doc.render() + "\n") {
        Ok(()) => {
            eprintln!("phases: wrote {output}");
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("phases: cannot write {output}: {err}");
            ExitCode::FAILURE
        }
    }
}
