//! # bench — shared helpers for the experiment harness
//!
//! The `benches/` directory of this crate holds one Criterion bench per
//! experiment (E1–E10 in `DESIGN.md`/`EXPERIMENTS.md`). This library holds
//! the system-assembly helpers they share, so each bench file reads like
//! the experiment it implements.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use adversary::{ContrarianMalicious, CrashPlan, Crashing, Silent};
use bt_core::{Config, FailStop, FailStopMsg, Malicious, MaliciousMsg, Simple, SimpleMsg};
use simnet::{Role, Sim, Value};

/// Alternating 0/1 inputs for `count` processes.
#[must_use]
pub fn alternating_inputs(count: usize) -> Vec<Value> {
    (0..count).map(|i| Value::from(i % 2 == 0)).collect()
}

/// Inputs with exactly `ones` ones followed by zeros.
#[must_use]
pub fn split_inputs(count: usize, ones: usize) -> Vec<Value> {
    assert!(ones <= count);
    (0..count).map(|i| Value::from(i < ones)).collect()
}

/// A fail-stop system: `n − crashes` correct processes plus `crashes`
/// processes that crash mid-run with staggered plans.
#[must_use]
pub fn failstop_system(
    config: Config,
    inputs: &[Value],
    crashes: usize,
    seed: u64,
) -> Sim<FailStopMsg> {
    assert_eq!(inputs.len(), config.n());
    assert!(crashes <= config.k());
    let mut b = Sim::builder();
    let n = config.n();
    for (i, &input) in inputs.iter().enumerate().take(n - crashes) {
        let _ = i;
        b.process(Box::new(FailStop::new(config, input)), Role::Correct);
    }
    for (j, &input) in inputs.iter().enumerate().skip(n - crashes) {
        // Stagger crash plans: mid-broadcast, phase-boundary, late.
        let plan = match j % 3 {
            0 => CrashPlan::AfterSends(n as u64 / 2),
            1 => CrashPlan::AtPhase(1),
            _ => CrashPlan::AfterSends(3 * n as u64),
        };
        b.process(
            Box::new(Crashing::new(FailStop::new(config, input), plan)),
            Role::Faulty,
        );
    }
    b.seed(seed).step_limit(4_000_000);
    b.build()
}

/// The §4.2 sweep's traitor budget for `n` processes: `k = l·√n/2` at the
/// paper's `l² = 1.5`, clamped to the protocol's `⌊(n−1)/3⌋` ceiling.
#[must_use]
pub fn sweep_k(n: usize) -> usize {
    let ideal = markov::collapsed::paper_l() * (n as f64).sqrt() / 2.0;
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let k = ideal.round() as usize;
    k.min((n - 1) / 3)
}

/// A step cap for one malicious-protocol run at size `n`: Figure 2 costs
/// `O(n³)` deliveries per phase-bounded run, so the fixed caps the small-n
/// benches use starve large configurations. Sized with several-fold
/// headroom over measured full-run step counts (≈ 2.6·n³ at n = 128).
#[must_use]
pub fn malicious_sweep_limit(n: usize) -> u64 {
    1_000_000 + 8 * (n as u64).pow(3)
}

/// A step cap for one §4.1 simple-variant run at size `n` (`O(n²)` per
/// run; measured ≈ 2.3·n² at n = 1024).
#[must_use]
pub fn simple_sweep_limit(n: usize) -> u64 {
    1_000_000 + 16 * (n as u64).pow(2)
}

/// A malicious-protocol system: `n − byz` correct processes plus `byz`
/// balancing attackers (the §4.2 worst case).
#[must_use]
pub fn malicious_system(
    config: Config,
    inputs: &[Value],
    byz: usize,
    seed: u64,
) -> Sim<MaliciousMsg> {
    malicious_system_capped(config, inputs, byz, seed, 8_000_000)
}

/// [`malicious_system`] with an explicit step cap, for sweeps whose run
/// length scales with `n` (see [`malicious_sweep_limit`]).
#[must_use]
pub fn malicious_system_capped(
    config: Config,
    inputs: &[Value],
    byz: usize,
    seed: u64,
    step_limit: u64,
) -> Sim<MaliciousMsg> {
    assert_eq!(inputs.len(), config.n());
    assert!(byz <= config.k());
    let mut b = Sim::builder();
    for &input in inputs.iter().take(config.n() - byz) {
        b.process(Box::new(Malicious::new(config, input)), Role::Correct);
    }
    for _ in 0..byz {
        b.process(Box::new(ContrarianMalicious::new(config)), Role::Faulty);
    }
    b.seed(seed).step_limit(step_limit);
    b.build()
}

/// A malicious-protocol system with silent (dead-on-arrival) faults.
#[must_use]
pub fn malicious_system_silent(
    config: Config,
    inputs: &[Value],
    dead: usize,
    seed: u64,
) -> Sim<MaliciousMsg> {
    assert_eq!(inputs.len(), config.n());
    let mut b = Sim::builder();
    for &input in inputs.iter().take(config.n() - dead) {
        b.process(Box::new(Malicious::new(config, input)), Role::Correct);
    }
    for _ in 0..dead {
        b.process(Box::new(Silent::<MaliciousMsg>::new()), Role::Faulty);
    }
    b.seed(seed).step_limit(8_000_000);
    b.build()
}

/// A §4.1 simple-variant system with `crashes` staggered crash faults.
#[must_use]
pub fn simple_system(
    config: Config,
    inputs: &[Value],
    crashes: usize,
    seed: u64,
) -> Sim<SimpleMsg> {
    simple_system_capped(config, inputs, crashes, seed, 4_000_000)
}

/// [`simple_system`] with an explicit step cap, for sweeps whose run
/// length scales with `n` (see [`simple_sweep_limit`]).
#[must_use]
pub fn simple_system_capped(
    config: Config,
    inputs: &[Value],
    crashes: usize,
    seed: u64,
    step_limit: u64,
) -> Sim<SimpleMsg> {
    assert_eq!(inputs.len(), config.n());
    let mut b = Sim::builder();
    let n = config.n();
    for &input in inputs.iter().take(n - crashes) {
        b.process(Box::new(Simple::new(config, input)), Role::Correct);
    }
    for (j, &input) in inputs.iter().enumerate().skip(n - crashes) {
        let plan = match j % 2 {
            0 => CrashPlan::AfterSends(n as u64 + n as u64 / 2),
            _ => CrashPlan::AtPhase(2),
        };
        b.process(
            Box::new(Crashing::new(Simple::new(config, input), plan)),
            Role::Faulty,
        );
    }
    b.seed(seed).step_limit(step_limit);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn input_helpers() {
        assert_eq!(
            split_inputs(4, 1),
            vec![Value::One, Value::Zero, Value::Zero, Value::Zero]
        );
        let alt = alternating_inputs(4);
        assert_eq!(alt[0], Value::One);
        assert_eq!(alt[1], Value::Zero);
    }

    #[test]
    fn sweep_parameters_scale_with_n() {
        // k = l·√n/2 at l² = 1.5: 0.61·√n, always within ⌊(n−1)/3⌋.
        assert_eq!(sweep_k(32), 3);
        assert_eq!(sweep_k(1024), 20);
        assert_eq!(sweep_k(4096), 39);
        for n in [9usize, 32, 128, 1024, 4096] {
            assert!(sweep_k(n) <= (n - 1) / 3);
            assert!(Config::malicious(n, sweep_k(n)).is_ok());
        }
        // Step caps grow with the protocol's message complexity.
        assert!(malicious_sweep_limit(256) > malicious_sweep_limit(128) * 4);
        assert!(simple_sweep_limit(2048) > simple_sweep_limit(1024) * 2);
    }

    #[test]
    fn systems_run_and_agree() {
        let fs = Config::fail_stop(5, 2).unwrap();
        let r = failstop_system(fs, &alternating_inputs(5), 2, 3).run();
        assert!(r.agreement());

        let mal = Config::malicious(7, 2).unwrap();
        let r = malicious_system(mal, &alternating_inputs(7), 2, 3).run();
        assert!(r.agreement());

        let r = malicious_system_silent(mal, &alternating_inputs(7), 2, 3).run();
        assert!(r.agreement());

        let r = simple_system(mal, &alternating_inputs(7), 2, 3).run();
        assert!(r.agreement());
    }
}
